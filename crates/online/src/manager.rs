//! The multi-user service front: sharded sessions, template catalog, and
//! the batched same-timestep ingest path.

use crate::durable::{
    self, DurableError, DurableOptions, DurableStore, SessionSnap, SnapshotState, WalRecord,
    WalTail, WindowSnap,
};
use crate::obs::{RecoveryInfo, ServiceInstruments, StoreInstruments};
use crate::session::{
    report_from_step, BudgetLedger, EventWindow, Session, UserId, UserReport, Verdict,
};
use crate::{OnlineError, Result};
use priste_calibrate::{
    peek_worst_loss, run_guard, run_guard_prewarmed, Decision, GuardConfig, GuardOutcome,
    MechanismCache,
};
use priste_event::StEvent;
use priste_geo::CellId;
use priste_linalg::Vector;
use priste_lppm::Lppm;
use priste_markov::TransitionProvider;
use priste_obs::Registry;
use priste_quantify::{IncrementalTwoWorld, QuantifyError, TwoWorldEngine};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

/// Resolves a caller-facing thread knob: `0` means "one worker per
/// available core".
fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// One deterministic RNG stream per shard, split from a batch seed: the
/// parallel release path draws identical candidates for a shard no matter
/// how shards are assigned to worker threads.
fn shard_rng(seed: u64, shard: usize) -> StdRng {
    StdRng::seed_from_u64(seed.wrapping_add((shard as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Shared fan-out scaffolding for the parallel batched paths: round-robins
/// the per-shard jobs (tagged with their shard index) over up to `threads`
/// scoped workers, joins, and merges results. Shards hold disjoint
/// sessions, so workers need no locks. Returns the collected items, the
/// merged stats delta — including deltas from shards that committed before
/// another shard failed, so the caller can keep [`ServiceStats`]
/// consistent with mutated session state — and the first error, if any.
///
/// A panicking job is contained (`catch_unwind`) and surfaces as
/// [`OnlineError::ShardPanicked`] carrying its shard index instead of
/// taking down the process: the surviving shards' items and deltas are
/// still absorbed. The panicked shard's own partial delta is kept too —
/// its sessions may have mutated up to the panic point, and stats that
/// track the mutation are the lesser inconsistency.
fn fan_out_shards<J, T>(
    jobs: Vec<(usize, J)>,
    threads: usize,
    work: impl Fn(J, &mut Vec<T>, &mut ServiceStats) -> Result<()> + Sync,
) -> (Vec<T>, ServiceStats, Option<OnlineError>)
where
    J: Send,
    T: Send,
{
    let threads = resolve_threads(threads);
    let mut buckets: Vec<Vec<(usize, J)>> = (0..threads).map(|_| Vec::new()).collect();
    for (k, job) in jobs.into_iter().enumerate() {
        buckets[k % threads].push(job);
    }
    let mut items = Vec::new();
    let mut merged = ServiceStats::default();
    let mut failure: Option<OnlineError> = None;
    let work = &work;
    std::thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .filter(|bucket| !bucket.is_empty())
            .map(|bucket| {
                let fallback_shard = bucket[0].0;
                let handle = scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut delta = ServiceStats::default();
                    let mut err = None;
                    for (shard_idx, job) in bucket {
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            work(job, &mut out, &mut delta)
                        }));
                        match result {
                            Ok(Ok(())) => {}
                            Ok(Err(e)) => {
                                err = Some(e);
                                break;
                            }
                            Err(_) => {
                                err = Some(OnlineError::ShardPanicked { shard: shard_idx });
                                break;
                            }
                        }
                    }
                    (out, delta, err)
                });
                (fallback_shard, handle)
            })
            .collect();
        for (fallback_shard, handle) in handles {
            // Panics inside jobs are caught above; a join error can only
            // come from a panic outside the guarded region, attributed to
            // the bucket's first shard.
            let (mut out, delta, err) = handle.join().unwrap_or_else(|_| {
                (
                    Vec::new(),
                    ServiceStats::default(),
                    Some(OnlineError::ShardPanicked {
                        shard: fallback_shard,
                    }),
                )
            });
            items.append(&mut out);
            merged.absorb(&delta);
            if failure.is_none() {
                failure = err;
            }
        }
    });
    (items, merged, failure)
}

/// Service configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineConfig {
    /// Per-observation realized-loss threshold a window must stay under to
    /// be verdicted [`Verdict::Certified`].
    pub epsilon: f64,
    /// Number of session shards (sessions hash to `id % num_shards`; each
    /// shard batches its posterior propagation and window steps).
    pub num_shards: usize,
    /// Steps a window is kept past its event end before eviction (post-end
    /// observations still sharpen the posterior via Lemma III.3).
    pub linger: usize,
    /// Per-user total loss budget for the [`BudgetLedger`]
    /// (sequential-composition accounting).
    ///
    /// [`BudgetLedger`]: crate::session::BudgetLedger
    pub budget: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            epsilon: 1.0,
            num_shards: 8,
            linger: 2,
            budget: 20.0,
        }
    }
}

impl OnlineConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// [`OnlineError::InvalidConfig`] with a message naming the bad field.
    pub fn validate(&self) -> Result<()> {
        if !(self.epsilon > 0.0 && self.epsilon.is_finite()) {
            return Err(OnlineError::InvalidConfig {
                message: format!("epsilon must be positive and finite, got {}", self.epsilon),
            });
        }
        if self.num_shards == 0 {
            return Err(OnlineError::InvalidConfig {
                message: "num_shards must be at least 1".into(),
            });
        }
        if !(self.budget > 0.0 && self.budget.is_finite()) {
            return Err(OnlineError::InvalidConfig {
                message: format!("budget must be positive and finite, got {}", self.budget),
            });
        }
        Ok(())
    }
}

/// Aggregate service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Observations ingested across all users.
    pub observations: usize,
    /// Windows evicted (expired or model-mismatched).
    pub evicted_windows: usize,
    /// Per-window verdicts that certified.
    pub certified: usize,
    /// Per-window verdicts that violated ε.
    pub violated: usize,
    /// Windows dropped on zero-likelihood observations.
    pub mismatched: usize,
    /// Enforcing-mode releases withheld by the guard.
    pub suppressed: usize,
}

impl ServiceStats {
    /// Adds another counter set onto this one — the batched paths compute
    /// per-shard deltas (possibly on worker threads) and merge them here.
    pub fn absorb(&mut self, other: &ServiceStats) {
        self.observations += other.observations;
        self.evicted_windows += other.evicted_windows;
        self.certified += other.certified;
        self.violated += other.violated;
        self.mismatched += other.mismatched;
        self.suppressed += other.suppressed;
    }

    /// Counters in declaration order, for the snapshot codec.
    pub(crate) fn to_array(self) -> [u64; 6] {
        [
            self.observations as u64,
            self.evicted_windows as u64,
            self.certified as u64,
            self.violated as u64,
            self.mismatched as u64,
            self.suppressed as u64,
        ]
    }

    /// Inverse of [`ServiceStats::to_array`].
    pub(crate) fn from_array(a: [u64; 6]) -> Self {
        ServiceStats {
            observations: a[0] as usize,
            evicted_windows: a[1] as usize,
            certified: a[2] as usize,
            violated: a[3] as usize,
            mismatched: a[4] as usize,
            suppressed: a[5] as usize,
        }
    }
}

/// The enforcing-mode machinery: one shared mechanism ladder plus the
/// guard configuration. Sessions in an enforcing service release through
/// [`SessionManager::release`], which consults the user's event windows
/// *before* anything leaves the mechanism.
#[derive(Debug)]
struct Enforcer {
    cache: MechanismCache,
    guard: GuardConfig,
}

/// Outcome of one enforcing-mode release.
#[derive(Debug, Clone, PartialEq)]
pub struct EnforcedRelease {
    /// What the guard decided (released observation + budget, or
    /// suppression).
    pub decision: Decision,
    /// Backoff attempts spent.
    pub attempts: usize,
    /// The standard per-user audit report for the committed column (the
    /// released candidate's, or the flat column on suppression).
    pub report: UserReport,
}

/// The streaming service: shards many users' [`Session`]s over one shared
/// mobility model, batches same-timestep work, and evicts expired windows.
///
/// Batching: within one [`SessionManager::ingest_batch`] call every
/// session's posterior propagation `p · M` is stacked into one matrix
/// product per (shard, user-age) group, and every event window sharing a
/// (template, window-age) pair is advanced through **one shared
/// [`LiftedStep`]** via its batched `apply_rows` path — the step is built
/// once and applied to the whole group instead of once per user.
///
/// Windows run on their own local clock (timestep 1 = first observation
/// after attach), so event templates are written in attach-relative time.
/// With a time-varying provider the window schedule is also attach-relative;
/// absolute-time schedules would need an offsetting provider (future work).
///
/// Share the model across the many per-window states with a cheap-to-clone
/// provider — `Arc<Homogeneous>` is the intended instantiation
/// (`TransitionProvider` is implemented for `Arc<T>`).
///
/// [`LiftedStep`]: priste_quantify::lifted::LiftedStep
#[derive(Debug)]
pub struct SessionManager<P> {
    provider: P,
    templates: Vec<StEvent>,
    shards: Vec<BTreeMap<u64, Session<P>>>,
    config: OnlineConfig,
    instruments: ServiceInstruments,
    recovery: Option<RecoveryInfo>,
    enforcer: Option<Enforcer>,
    store: Option<DurableStore>,
}

impl<P: TransitionProvider + Clone> SessionManager<P> {
    /// Creates an empty service over one shared mobility model.
    ///
    /// # Errors
    /// [`OnlineError::InvalidConfig`] from [`OnlineConfig::validate`].
    pub fn new(provider: P, config: OnlineConfig) -> Result<Self> {
        config.validate()?;
        let shards = (0..config.num_shards).map(|_| BTreeMap::new()).collect();
        Ok(SessionManager {
            provider,
            templates: Vec::new(),
            shards,
            config,
            instruments: ServiceInstruments::new(),
            recovery: None,
            enforcer: None,
            store: None,
        })
    }

    /// Switches the service into **enforcing mode**: instead of merely
    /// auditing caller-supplied emission columns, the service itself holds
    /// the mechanism and every [`SessionManager::release`] consults the
    /// user's event windows through the calibration guard — shrinking the
    /// location budget (geometric backoff) until the release certifies
    /// `guard.target_epsilon`, and applying the guard's
    /// [`OnExhaustion`](priste_calibrate::OnExhaustion) policy when nothing
    /// feasible remains. The audit path ([`SessionManager::ingest_batch`])
    /// stays available for observations produced elsewhere.
    ///
    /// # Errors
    /// [`OnlineError::InvalidConfig`] when the mechanism's domain does not
    /// match the mobility model; guard-configuration validation errors.
    pub fn enable_enforcement(&mut self, lppm: Box<dyn Lppm>, guard: GuardConfig) -> Result<()> {
        guard.validate()?;
        priste_calibrate::validate_mechanism(
            lppm.as_ref(),
            self.provider.num_states(),
            guard.floor,
        )
        .map_err(|e| OnlineError::InvalidConfig {
            message: e.to_string(),
        })?;
        self.enforcer = Some(Enforcer {
            cache: MechanismCache::new(lppm),
            guard,
        });
        Ok(())
    }

    /// Whether enforcing mode is enabled.
    pub fn enforcing(&self) -> bool {
        self.enforcer.is_some()
    }

    /// Enforcing-mode release: calibrates one observation for the user's
    /// *true* location, certifying it against every active event window
    /// before it leaves the mechanism, then commits it through the normal
    /// audit path (posterior filtering, ledger, eviction, stats).
    ///
    /// A window whose model assigns the candidate zero likelihood counts
    /// as uncertifiable (loss `+∞`) rather than being evicted here — the
    /// guard backs off, and only the *committed* column can evict.
    ///
    /// # Errors
    /// [`OnlineError::NotEnforcing`] without
    /// [`SessionManager::enable_enforcement`];
    /// [`OnlineError::UnknownUser`]/[`OnlineError::InvalidLocation`] for a
    /// bad request; calibration and quantification failures.
    pub fn release(
        &mut self,
        id: UserId,
        true_loc: CellId,
        rng: &mut dyn RngCore,
    ) -> Result<EnforcedRelease> {
        let start = self
            .instruments
            .release_seconds
            .is_enabled()
            .then(Instant::now);
        let mut enforcer = self.enforcer.take().ok_or(OnlineError::NotEnforcing)?;
        let outcome = {
            let m = self.provider.num_states();
            if true_loc.index() >= m {
                self.enforcer = Some(enforcer);
                return Err(OnlineError::InvalidLocation {
                    cell: true_loc.index(),
                    num_cells: m,
                });
            }
            let shard = self.shard_of(id);
            let Some(session) = self.shards[shard].get(&id.0) else {
                self.enforcer = Some(enforcer);
                return Err(OnlineError::UnknownUser { user: id.0 });
            };
            let result = run_guard(
                &mut enforcer.cache,
                &enforcer.guard,
                true_loc,
                rng,
                |column| peek_worst_loss(session.windows.iter().map(|w| &w.state), column),
            );
            self.enforcer = Some(enforcer);
            result?
        };
        let shard = self.shard_of(id);
        let suppressed = outcome.decision == Decision::Suppressed;
        // Journal the committed column (with its suppression flag, so
        // replay reconstructs the stats) before it leaves the mechanism.
        Self::journal(
            &mut self.store,
            shard,
            &WalRecord::Observe {
                user: id.0,
                suppressed,
                column: outcome.column.as_slice().to_vec(),
            },
        )?;
        let report = self.commit_one(shard, id.0, &outcome.column);
        // Count the suppression only once the flat column actually
        // committed — a failed release must not skew the stats.
        if suppressed {
            self.instruments.suppressed.inc();
        }
        self.instruments.guard.record(&outcome);
        self.maybe_checkpoint()?;
        if let Some(t0) = start {
            self.instruments
                .release_seconds
                .observe(t0.elapsed().as_secs_f64());
        }
        Ok(EnforcedRelease {
            decision: outcome.decision,
            attempts: outcome.attempts.len(),
            report,
        })
    }

    /// Commits one already-validated, already-journaled column through the
    /// audit machinery (posterior filtering, windows, ledger, eviction).
    fn commit_one(&mut self, shard: usize, uid: u64, column: &Vector) -> UserReport {
        let mut wanted = BTreeMap::new();
        wanted.insert(uid, column);
        let (mut reports, delta) = Self::process_shard(
            &self.provider,
            &self.templates,
            &mut self.shards[shard],
            &wanted,
            &self.config,
        );
        self.instruments.absorb(&delta);
        reports.pop().expect("one observation in, one report out")
    }

    /// The service configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Aggregate counters.
    ///
    /// Since the observability refactor this is a thin shim over the
    /// always-on metrics counters (`online_*_total` in an attached
    /// [`Registry`]) — the registry is the single source of truth; prefer
    /// reading it directly when one is attached via
    /// [`SessionManager::observe`].
    pub fn stats(&self) -> ServiceStats {
        self.instruments.stats()
    }

    /// Attaches a metrics registry: the always-on [`ServiceStats`]
    /// counters are *adopted* (exported with their current values), the
    /// latency/size/occupancy telemetry switches from inert handles to
    /// live ones, the durable substrate starts timing WAL appends/fsyncs
    /// and checkpoints, and — when this service was built by
    /// [`SessionManager::recover`]/[`SessionManager::open_durable`] — the
    /// recovery telemetry is published.
    ///
    /// Hot per-observation loops are untouched: instruments are recorded
    /// once per batch/release/append, so an attached (or absent) registry
    /// never changes results and barely changes throughput.
    pub fn observe(&mut self, registry: &Registry) {
        self.instruments.attach(registry);
        if let Some(store) = &mut self.store {
            store.set_instruments(StoreInstruments::from_registry(registry));
        }
        if let Some(info) = self.recovery {
            self.instruments.publish_recovery(&info);
        }
        self.instruments
            .update_occupancy(self.shards.iter().map(BTreeMap::len));
    }

    /// Telemetry from crash recovery, when this service was built by
    /// [`SessionManager::recover`] or [`SessionManager::open_durable`].
    pub fn recovery_info(&self) -> Option<RecoveryInfo> {
        self.recovery
    }

    /// Registered users.
    pub fn num_users(&self) -> usize {
        self.shards.iter().map(BTreeMap::len).sum()
    }

    /// All registered user ids, in ascending id order.
    pub fn users(&self) -> Vec<UserId> {
        let mut ids: Vec<UserId> = self
            .shards
            .iter()
            .flat_map(|s| s.keys().copied().map(UserId))
            .collect();
        ids.sort_unstable_by_key(|id| id.0);
        ids
    }

    /// Active event windows across all users.
    pub fn active_windows(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|s| s.values())
            .map(Session::active_windows)
            .sum()
    }

    /// Registers an event template (attach-relative timestamps) and returns
    /// its index for [`SessionManager::attach_event`].
    ///
    /// # Errors
    /// [`QuantifyError::DomainMismatch`] (wrapped) if the event's state
    /// domain differs from the provider's.
    pub fn register_template(&mut self, event: StEvent) -> Result<usize> {
        if event.num_cells() != self.provider.num_states() {
            return Err(OnlineError::Quantify(QuantifyError::DomainMismatch {
                event: event.num_cells(),
                provider: self.provider.num_states(),
            }));
        }
        if self.store.is_some() {
            // The template catalog is part of the scenario fingerprint that
            // binds durable files to the service; growing it under an
            // attached store would orphan everything journaled so far.
            return Err(OnlineError::InvalidConfig {
                message: "register all templates before attaching a durable store".into(),
            });
        }
        self.templates.push(event);
        Ok(self.templates.len() - 1)
    }

    /// Registered templates.
    pub fn templates(&self) -> &[StEvent] {
        &self.templates
    }

    /// Adds a user with an initial location distribution.
    ///
    /// # Errors
    /// [`OnlineError::DuplicateUser`]; validation errors for a bad `π`.
    pub fn add_user(&mut self, id: UserId, pi: Vector) -> Result<()> {
        if pi.len() != self.provider.num_states() {
            return Err(OnlineError::Quantify(QuantifyError::InvalidInitial(
                priste_linalg::LinalgError::DimensionMismatch {
                    op: "session initial distribution",
                    expected: self.provider.num_states(),
                    actual: pi.len(),
                },
            )));
        }
        pi.validate_distribution()
            .map_err(|e| OnlineError::Quantify(QuantifyError::InvalidInitial(e)))?;
        let shard = self.shard_of(id);
        if self.shards[shard].contains_key(&id.0) {
            return Err(OnlineError::DuplicateUser { user: id.0 });
        }
        // Journal before applying: the insert below cannot fail, and a
        // crash between the two merely replays a registration whose ack
        // never left the building (at-least-once, harmless).
        Self::journal(
            &mut self.store,
            shard,
            &WalRecord::AddUser {
                user: id.0,
                pi: pi.as_slice().to_vec(),
            },
        )?;
        self.shards[shard].insert(id.0, Session::new(id, pi, self.config.budget));
        self.maybe_checkpoint()
    }

    /// Read access to one session.
    pub fn session(&self, id: UserId) -> Option<&Session<P>> {
        self.shards[self.shard_of(id)].get(&id.0)
    }

    /// Attaches a registered template to a user as a new event window,
    /// seeded with the user's current filtered posterior.
    ///
    /// # Errors
    /// [`OnlineError::UnknownUser`]/[`OnlineError::UnknownTemplate`];
    /// [`QuantifyError::DegeneratePrior`] (wrapped) when the event is
    /// already certain or impossible under the user's posterior.
    pub fn attach_event(&mut self, id: UserId, template: usize) -> Result<()> {
        let event = self
            .templates
            .get(template)
            .ok_or(OnlineError::UnknownTemplate { template })?
            .clone();
        let provider = self.provider.clone();
        let shard = self.shard_of(id);
        let session = self.shards[shard]
            .get_mut(&id.0)
            .ok_or(OnlineError::UnknownUser { user: id.0 })?;
        session.attach(template, event, provider)?;
        if let Err(e) = Self::journal(
            &mut self.store,
            shard,
            &WalRecord::AttachEvent {
                user: id.0,
                template: template as u32,
            },
        ) {
            // Roll the attach back so the in-memory state never runs ahead
            // of the journal on an I/O failure.
            self.shards[shard]
                .get_mut(&id.0)
                .expect("attached above")
                .windows
                .pop();
            return Err(e);
        }
        self.maybe_checkpoint()
    }

    /// Removes a user, returning whether it existed.
    ///
    /// # Errors
    /// [`OnlineError::Durable`] when journaling the removal fails (the
    /// user is kept in that case).
    pub fn remove_user(&mut self, id: UserId) -> Result<bool> {
        let shard = self.shard_of(id);
        if !self.shards[shard].contains_key(&id.0) {
            return Ok(false);
        }
        Self::journal(
            &mut self.store,
            shard,
            &WalRecord::RemoveUser { user: id.0 },
        )?;
        self.shards[shard].remove(&id.0);
        self.maybe_checkpoint()?;
        Ok(true)
    }

    /// Ingests one observation for one user. Equivalent to a singleton
    /// [`SessionManager::ingest_batch`].
    ///
    /// # Errors
    /// See [`SessionManager::ingest_batch`].
    pub fn ingest(&mut self, id: UserId, emission_column: Vector) -> Result<UserReport> {
        let mut reports = self.ingest_batch(&[(id, emission_column)])?;
        Ok(reports.pop().expect("one observation in, one report out"))
    }

    /// Ingests one same-timestep batch: at most one observation (as the
    /// released emission column) per user. Returns one [`UserReport`] per
    /// entry, sorted by user id.
    ///
    /// # Errors
    /// [`OnlineError::UnknownUser`], [`OnlineError::DuplicateObservation`],
    /// and emission validation errors — all detected *before* any state is
    /// mutated, so a failed batch leaves the service unchanged.
    pub fn ingest_batch(&mut self, batch: &[(UserId, Vector)]) -> Result<Vec<UserReport>> {
        let start = self
            .instruments
            .ingest_seconds
            .is_enabled()
            .then(Instant::now);
        let by_shard = self.validate_batch(batch)?;
        // Journal the committed columns before any state mutates: a crash
        // after the append replays an observation whose report was never
        // returned (at-least-once spend — conservative), and an append
        // failure leaves both memory and disk untouched.
        self.journal_observations(&by_shard)?;
        let mut reports = Vec::with_capacity(batch.len());
        for (shard_idx, wanted) in by_shard.iter().enumerate() {
            if wanted.is_empty() {
                continue;
            }
            let (mut shard_reports, delta) = Self::process_shard(
                &self.provider,
                &self.templates,
                &mut self.shards[shard_idx],
                wanted,
                &self.config,
            );
            self.instruments.absorb(&delta);
            reports.append(&mut shard_reports);
        }
        reports.sort_by_key(|r| r.user);
        self.maybe_checkpoint()?;
        if let Some(t0) = start {
            self.instruments
                .ingest_seconds
                .observe(t0.elapsed().as_secs_f64());
            self.instruments
                .ingest_batch_size
                .observe(batch.len() as f64);
            self.instruments
                .update_occupancy(self.shards.iter().map(BTreeMap::len));
        }
        Ok(reports)
    }

    /// Appends one [`WalRecord::Observe`] per batch entry (audit path:
    /// nothing is suppressed).
    fn journal_observations(&mut self, by_shard: &[BTreeMap<u64, &Vector>]) -> Result<()> {
        if self.store.is_none() {
            return Ok(());
        }
        for (shard_idx, wanted) in by_shard.iter().enumerate() {
            for (&uid, col) in wanted {
                Self::journal(
                    &mut self.store,
                    shard_idx,
                    &WalRecord::Observe {
                        user: uid,
                        suppressed: false,
                        column: col.as_slice().to_vec(),
                    },
                )?;
            }
        }
        Ok(())
    }

    /// Appends a record to the attached store's shard WAL; a no-op for
    /// in-memory services.
    fn journal(store: &mut Option<DurableStore>, shard: usize, record: &WalRecord) -> Result<()> {
        if let Some(store) = store {
            store.append(shard, record)?;
        }
        Ok(())
    }

    /// Compacts the WAL into a fresh snapshot when the auto-checkpoint
    /// threshold has been crossed.
    fn maybe_checkpoint(&mut self) -> Result<()> {
        if self.store.as_ref().is_some_and(DurableStore::due) {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Validation pass for one same-timestep batch (no mutation): emission
    /// shape, user existence, one-observation-per-user. Returns the
    /// per-shard observation maps.
    fn validate_batch<'b>(
        &self,
        batch: &'b [(UserId, Vector)],
    ) -> Result<Vec<BTreeMap<u64, &'b Vector>>> {
        let m = self.provider.num_states();
        let mut by_shard: Vec<BTreeMap<u64, &Vector>> =
            (0..self.shards.len()).map(|_| BTreeMap::new()).collect();
        for (id, col) in batch {
            if col.len() != m || col.as_slice().iter().any(|&x| x < 0.0 || !x.is_finite()) {
                return Err(OnlineError::Quantify(QuantifyError::InvalidEmission {
                    expected: m,
                    actual: col.len(),
                }));
            }
            let shard = self.shard_of(*id);
            if !self.shards[shard].contains_key(&id.0) {
                return Err(OnlineError::UnknownUser { user: id.0 });
            }
            if by_shard[shard].insert(id.0, col).is_some() {
                return Err(OnlineError::DuplicateObservation { user: id.0 });
            }
        }
        Ok(by_shard)
    }

    /// One shard's slice of a batched ingest: posterior propagation, window
    /// advancement, ledger/eviction — returning the reports (session-id
    /// order) plus the stats delta to merge. Free of `&mut self` so the
    /// parallel path can run disjoint shards on worker threads.
    fn process_shard(
        provider: &P,
        templates: &[StEvent],
        shard: &mut BTreeMap<u64, Session<P>>,
        wanted: &BTreeMap<u64, &Vector>,
        config: &OnlineConfig,
    ) -> (Vec<UserReport>, ServiceStats) {
        let mut stats = ServiceStats::default();
        let mut reports = Vec::with_capacity(wanted.len());
        let mut selected: Vec<(&mut Session<P>, &Vector)> = shard
            .values_mut()
            .filter_map(|s| wanted.get(&s.id().0).map(|col| (s, *col)))
            .collect();

        Self::propagate_posteriors(provider, &mut selected);
        let window_reports =
            Self::advance_windows(provider, templates, &mut selected, config.epsilon);

        for ((session, _), wreps) in selected.iter_mut().zip(window_reports) {
            for r in &wreps {
                match r.verdict {
                    Verdict::Certified => stats.certified += 1,
                    Verdict::Violated => stats.violated += 1,
                    Verdict::ModelMismatch => stats.mismatched += 1,
                }
            }
            let report = session.finish_observation(wreps, config.linger);
            stats.observations += 1;
            stats.evicted_windows += report.evicted;
            reports.push(report);
        }
        (reports, stats)
    }

    /// Batched posterior filtering: streams each selected session's `p · M`
    /// through the provider's backend (grouped by user age, so time-varying
    /// providers fetch the right matrix; one shared scratch buffer per
    /// group), then applies each session's emission weighting. With a CSR
    /// chain each propagation costs `O(nnz)` instead of `O(m²)`.
    fn propagate_posteriors(provider: &P, selected: &mut [(&mut Session<P>, &Vector)]) {
        let mut by_age: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, (session, _)) in selected.iter().enumerate() {
            by_age.entry(session.observed()).or_default().push(i);
        }
        let mut moved = vec![0.0; provider.num_states()];
        for (age, idxs) in by_age {
            if age == 0 {
                // First observation: no propagation, just weigh the prior.
                for &i in &idxs {
                    let (session, col) = &mut selected[i];
                    let p = session.posterior().clone();
                    session.weigh_posterior(p, col);
                }
                continue;
            }
            let matrix = provider.transition_at(age);
            for &i in &idxs {
                let (session, col) = &mut selected[i];
                matrix.vecmat_into(session.posterior().as_slice(), &mut moved);
                session.weigh_posterior(Vector::from(moved.clone()), col);
            }
        }
    }

    /// Batched window advancement: every window sharing a (template,
    /// window-age) pair is moved through one shared lifted step built once
    /// from the template schedule. Returns per-session window reports in
    /// attach order.
    fn advance_windows(
        provider: &P,
        templates: &[StEvent],
        selected: &mut [(&mut Session<P>, &Vector)],
        epsilon: f64,
    ) -> Vec<Vec<crate::session::WindowReport>> {
        let mut results: Vec<Vec<crate::session::WindowReport>> = selected
            .iter()
            .map(|(s, _)| Vec::with_capacity(s.active_windows()))
            .collect();

        // Flatten (session, window) pairs and group by shared step shape.
        let mut flat: Vec<(usize, &mut EventWindow<P>, &Vector)> = Vec::new();
        for (si, (session, col)) in selected.iter_mut().enumerate() {
            let col: &Vector = col;
            for w in session.windows.iter_mut() {
                flat.push((si, w, col));
            }
        }
        let mut groups: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for (fi, (_, w, _)) in flat.iter().enumerate() {
            groups
                .entry((w.template, w.state.observed()))
                .or_default()
                .push(fi);
        }

        let mut staged: Vec<Option<crate::session::WindowReport>> = vec![None; flat.len()];
        for ((template, age), idxs) in groups {
            // One step for the whole group (the first observation has no
            // transition step: it is emission-weighting only).
            let stepped: Vec<Vector> = if age == 0 {
                idxs.iter()
                    .map(|&fi| flat[fi].1.state.lifted_state().clone())
                    .collect()
            } else {
                let engine = TwoWorldEngine::new(&templates[template], provider)
                    .expect("validated at registration");
                let step = engine.step_at(age);
                let rows: Vec<Vector> = idxs
                    .iter()
                    .map(|&fi| flat[fi].1.state.lifted_state().clone())
                    .collect();
                step.apply_rows(&rows)
            };
            for (moved, &fi) in stepped.into_iter().zip(&idxs) {
                let (_, window, col) = &mut flat[fi];
                let report = match window.state.observe_pre_stepped(moved, col) {
                    Ok(step) => report_from_step(window.template, &step, epsilon),
                    Err(QuantifyError::ZeroLikelihood { t }) => crate::session::WindowReport {
                        template: window.template,
                        window_t: t,
                        loss: f64::INFINITY,
                        posterior: 0.0,
                        verdict: Verdict::ModelMismatch,
                    },
                    Err(e) => unreachable!("emission validated up front: {e}"),
                };
                staged[fi] = Some(report);
            }
        }
        // Re-assemble per session in attach order (flat preserves it).
        for (fi, (si, _, _)) in flat.iter().enumerate() {
            results[*si].push(staged[fi].take().expect("every window was advanced"));
        }
        results
    }

    fn shard_of(&self, id: UserId) -> usize {
        (id.0 % self.shards.len() as u64) as usize
    }

    // ---- Durability -----------------------------------------------------

    /// Fingerprint binding durable files to this service's scenario: the
    /// state-domain size, the accounting-relevant configuration, and the
    /// registered template catalog. The WAL journals *committed emission
    /// columns*, so the mechanism/guard configuration is deliberately not
    /// part of the binding — replay never re-runs the guard.
    fn fingerprint(&self) -> u64 {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "m={};eps={:016x};shards={};linger={};budget={:016x};",
            self.provider.num_states(),
            self.config.epsilon.to_bits(),
            self.config.num_shards,
            self.config.linger,
            self.config.budget.to_bits(),
        );
        for t in &self.templates {
            let _ = write!(s, "tpl={t:?};");
        }
        durable::fnv1a64(s.as_bytes())
    }

    /// Serializes the full service state (shard-major, user-id order
    /// within a shard — deterministic for a given state).
    fn snapshot_state(&self) -> SnapshotState {
        let sessions = self
            .shards
            .iter()
            .flat_map(|shard| shard.values())
            .map(|session| SessionSnap {
                user: session.id().0,
                t: session.observed() as u64,
                budget: session.ledger().budget(),
                spent: session.ledger().spent(),
                observations: session.ledger().observations() as u64,
                violations: session.ledger().violations() as u64,
                posterior: session.posterior().as_slice().to_vec(),
                windows: session
                    .windows
                    .iter()
                    .map(|w| WindowSnap {
                        template: w.template as u32,
                        t: w.state.observed() as u64,
                        log_scale: w.state.log_scale(),
                        pi: w.state.pi().as_slice().to_vec(),
                        mantissa: w.state.lifted_state().as_slice().to_vec(),
                    })
                    .collect(),
            })
            .collect();
        SnapshotState {
            fingerprint: self.fingerprint(),
            stats: self.stats().to_array(),
            sessions,
        }
    }

    /// Deterministic digest of the full service state (FNV-1a over the
    /// canonical snapshot encoding): equal digests mean bit-identical
    /// posteriors, windows, ledgers, and counters. The equality witness
    /// used by the crash-recovery tests.
    pub fn state_digest(&self) -> u64 {
        durable::fnv1a64(&durable::encode_payload(&self.snapshot_state()))
    }

    /// Attaches a durable store to this service: writes a full checkpoint
    /// of the current state into `dir` (created if missing) and from then
    /// on journals every committed mutation to a per-shard WAL *before*
    /// its result is returned. See the [`crate::durable`] module docs for
    /// the file layout and recovery guarantees.
    ///
    /// # Errors
    /// [`OnlineError::Durable`] on I/O failure.
    pub fn make_durable(&mut self, dir: &Path, opts: DurableOptions) -> Result<()> {
        let start = if dir.exists() {
            durable::list_generations(dir)?.first().map_or(0, |&s| s) + 1
        } else {
            1
        };
        let state = self.snapshot_state();
        let mut store = DurableStore::open(
            dir,
            opts,
            state.fingerprint,
            self.config.num_shards,
            start,
            &state,
        )?;
        if let Some(registry) = &self.instruments.registry {
            store.set_instruments(StoreInstruments::from_registry(registry));
        }
        self.store = Some(store);
        Ok(())
    }

    /// The attached durable directory, if any.
    pub fn durable_dir(&self) -> Option<&Path> {
        self.store.as_ref().map(DurableStore::dir)
    }

    /// Compacts the WAL into a fresh snapshot generation. Called
    /// automatically every [`DurableOptions::snapshot_every`] records;
    /// callers may also checkpoint explicitly (e.g. before shutdown).
    ///
    /// # Errors
    /// [`OnlineError::InvalidConfig`] when no store is attached;
    /// [`OnlineError::Durable`] on I/O failure.
    pub fn checkpoint(&mut self) -> Result<()> {
        let state = self.snapshot_state();
        let store = self
            .store
            .as_mut()
            .ok_or_else(|| OnlineError::InvalidConfig {
                message: "no durable store attached; call make_durable or open_durable first"
                    .into(),
            })?;
        store.checkpoint(&state)?;
        Ok(())
    }

    /// Read-only crash recovery: rebuilds a service from the newest valid
    /// snapshot in `dir` plus a deterministic replay of its WAL tail. The
    /// scenario (provider domain, config, templates) must match the one
    /// the directory was written under — a fingerprint mismatch is
    /// rejected rather than silently mixing state.
    ///
    /// The returned service has **no store attached**: recovering twice
    /// from the same directory is side-effect-free and byte-deterministic
    /// (equal [`SessionManager::state_digest`]s). Use
    /// [`SessionManager::open_durable`] to recover *and* resume
    /// journaling.
    ///
    /// Conservative rounding — the recovered ledgers never under-count:
    /// a torn final WAL record exhausts the attributed user's ledger (or
    /// the whole shard when unattributable), and falling back past an
    /// unreadable newer snapshot exhausts every ledger.
    ///
    /// # Errors
    /// [`OnlineError::Durable`] for unreadable/corrupt/mismatched durable
    /// state; quantify/session validation errors when persisted state
    /// fails its invariants.
    pub fn recover(
        provider: P,
        config: OnlineConfig,
        templates: Vec<StEvent>,
        dir: &Path,
    ) -> Result<Self> {
        let t0 = Instant::now();
        let mut svc = Self::new(provider, config)?;
        for t in templates {
            svc.register_template(t)?;
        }
        let rec = durable::recover_dir(dir, svc.fingerprint(), svc.config.num_shards)?;
        svc.restore_snapshot(&rec.state)?;
        let mut replayed_records = 0u64;
        for scan in &rec.wal {
            for record in &scan.records {
                svc.replay(record)?;
                replayed_records += 1;
            }
        }
        let mut torn_records = 0u64;
        for (shard_idx, scan) in rec.wal.iter().enumerate() {
            if let WalTail::Torn { user } = scan.tail {
                torn_records += 1;
                let mut exhausted_one = false;
                if let Some(uid) = user {
                    let shard = svc.shard_of(UserId(uid));
                    if let Some(session) = svc.shards[shard].get_mut(&uid) {
                        session.ledger_mut().force_exhaust();
                        exhausted_one = true;
                    }
                }
                // Unattributable tear — or an attribution pointing at a
                // user that does not exist, which means the prefix bytes
                // themselves are suspect: exhaust the whole shard.
                if !exhausted_one {
                    svc.exhaust_shard(shard_idx);
                }
            }
        }
        if rec.skipped_newer {
            for shard in 0..svc.shards.len() {
                svc.exhaust_shard(shard);
            }
        }
        svc.recovery = Some(RecoveryInfo {
            duration_seconds: t0.elapsed().as_secs_f64(),
            replayed_records,
            torn_records,
            skipped_newer: rec.skipped_newer,
        });
        Ok(svc)
    }

    /// Recover-or-create: rebuilds from `dir` exactly like
    /// [`SessionManager::recover`] when it holds durable state, starts
    /// empty when it does not, then attaches the store (writing a fresh
    /// checkpoint generation) so the service continues journaling where
    /// the dead process stopped.
    ///
    /// # Errors
    /// As [`SessionManager::recover`] and
    /// [`SessionManager::make_durable`].
    pub fn open_durable(
        provider: P,
        config: OnlineConfig,
        templates: Vec<StEvent>,
        dir: &Path,
        opts: DurableOptions,
    ) -> Result<Self> {
        let recovered = Self::recover(provider.clone(), config.clone(), templates.clone(), dir);
        let mut svc = match recovered {
            Ok(svc) => svc,
            Err(OnlineError::Durable(
                DurableError::NoSnapshot { .. }
                | DurableError::Io {
                    kind: std::io::ErrorKind::NotFound,
                    ..
                },
            )) => {
                let mut svc = Self::new(provider, config)?;
                for t in templates {
                    svc.register_template(t)?;
                }
                svc
            }
            Err(e) => return Err(e),
        };
        svc.make_durable(dir, opts)?;
        Ok(svc)
    }

    /// Rebuilds every session from a decoded snapshot.
    fn restore_snapshot(&mut self, state: &SnapshotState) -> Result<()> {
        for snap in &state.sessions {
            let id = UserId(snap.user);
            let posterior = Vector::from(snap.posterior.clone());
            if posterior.len() != self.provider.num_states() {
                return Err(OnlineError::InvalidConfig {
                    message: format!(
                        "persisted posterior for user {} has length {}, expected {}",
                        snap.user,
                        posterior.len(),
                        self.provider.num_states()
                    ),
                });
            }
            let mut windows = Vec::with_capacity(snap.windows.len());
            for w in &snap.windows {
                let template = w.template as usize;
                let event = self
                    .templates
                    .get(template)
                    .ok_or(OnlineError::UnknownTemplate { template })?
                    .clone();
                let state = IncrementalTwoWorld::resume(
                    event,
                    self.provider.clone(),
                    Vector::from(w.pi.clone()),
                    Vector::from(w.mantissa.clone()),
                    w.log_scale,
                    w.t as usize,
                )?;
                windows.push(EventWindow { template, state });
            }
            let ledger = BudgetLedger::from_parts(
                snap.budget,
                snap.spent,
                snap.observations as usize,
                snap.violations as usize,
            )?;
            let shard = self.shard_of(id);
            if self.shards[shard]
                .insert(
                    snap.user,
                    Session::from_parts(id, posterior, windows, ledger, snap.t as usize),
                )
                .is_some()
            {
                return Err(OnlineError::DuplicateUser { user: snap.user });
            }
        }
        self.instruments
            .store_stats(ServiceStats::from_array(state.stats));
        Ok(())
    }

    /// Applies one journaled record without re-journaling it. Replaying an
    /// `Observe` record runs the exact same per-row arithmetic as the
    /// original (possibly batched) execution — posterior propagation and
    /// lifted window steps are row-independent — so the recovered state is
    /// bit-identical to what the live service held after committing it.
    fn replay(&mut self, record: &WalRecord) -> Result<()> {
        match record {
            WalRecord::AddUser { user, pi } => {
                let id = UserId(*user);
                let pi = Vector::from(pi.clone());
                if pi.len() != self.provider.num_states() {
                    return Err(OnlineError::Quantify(QuantifyError::InvalidInitial(
                        priste_linalg::LinalgError::DimensionMismatch {
                            op: "journaled initial distribution",
                            expected: self.provider.num_states(),
                            actual: pi.len(),
                        },
                    )));
                }
                pi.validate_distribution()
                    .map_err(|e| OnlineError::Quantify(QuantifyError::InvalidInitial(e)))?;
                let shard = self.shard_of(id);
                if self.shards[shard].contains_key(user) {
                    return Err(OnlineError::DuplicateUser { user: *user });
                }
                self.shards[shard].insert(*user, Session::new(id, pi, self.config.budget));
                Ok(())
            }
            WalRecord::RemoveUser { user } => {
                let shard = self.shard_of(UserId(*user));
                self.shards[shard].remove(user);
                Ok(())
            }
            WalRecord::AttachEvent { user, template } => {
                let template = *template as usize;
                let event = self
                    .templates
                    .get(template)
                    .ok_or(OnlineError::UnknownTemplate { template })?
                    .clone();
                let provider = self.provider.clone();
                let shard = self.shard_of(UserId(*user));
                let session = self.shards[shard]
                    .get_mut(user)
                    .ok_or(OnlineError::UnknownUser { user: *user })?;
                session.attach(template, event, provider)?;
                Ok(())
            }
            WalRecord::Observe {
                user,
                suppressed,
                column,
            } => self.replay_observe(*user, column, *suppressed),
        }
    }

    /// Replays one committed observation as a singleton commit.
    fn replay_observe(&mut self, user: u64, column: &[f64], suppressed: bool) -> Result<()> {
        let m = self.provider.num_states();
        if column.len() != m || column.iter().any(|&x| x < 0.0 || !x.is_finite()) {
            return Err(OnlineError::Quantify(QuantifyError::InvalidEmission {
                expected: m,
                actual: column.len(),
            }));
        }
        let id = UserId(user);
        let shard = self.shard_of(id);
        if !self.shards[shard].contains_key(&user) {
            return Err(OnlineError::UnknownUser { user });
        }
        let column = Vector::from(column.to_vec());
        let _ = self.commit_one(shard, user, &column);
        if suppressed {
            self.instruments.suppressed.inc();
        }
        Ok(())
    }

    /// Conservative rounding: exhausts every ledger on one shard.
    fn exhaust_shard(&mut self, shard: usize) {
        for session in self.shards[shard].values_mut() {
            session.ledger_mut().force_exhaust();
        }
    }
}

/// The parallel batched paths — available when the shared model is
/// thread-safe (the pipeline's `Arc`-backed provider is). Work fans out
/// over the service's own shards with `std::thread::scope`: shards hold
/// disjoint sessions, so there is nothing to lock, and the enforcing path
/// draws from one prewarmed, read-only mechanism ladder.
impl<P: TransitionProvider + Clone + Send + Sync> SessionManager<P> {
    /// [`SessionManager::ingest_batch`] with the per-shard work fanned out
    /// over up to `threads` workers (`0` = one per available core).
    /// Reports, stats and session state are identical to the sequential
    /// path for any thread count.
    ///
    /// # Errors
    /// See [`SessionManager::ingest_batch`] — validation runs up front, so
    /// a failed batch leaves the service unchanged.
    pub fn ingest_batch_parallel(
        &mut self,
        batch: &[(UserId, Vector)],
        threads: usize,
    ) -> Result<Vec<UserReport>> {
        let start = self
            .instruments
            .ingest_seconds
            .is_enabled()
            .then(Instant::now);
        let by_shard = self.validate_batch(batch)?;
        self.journal_observations(&by_shard)?;
        let provider = &self.provider;
        let templates = &self.templates;
        let config = &self.config;

        let jobs: Vec<_> = self
            .shards
            .iter_mut()
            .enumerate()
            .zip(&by_shard)
            .filter(|((_, _), wanted)| !wanted.is_empty())
            .map(|((idx, shard), wanted)| (idx, (shard, wanted)))
            .collect();
        let (mut reports, merged, failure) =
            fan_out_shards(jobs, threads, |(shard, wanted), out, delta| {
                let (mut shard_reports, shard_delta) =
                    Self::process_shard(provider, templates, shard, wanted, config);
                out.append(&mut shard_reports);
                delta.absorb(&shard_delta);
                Ok(())
            });
        self.instruments.absorb(&merged);
        if let Some(e) = failure {
            if let OnlineError::ShardPanicked { shard } = &e {
                self.instruments.record_shard_panic(*shard);
            }
            return Err(e);
        }
        reports.sort_by_key(|r| r.user);
        self.maybe_checkpoint()?;
        if let Some(t0) = start {
            self.instruments
                .ingest_seconds
                .observe(t0.elapsed().as_secs_f64());
            self.instruments
                .ingest_batch_size
                .observe(batch.len() as f64);
            self.instruments
                .update_occupancy(self.shards.iter().map(BTreeMap::len));
        }
        Ok(reports)
    }

    /// One same-timestep **enforcing-mode** batch: calibrates and commits
    /// at most one release per user — [`SessionManager::release`] at fleet
    /// scale. The guard + commit work fans out over up to `threads` workers
    /// (`0` = one per available core) on shard-disjoint state, drawing
    /// candidates from one deterministic RNG stream per shard split from
    /// `seed`, so results are bit-identical for any thread count.
    ///
    /// Returns one [`EnforcedRelease`] per request, sorted by user id.
    ///
    /// # Errors
    /// [`OnlineError::NotEnforcing`] without enforcement enabled;
    /// [`OnlineError::UnknownUser`]/[`OnlineError::InvalidLocation`]/
    /// [`OnlineError::DuplicateObservation`] — all detected before any
    /// state is mutated. A quantification failure mid-batch (not reachable
    /// from validated inputs) may leave earlier shards committed; the
    /// stats always reflect exactly what committed.
    pub fn release_batch(
        &mut self,
        batch: &[(UserId, CellId)],
        seed: u64,
        threads: usize,
    ) -> Result<Vec<EnforcedRelease>> {
        let mut enforcer = self.enforcer.take().ok_or(OnlineError::NotEnforcing)?;
        let result = self.release_batch_with(&mut enforcer, batch, seed, threads);
        self.enforcer = Some(enforcer);
        result
    }

    fn release_batch_with(
        &mut self,
        enforcer: &mut Enforcer,
        batch: &[(UserId, CellId)],
        seed: u64,
        threads: usize,
    ) -> Result<Vec<EnforcedRelease>> {
        let start = self
            .instruments
            .release_batch_seconds
            .is_enabled()
            .then(Instant::now);
        // The ladder is deterministic from the guard config: build it once
        // so the workers can share the cache read-only.
        enforcer.cache.prewarm(&enforcer.guard)?;

        // ---- Validation pass (no mutation). -----------------------------
        let m = self.provider.num_states();
        let mut by_shard: Vec<BTreeMap<u64, CellId>> = vec![BTreeMap::new(); self.shards.len()];
        for (id, loc) in batch {
            if loc.index() >= m {
                return Err(OnlineError::InvalidLocation {
                    cell: loc.index(),
                    num_cells: m,
                });
            }
            let shard = self.shard_of(*id);
            if !self.shards[shard].contains_key(&id.0) {
                return Err(OnlineError::UnknownUser { user: id.0 });
            }
            if by_shard[shard].insert(id.0, *loc).is_some() {
                return Err(OnlineError::DuplicateObservation { user: id.0 });
            }
        }

        let provider = &self.provider;
        let templates = &self.templates;
        let config = &self.config;
        let guard = &enforcer.guard;
        let cache = &enforcer.cache;
        let guard_obs = self.instruments.guard.clone();
        let guard_obs = &guard_obs;
        let journaling = self.store.is_some();

        let jobs: Vec<_> = self
            .shards
            .iter_mut()
            .enumerate()
            .zip(&by_shard)
            .filter(|((_, _), wanted)| !wanted.is_empty())
            .map(|((idx, shard), wanted)| (idx, (idx, shard, wanted)))
            .collect();
        let (mut items, merged, failure) =
            fan_out_shards(jobs, threads, |(shard_idx, shard, wanted), out, delta| {
                let mut rng = shard_rng(seed, shard_idx);
                // Guard every user against their own windows (peek-only;
                // commits follow below).
                let mut outcomes: Vec<(u64, GuardOutcome)> = Vec::with_capacity(wanted.len());
                for (&uid, &loc) in wanted {
                    let session = shard.get(&uid).expect("validated above");
                    let outcome = run_guard_prewarmed(cache, guard, loc, &mut rng, |column| {
                        peek_worst_loss(session.windows.iter().map(|w| &w.state), column)
                    })?;
                    guard_obs.record(&outcome);
                    outcomes.push((uid, outcome));
                }
                // Commit the chosen columns through the normal batched
                // audit path (posterior filtering, ledger, eviction). Both
                // sides iterate in user-id order, so they zip 1:1.
                let columns: BTreeMap<u64, &Vector> = outcomes
                    .iter()
                    .map(|(uid, outcome)| (*uid, &outcome.column))
                    .collect();
                let (reports, shard_delta) =
                    Self::process_shard(provider, templates, shard, &columns, config);
                delta.absorb(&shard_delta);
                for ((_, outcome), report) in outcomes.into_iter().zip(reports) {
                    let suppressed = outcome.decision == Decision::Suppressed;
                    if suppressed {
                        delta.suppressed += 1;
                    }
                    let column = if journaling {
                        outcome.column.as_slice().to_vec()
                    } else {
                        Vec::new()
                    };
                    out.push((
                        EnforcedRelease {
                            decision: outcome.decision,
                            attempts: outcome.attempts.len(),
                            report,
                        },
                        suppressed,
                        column,
                    ));
                }
                Ok(())
            });
        // Absorb the deltas from shards that committed even when another
        // shard failed — the stats must stay consistent with the mutated
        // session state.
        self.instruments.absorb(&merged);
        // Journal everything that committed, shard failure or not: a
        // release that mutated a ledger must reach the WAL. (The parallel
        // path applies before journaling; a crash in between loses only
        // never-acknowledged releases, which is sound.)
        items.sort_by_key(|(r, _, _)| r.report.user);
        let mut journal_err = None;
        if journaling {
            for (release, suppressed, column) in &items {
                let uid = release.report.user;
                let shard = self.shard_of(uid);
                if let Err(e) = Self::journal(
                    &mut self.store,
                    shard,
                    &WalRecord::Observe {
                        user: uid.0,
                        suppressed: *suppressed,
                        column: column.clone(),
                    },
                ) {
                    journal_err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = failure {
            if let OnlineError::ShardPanicked { shard } = &e {
                self.instruments.record_shard_panic(*shard);
            }
            return Err(e);
        }
        if let Some(e) = journal_err {
            return Err(e);
        }
        let releases: Vec<EnforcedRelease> = items.into_iter().map(|(r, _, _)| r).collect();
        self.maybe_checkpoint()?;
        if let Some(t0) = start {
            self.instruments
                .release_batch_seconds
                .observe(t0.elapsed().as_secs_f64());
            self.instruments
                .release_batch_size
                .observe(releases.len() as f64);
            self.instruments
                .update_occupancy(self.shards.iter().map(BTreeMap::len));
        }
        Ok(releases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_contains_worker_panics_and_keeps_surviving_deltas() {
        let jobs: Vec<(usize, u32)> = vec![(0, 0), (1, 1), (2, 2)];
        let (mut items, stats, failure) = fan_out_shards(jobs, 3, |job, out, delta| {
            if job == 1 {
                panic!("shard worker blew up");
            }
            out.push(job);
            delta.observations += 1;
            Ok(())
        });
        items.sort_unstable();
        assert_eq!(items, vec![0, 2]);
        assert_eq!(stats.observations, 2, "surviving shards' deltas absorbed");
        assert_eq!(failure, Some(OnlineError::ShardPanicked { shard: 1 }));
    }

    #[test]
    fn fan_out_reports_the_first_error_without_dropping_completed_work() {
        let jobs: Vec<(usize, u32)> = (0..4).map(|i| (i, i as u32)).collect();
        let (items, stats, failure) = fan_out_shards(jobs, 1, |job, out, delta| {
            if job == 2 {
                return Err(OnlineError::UnknownUser { user: 2 });
            }
            out.push(job);
            delta.observations += 1;
            Ok(())
        });
        assert_eq!(items, vec![0, 1]);
        assert_eq!(stats.observations, 2);
        assert_eq!(failure, Some(OnlineError::UnknownUser { user: 2 }));
    }
}
