//! Durable sessions: snapshot + write-ahead-log crash recovery.
//!
//! Everything the enforcing service knows about a user — filtered
//! posterior, open event windows, and above all the
//! [`BudgetLedger`](crate::BudgetLedger)
//! — normally lives only in RAM, so a restart would reset every ledger to
//! zero spend and let the guard re-release against budget that was already
//! consumed: a *privacy* violation under sequential-composition
//! accounting, not merely an availability gap. This module makes the
//! session state survive.
//!
//! # File layout
//!
//! A durable directory holds exactly one *generation* `seq` in the steady
//! state:
//!
//! ```text
//! <dir>/snap-<seq:016x>.bin        full service state at the checkpoint
//! <dir>/wal-<seq:016x>-<shard:04x>.log   per-shard append-only record log
//! ```
//!
//! Every committed mutation (user registration, window attach,
//! observation/release) is appended to its shard's WAL — and, with
//! [`DurableOptions::fsync`] on, flushed — *before* the result is returned
//! to the caller. A checkpoint serializes the whole state into a fresh
//! snapshot (written to a `.tmp` file and atomically renamed), starts
//! empty WAL segments for the next generation, and prunes the old one.
//!
//! # Recovery guarantees
//!
//! Recovery loads the newest valid snapshot and deterministically replays
//! its WAL tail (the journal records the *committed emission column*, so
//! replay never re-runs the calibration guard or touches an RNG). The
//! recovered ledger can never under-count spend:
//!
//! * a torn final WAL record that can be attributed to a user (its uid
//!   prefix survived) conservatively rounds that user's ledger up to
//!   exhaustion;
//! * an unattributable tear, or corruption earlier in a segment, exhausts
//!   every session on that shard;
//! * if the newest snapshot itself is unreadable and recovery falls back
//!   to an older generation, every recovered ledger is exhausted — records
//!   journaled after the older checkpoint are unknowable.
//!
//! Exhaustion dominates any spend the lost records could have added, so
//! availability never comes at the price of an under-counted ledger.

use crate::obs::StoreInstruments;
use priste_obs::Timer;
use std::fmt;
use std::path::{Path, PathBuf};

mod codec;
mod snapshot;
mod wal;

pub(crate) use codec::fnv1a64;
pub(crate) use snapshot::{encode_payload, SessionSnap, SnapshotState, WindowSnap};
pub(crate) use wal::{WalRecord, WalScan, WalTail};

/// Errors from the durable persistence layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DurableError {
    /// An OS-level I/O operation failed. Carries the original error's kind
    /// and message (not the `std::io::Error` itself, which is neither
    /// `Clone` nor `PartialEq`).
    Io {
        /// What the layer was doing, e.g. `"append WAL record"`.
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The OS error kind.
        kind: std::io::ErrorKind,
        /// The OS error message.
        message: String,
    },
    /// A durable file failed structural validation (bad magic, failed CRC,
    /// truncated payload, undecodable record).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// A durable file belongs to a different scenario than the one the
    /// service was built with (grid size, configuration, or templates
    /// differ).
    Mismatch {
        /// Which binding failed, e.g. `"scenario fingerprint"`.
        what: &'static str,
        /// The value the live service expected.
        expected: String,
        /// The value found on disk.
        found: String,
    },
    /// The directory holds no readable snapshot to recover from.
    NoSnapshot {
        /// The directory scanned.
        dir: PathBuf,
    },
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io {
                op,
                path,
                kind,
                message,
            } => {
                write!(
                    f,
                    "failed to {op} at {}: {message} ({kind:?})",
                    path.display()
                )
            }
            DurableError::Corrupt { path, detail } => {
                write!(f, "corrupt durable file {}: {detail}", path.display())
            }
            DurableError::Mismatch {
                what,
                expected,
                found,
            } => {
                write!(
                    f,
                    "durable state belongs to a different scenario: {what} is {found}, service expects {expected}"
                )
            }
            DurableError::NoSnapshot { dir } => {
                write!(f, "no readable snapshot in {}", dir.display())
            }
        }
    }
}

impl std::error::Error for DurableError {}

/// Converts an `std::io::Error` into the cloneable [`DurableError::Io`].
pub(crate) fn io_err(op: &'static str, path: &Path, e: &std::io::Error) -> DurableError {
    DurableError::Io {
        op,
        path: path.to_path_buf(),
        kind: e.kind(),
        message: e.to_string(),
    }
}

/// Durability knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableOptions {
    /// Flush every WAL append (and snapshot write) to stable storage
    /// before acknowledging. On by default: with it off, an acknowledged
    /// record can be lost or torn by a crash, and recovery then rounds the
    /// affected ledgers up to exhaustion (sound, but drastic).
    pub fsync: bool,
    /// Auto-checkpoint after this many WAL records across all shards
    /// (compacting the log into a fresh snapshot). `0` disables automatic
    /// compaction; checkpoints then only happen explicitly.
    pub snapshot_every: usize,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            fsync: true,
            snapshot_every: 4096,
        }
    }
}

/// File name of the generation-`seq` snapshot.
pub(crate) fn snap_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snap-{seq:016x}.bin"))
}

/// File name of shard `shard`'s generation-`seq` WAL segment.
pub(crate) fn wal_path(dir: &Path, seq: u64, shard: usize) -> PathBuf {
    dir.join(format!("wal-{seq:016x}-{shard:04x}.log"))
}

/// Parses `snap-<seq>.bin` back into its sequence number.
fn parse_snap_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".bin")?;
    u64::from_str_radix(hex, 16).ok()
}

/// All snapshot generations present in `dir`, newest first.
pub(crate) fn list_generations(dir: &Path) -> Result<Vec<u64>, DurableError> {
    let mut seqs = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| io_err("scan durable directory", dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("scan durable directory", dir, &e))?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_snap_name) {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    Ok(seqs)
}

/// Everything recovery learned from a durable directory.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Recovered {
    /// The snapshot generation recovery loaded.
    pub(crate) seq: u64,
    /// The snapshot state.
    pub(crate) state: SnapshotState,
    /// One WAL scan per shard, in shard order.
    pub(crate) wal: Vec<WalScan>,
    /// Whether a newer-but-unreadable snapshot generation was skipped —
    /// the caller must exhaust every ledger, since records journaled after
    /// the loaded checkpoint are unknowable.
    pub(crate) skipped_newer: bool,
}

/// Scans a durable directory: newest valid snapshot, plus its per-shard
/// WAL tails.
pub(crate) fn recover_dir(
    dir: &Path,
    fingerprint: u64,
    num_shards: usize,
) -> Result<Recovered, DurableError> {
    let generations = list_generations(dir)?;
    if generations.is_empty() {
        return Err(DurableError::NoSnapshot {
            dir: dir.to_path_buf(),
        });
    }
    let mut skipped_newer = false;
    let mut last_err = None;
    for &seq in &generations {
        let state = match snapshot::read_snapshot(&snap_path(dir, seq), seq) {
            Ok(state) => state,
            Err(e @ DurableError::Corrupt { .. }) => {
                // Unreadable generation: fall back to an older one, but
                // remember the skip — its WAL records are lost, so the
                // caller must round every ledger up.
                skipped_newer = true;
                last_err = Some(e);
                continue;
            }
            Err(e) => return Err(e),
        };
        if state.fingerprint != fingerprint {
            return Err(DurableError::Mismatch {
                what: "scenario fingerprint",
                expected: format!("{fingerprint:#018x}"),
                found: format!("{:#018x}", state.fingerprint),
            });
        }
        let mut scans = Vec::with_capacity(num_shards);
        for shard in 0..num_shards {
            scans.push(wal::read_segment(
                &wal_path(dir, seq, shard),
                seq,
                shard as u32,
                fingerprint,
            )?);
        }
        return Ok(Recovered {
            seq,
            state,
            wal: scans,
            skipped_newer,
        });
    }
    Err(last_err.expect("at least one generation was tried"))
}

/// Open append-side handle on a durable directory: the current generation's
/// per-shard WAL writers plus the checkpoint machinery.
#[derive(Debug)]
pub(crate) struct DurableStore {
    dir: PathBuf,
    opts: DurableOptions,
    fingerprint: u64,
    num_shards: usize,
    seq: u64,
    wals: Vec<wal::WalWriter>,
    records_since_checkpoint: usize,
    obs: StoreInstruments,
}

impl DurableStore {
    /// Creates (or re-attaches to) a durable directory by writing a fresh
    /// checkpoint at generation `seq` and opening empty WAL segments for
    /// it. Older generations are pruned.
    pub(crate) fn open(
        dir: &Path,
        opts: DurableOptions,
        fingerprint: u64,
        num_shards: usize,
        seq: u64,
        state: &SnapshotState,
    ) -> Result<Self, DurableError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create durable directory", dir, &e))?;
        let mut store = DurableStore {
            dir: dir.to_path_buf(),
            opts,
            fingerprint,
            num_shards,
            seq,
            wals: Vec::new(),
            records_since_checkpoint: 0,
            obs: StoreInstruments::disabled(),
        };
        store.checkpoint_at(seq, state)?;
        Ok(store)
    }

    /// The directory this store journals into.
    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    /// Swaps in live (or inert) instrument handles; the default from
    /// [`DurableStore::open`] is fully disabled.
    pub(crate) fn set_instruments(&mut self, obs: StoreInstruments) {
        self.obs = obs;
    }

    /// Appends one committed record to its shard's WAL. Returns whether the
    /// auto-compaction threshold has been crossed (the caller should
    /// checkpoint at its next safe point).
    pub(crate) fn append(
        &mut self,
        shard: usize,
        record: &WalRecord,
    ) -> Result<bool, DurableError> {
        let append_timer = Timer::start(&self.obs.append_seconds);
        let bytes = self.wals[shard].append_unsynced(record)?;
        let fsync_timer = Timer::start(&self.obs.fsync_seconds);
        self.wals[shard].sync()?;
        drop(fsync_timer);
        drop(append_timer);
        self.obs.bytes.add(bytes as u64);
        self.records_since_checkpoint += 1;
        Ok(self.opts.snapshot_every > 0
            && self.records_since_checkpoint >= self.opts.snapshot_every)
    }

    /// Whether the auto-compaction threshold has been crossed since the
    /// last checkpoint.
    pub(crate) fn due(&self) -> bool {
        self.opts.snapshot_every > 0 && self.records_since_checkpoint >= self.opts.snapshot_every
    }

    /// Compacts the WAL into a fresh snapshot of `state` as the next
    /// generation.
    pub(crate) fn checkpoint(&mut self, state: &SnapshotState) -> Result<(), DurableError> {
        self.checkpoint_at(self.seq + 1, state)
    }

    /// Crash-ordering: (1) snapshot is written and atomically renamed —
    /// once durable, it alone reproduces all acknowledged state; (2) fresh
    /// WAL segments are created for the new generation (a crash between
    /// the two recovers from the new snapshot with empty tails); (3) the
    /// old generation is pruned last.
    fn checkpoint_at(&mut self, seq: u64, state: &SnapshotState) -> Result<(), DurableError> {
        let snap = snap_path(&self.dir, seq);
        let snapshot_timer = Timer::start(&self.obs.snapshot_seconds);
        snapshot::write_snapshot(&snap, seq, state, self.opts.fsync)?;
        drop(snapshot_timer);
        if self.obs.snapshot_bytes.is_enabled() {
            if let Ok(meta) = std::fs::metadata(&snap) {
                self.obs.snapshot_bytes.set(meta.len() as f64);
            }
        }
        self.obs.checkpoints.inc();
        let mut wals = Vec::with_capacity(self.num_shards);
        for shard in 0..self.num_shards {
            wals.push(wal::WalWriter::create(
                &wal_path(&self.dir, seq, shard),
                seq,
                shard as u32,
                self.fingerprint,
                self.opts.fsync,
            )?);
        }
        self.wals = wals;
        self.seq = seq;
        self.records_since_checkpoint = 0;
        self.prune(seq);
        Ok(())
    }

    /// Best-effort removal of files from other generations (and stale
    /// `.tmp` leftovers). Failures are ignored: stale files waste space but
    /// never win the newest-valid-snapshot scan against `keep`.
    fn prune(&self, keep: u64) {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale_snap = parse_snap_name(name).is_some_and(|s| s != keep);
            let stale_wal = name
                .strip_prefix("wal-")
                .and_then(|rest| rest.split('-').next())
                .and_then(|hex| u64::from_str_radix(hex, 16).ok())
                .is_some_and(|s| s != keep);
            let stale_tmp = name.ends_with(".tmp");
            if stale_snap || stale_wal || stale_tmp {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_state(fingerprint: u64) -> SnapshotState {
        SnapshotState {
            fingerprint,
            stats: [0; 6],
            sessions: Vec::new(),
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "priste-durable-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn open_checkpoint_prune_cycle() {
        let dir = tempdir("cycle");
        let fp = 0x1234;
        let mut store =
            DurableStore::open(&dir, DurableOptions::default(), fp, 2, 1, &empty_state(fp))
                .unwrap();
        store
            .append(
                0,
                &WalRecord::AddUser {
                    user: 0,
                    pi: vec![0.5, 0.5],
                },
            )
            .unwrap();
        let rec = recover_dir(&dir, fp, 2).unwrap();
        assert_eq!(rec.seq, 1);
        assert_eq!(rec.wal[0].records.len(), 1);
        assert!(rec.wal[1].records.is_empty());
        assert!(!rec.skipped_newer);

        // Checkpointing compacts: generation 2 exists, generation 1 is gone.
        store.checkpoint(&empty_state(fp)).unwrap();
        assert!(snap_path(&dir, 2).exists());
        assert!(!snap_path(&dir, 1).exists());
        assert!(!wal_path(&dir, 1, 0).exists());
        let rec = recover_dir(&dir, fp, 2).unwrap();
        assert_eq!(rec.seq, 2);
        assert!(rec.wal.iter().all(|s| s.records.is_empty()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_compaction_threshold_fires() {
        let dir = tempdir("threshold");
        let fp = 0x55;
        let opts = DurableOptions {
            fsync: false,
            snapshot_every: 2,
        };
        let mut store = DurableStore::open(&dir, opts, fp, 1, 1, &empty_state(fp)).unwrap();
        let rec = WalRecord::RemoveUser { user: 9 };
        assert!(!store.append(0, &rec).unwrap());
        assert!(store.append(0, &rec).unwrap());
        store.checkpoint(&empty_state(fp)).unwrap();
        assert!(!store.append(0, &rec).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_and_flags_the_skip() {
        let dir = tempdir("fallback");
        let fp = 0x77;
        let mut store =
            DurableStore::open(&dir, DurableOptions::default(), fp, 1, 1, &empty_state(fp))
                .unwrap();
        store.checkpoint(&empty_state(fp)).unwrap();
        // Resurrect a valid older generation, then damage the newest.
        let older = empty_state(fp);
        snapshot::write_snapshot(&snap_path(&dir, 1), 1, &older, false).unwrap();
        let newest = snap_path(&dir, 2);
        let mut bytes = std::fs::read(&newest).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        let rec = recover_dir(&dir, fp, 1).unwrap();
        assert_eq!(rec.seq, 1);
        assert!(rec.skipped_newer, "the skipped generation must be flagged");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_and_fingerprint_mismatch_are_structured() {
        let dir = tempdir("errors");
        assert!(matches!(
            recover_dir(&dir, 1, 1),
            Err(DurableError::Io { .. })
        ));
        let fp = 0x99;
        DurableStore::open(&dir, DurableOptions::default(), fp, 1, 1, &empty_state(fp)).unwrap();
        assert!(matches!(
            recover_dir(&dir, fp + 1, 1),
            Err(DurableError::Mismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn display_is_informative() {
        let e = DurableError::NoSnapshot {
            dir: PathBuf::from("/tmp/x"),
        };
        assert!(e.to_string().contains("/tmp/x"));
        let e = DurableError::Mismatch {
            what: "scenario fingerprint",
            expected: "0xa".into(),
            found: "0xb".into(),
        };
        assert!(e.to_string().contains("fingerprint"));
    }
}
