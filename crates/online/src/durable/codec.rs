//! Little-endian binary codec and CRC-32 for the durable layer.
//!
//! Every durable artifact (snapshot payloads, WAL frames) is built from the
//! same five primitives — `u8`, `u32`, `u64`, `f64`, and length-prefixed
//! `f64` slices — written little-endian with no padding. Floats are stored
//! as raw IEEE-754 bit patterns, so a decode→encode round trip is
//! byte-identical and recovered posteriors/forward vectors match the live
//! ones bit for bit (the determinism the recovery tests pin).

/// Decode failures carry a human-readable detail; callers wrap them into
/// [`DurableError::Corrupt`](crate::durable::DurableError::Corrupt) with the
/// offending path.
pub(crate) type CodecResult<T> = Result<T, String>;

/// Append-only byte sink for encoding.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed (`u64`) slice of raw IEEE-754 doubles.
    pub(crate) fn put_f64_slice(&mut self, vs: &[f64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f64(v);
        }
    }
}

/// Bounds-checked cursor over an encoded buffer.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(format!(
                "truncated {what}: need {n} bytes, {} left",
                self.remaining()
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn get_u8(&mut self, what: &str) -> CodecResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn get_u32(&mut self, what: &str) -> CodecResult<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    pub(crate) fn get_u64(&mut self, what: &str) -> CodecResult<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    pub(crate) fn get_f64(&mut self, what: &str) -> CodecResult<f64> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Counterpart of [`Writer::put_f64_slice`]. The length prefix is
    /// sanity-checked against the remaining buffer before allocating, so a
    /// corrupt prefix cannot trigger an absurd allocation.
    pub(crate) fn get_f64_slice(&mut self, what: &str) -> CodecResult<Vec<f64>> {
        let len = self.get_u64(what)? as usize;
        if len
            .checked_mul(8)
            .is_none_or(|bytes| bytes > self.remaining())
        {
            return Err(format!(
                "corrupt {what}: length prefix {len} exceeds {} remaining bytes",
                self.remaining()
            ));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64(what)?);
        }
        Ok(out)
    }

    pub(crate) fn expect_end(&self, what: &str) -> CodecResult<()> {
        if self.remaining() != 0 {
            return Err(format!(
                "{what} carries {} trailing bytes past its payload",
                self.remaining()
            ));
        }
        Ok(())
    }
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// FNV-1a 64-bit, used for configuration fingerprints and state digests.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.125);
        w.put_f64(f64::INFINITY);
        w.put_f64_slice(&[1.0, 2.5, f64::MIN_POSITIVE]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8("u8").unwrap(), 7);
        assert_eq!(r.get_u32("u32").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("u64").unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64("f64").unwrap(), -0.125);
        assert_eq!(r.get_f64("f64").unwrap(), f64::INFINITY);
        assert_eq!(
            r.get_f64_slice("slice").unwrap(),
            vec![1.0, 2.5, f64::MIN_POSITIVE]
        );
        r.expect_end("buffer").unwrap();
    }

    #[test]
    fn truncation_and_trailing_bytes_are_reported() {
        let mut w = Writer::new();
        w.put_u32(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.get_u64("u64").is_err());
        let mut r = Reader::new(&bytes);
        r.get_u8("u8").unwrap();
        assert!(r.expect_end("buffer").is_err());
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.get_f64_slice("slice").is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
    }
}
