//! Per-shard append-only write-ahead log.
//!
//! Each WAL segment file starts with a fixed header binding it to a store
//! generation (`seq`), a shard index, and a scenario fingerprint, followed
//! by a stream of frames:
//!
//! ```text
//! [len: u32 LE][crc32: u32 LE][payload: len bytes]
//! ```
//!
//! where the payload begins `[tag: u8][user: u64 LE]`. The uid prefix is
//! deliberate: a torn final frame whose first 9 payload bytes survived can
//! still be *attributed* to a user, letting recovery round only that user's
//! ledger up to exhaustion instead of the whole shard.
//!
//! Records are appended (and optionally fsynced) **before** the
//! corresponding result is returned to the caller, so every observation a
//! client ever saw the effect of is on disk.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use super::codec::{crc32, CodecResult, Reader, Writer};
use super::{io_err, DurableError};

/// Magic prefix of every WAL segment file.
pub(crate) const WAL_MAGIC: &[u8; 8] = b"PRWAL01\0";
/// Current WAL format version.
pub(crate) const WAL_VERSION: u32 = 1;
/// Upper bound on a single frame payload; a larger length prefix means the
/// header bytes themselves are garbage (torn or corrupt write).
const MAX_FRAME_LEN: u32 = 1 << 28;

/// One committed mutation, journaled before its effect is acknowledged.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalRecord {
    /// A user session was registered with the given prior.
    AddUser {
        /// User id.
        user: u64,
        /// Initial location distribution.
        pi: Vec<f64>,
    },
    /// A user session was deregistered.
    RemoveUser {
        /// User id.
        user: u64,
    },
    /// An event window was attached from a registered template.
    AttachEvent {
        /// User id.
        user: u64,
        /// Template index the window was instantiated from.
        template: u32,
    },
    /// A committed observation: the emission column that was actually
    /// ingested (post-guard, i.e. the *released* column in enforcing mode).
    /// Journaling the committed column — not the RNG state — is what makes
    /// replay deterministic without re-running the calibration guard.
    Observe {
        /// User id.
        user: u64,
        /// Whether the guard suppressed this release (stats bookkeeping).
        suppressed: bool,
        /// The emission column that was committed into the session.
        column: Vec<f64>,
    },
}

const TAG_ADD_USER: u8 = 1;
const TAG_REMOVE_USER: u8 = 2;
const TAG_ATTACH_EVENT: u8 = 3;
const TAG_OBSERVE: u8 = 4;

impl WalRecord {
    fn encode_payload(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            WalRecord::AddUser { user, pi } => {
                w.put_u8(TAG_ADD_USER);
                w.put_u64(*user);
                w.put_f64_slice(pi);
            }
            WalRecord::RemoveUser { user } => {
                w.put_u8(TAG_REMOVE_USER);
                w.put_u64(*user);
            }
            WalRecord::AttachEvent { user, template } => {
                w.put_u8(TAG_ATTACH_EVENT);
                w.put_u64(*user);
                w.put_u32(*template);
            }
            WalRecord::Observe {
                user,
                suppressed,
                column,
            } => {
                w.put_u8(TAG_OBSERVE);
                w.put_u64(*user);
                w.put_u8(u8::from(*suppressed));
                w.put_f64_slice(column);
            }
        }
        w.into_bytes()
    }

    fn decode_payload(payload: &[u8]) -> CodecResult<Self> {
        let mut r = Reader::new(payload);
        let tag = r.get_u8("record tag")?;
        let user = r.get_u64("record uid")?;
        let record = match tag {
            TAG_ADD_USER => WalRecord::AddUser {
                user,
                pi: r.get_f64_slice("add-user prior")?,
            },
            TAG_REMOVE_USER => WalRecord::RemoveUser { user },
            TAG_ATTACH_EVENT => WalRecord::AttachEvent {
                user,
                template: r.get_u32("attach-event template")?,
            },
            TAG_OBSERVE => WalRecord::Observe {
                user,
                suppressed: r.get_u8("observe suppressed flag")? != 0,
                column: r.get_f64_slice("observe column")?,
            },
            other => return Err(format!("unknown WAL record tag {other}")),
        };
        r.expect_end("WAL record")?;
        Ok(record)
    }

    /// Full frame bytes: length + CRC header followed by the payload.
    pub(crate) fn encode_frame(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }
}

/// How a WAL segment ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WalTail {
    /// Every frame checked out and the file ends on a frame boundary.
    Clean,
    /// The final bytes are a torn or corrupt frame. `user` is the uid
    /// recovered from the partial payload prefix, when enough of it
    /// survived to be attributable.
    Torn {
        /// Uid from the partial payload, if at least 9 payload bytes exist.
        user: Option<u64>,
    },
}

/// Encoded WAL header for generation `seq`, shard `shard`.
fn encode_header(seq: u64, shard: u32, fingerprint: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(WAL_VERSION);
    w.put_u64(seq);
    w.put_u32(shard);
    w.put_u64(fingerprint);
    let mut bytes = WAL_MAGIC.to_vec();
    bytes.extend_from_slice(&w.into_bytes());
    bytes
}

const HEADER_LEN: usize = 8 + 4 + 8 + 4 + 8;

/// Open append handle for one shard's current WAL segment.
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: File,
    path: PathBuf,
    fsync: bool,
}

impl WalWriter {
    /// Create a fresh segment (truncating any stale file at `path`) and
    /// persist its header.
    pub(crate) fn create(
        path: &Path,
        seq: u64,
        shard: u32,
        fingerprint: u64,
        fsync: bool,
    ) -> Result<Self, DurableError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err("create WAL segment", path, &e))?;
        file.write_all(&encode_header(seq, shard, fingerprint))
            .map_err(|e| io_err("write WAL header", path, &e))?;
        let mut writer = WalWriter {
            file,
            path: path.to_path_buf(),
            fsync,
        };
        writer.sync()?;
        Ok(writer)
    }

    /// Write the frame without syncing, returning the byte count; the
    /// caller pairs this with [`WalWriter::sync`] (split so the store can
    /// time the fsync separately from the write — with `fsync` on, a
    /// record is on disk once its `sync` returns).
    pub(crate) fn append_unsynced(&mut self, record: &WalRecord) -> Result<usize, DurableError> {
        let frame = record.encode_frame();
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("append WAL record", &self.path, &e))?;
        Ok(frame.len())
    }

    pub(crate) fn sync(&mut self) -> Result<(), DurableError> {
        if self.fsync {
            self.file
                .sync_data()
                .map_err(|e| io_err("fsync WAL segment", &self.path, &e))?;
        }
        Ok(())
    }
}

/// Result of scanning a shard WAL segment during recovery.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WalScan {
    /// Records whose frames passed the CRC check, in append order.
    pub(crate) records: Vec<WalRecord>,
    /// How the segment ended.
    pub(crate) tail: WalTail,
}

/// Read a shard segment, validating the header against the expected
/// generation, shard index, and fingerprint.
///
/// Torn-tail policy (soundness over completeness):
/// * a partial frame at EOF is a torn write — report it, attributing the
///   uid when the payload prefix survived;
/// * a CRC mismatch **followed by more data** is not an interrupted append
///   but real corruption — stop reading and report an unattributable tear,
///   which makes recovery exhaust the whole shard. Frames after the damage
///   are dropped; since exhaustion dominates any spend they could add, the
///   recovered ledger still never under-counts.
pub(crate) fn read_segment(
    path: &Path,
    seq: u64,
    shard: u32,
    fingerprint: u64,
) -> Result<WalScan, DurableError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)
                .map_err(|e| io_err("read WAL segment", path, &e))?;
        }
        // A checkpoint creates every shard segment eagerly, so a missing
        // file only happens for shards that never saw a record after an
        // interrupted checkpoint; treat it as empty.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                records: Vec::new(),
                tail: WalTail::Clean,
            });
        }
        Err(e) => return Err(io_err("open WAL segment", path, &e)),
    }

    let corrupt = |detail: String| DurableError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };

    if bytes.len() < HEADER_LEN {
        // The header itself was torn; no frame was ever durable here.
        return Ok(WalScan {
            records: Vec::new(),
            tail: WalTail::Torn { user: None },
        });
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(corrupt("bad WAL magic".into()));
    }
    let mut r = Reader::new(&bytes[8..HEADER_LEN]);
    let version = r.get_u32("WAL version").map_err(corrupt)?;
    if version != WAL_VERSION {
        return Err(corrupt(format!(
            "unsupported WAL version {version}, expected {WAL_VERSION}"
        )));
    }
    let file_seq = r.get_u64("WAL seq").map_err(corrupt)?;
    let file_shard = r.get_u32("WAL shard").map_err(corrupt)?;
    let file_fp = r.get_u64("WAL fingerprint").map_err(corrupt)?;
    if file_seq != seq || file_shard != shard {
        return Err(corrupt(format!(
            "WAL labelled (seq {file_seq}, shard {file_shard}), expected (seq {seq}, shard {shard})"
        )));
    }
    if file_fp != fingerprint {
        return Err(DurableError::Mismatch {
            what: "scenario fingerprint",
            expected: format!("{fingerprint:#018x}"),
            found: format!("{file_fp:#018x}"),
        });
    }

    let mut records = Vec::new();
    let mut pos = HEADER_LEN;
    loop {
        let left = bytes.len() - pos;
        if left == 0 {
            return Ok(WalScan {
                records,
                tail: WalTail::Clean,
            });
        }
        if left < 8 {
            return Ok(WalScan {
                records,
                tail: WalTail::Torn { user: None },
            });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let want_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        let payload_start = pos + 8;
        let partial_payload = &bytes[payload_start..];
        let attribute = |payload: &[u8]| {
            if payload.len() >= 9 {
                Some(u64::from_le_bytes(
                    payload[1..9].try_into().expect("8 bytes"),
                ))
            } else {
                None
            }
        };
        if len > MAX_FRAME_LEN {
            // Garbage length prefix: the header bytes themselves are torn.
            return Ok(WalScan {
                records,
                tail: WalTail::Torn { user: None },
            });
        }
        let len = len as usize;
        if partial_payload.len() < len {
            return Ok(WalScan {
                records,
                tail: WalTail::Torn {
                    user: attribute(partial_payload),
                },
            });
        }
        let payload = &partial_payload[..len];
        if crc32(payload) != want_crc {
            // Corrupt frame. If it is the final frame this is a tear of the
            // payload bytes; either way attribution from the prefix is only
            // trustworthy for an EOF tear, so mid-file damage stays
            // unattributable (recovery exhausts the shard).
            let at_eof = payload_start + len == bytes.len();
            return Ok(WalScan {
                records,
                tail: WalTail::Torn {
                    user: if at_eof { attribute(payload) } else { None },
                },
            });
        }
        let record = WalRecord::decode_payload(payload)
            .map_err(|detail| corrupt(format!("frame at byte {pos}: {detail}")))?;
        records.push(record);
        pos = payload_start + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::AddUser {
                user: 42,
                pi: vec![0.25; 4],
            },
            WalRecord::AttachEvent {
                user: 42,
                template: 1,
            },
            WalRecord::Observe {
                user: 42,
                suppressed: false,
                column: vec![0.5, 0.125, 0.25, 0.125],
            },
            WalRecord::Observe {
                user: 7,
                suppressed: true,
                column: vec![1.0, 0.0, 0.0, 0.0],
            },
            WalRecord::RemoveUser { user: 7 },
        ]
    }

    fn write_segment(path: &Path, records: &[WalRecord]) {
        let mut w = WalWriter::create(path, 3, 2, 0xFEED, false).unwrap();
        for r in records {
            w.append_unsynced(r).unwrap();
            w.sync().unwrap();
        }
    }

    #[test]
    fn records_roundtrip_through_a_segment() {
        let dir = tempdir();
        let path = dir.join("wal-test.log");
        let records = sample_records();
        write_segment(&path, &records);
        let scan = read_segment(&path, 3, 2, 0xFEED).unwrap();
        assert_eq!(scan.records, records);
        assert_eq!(scan.tail, WalTail::Clean);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_final_frame_is_attributed_to_its_user() {
        let dir = tempdir();
        let path = dir.join("wal-torn.log");
        // End on an Observe frame: its payload is long enough that keeping
        // nine bytes of it genuinely tears the frame.
        let records = sample_records()[..4].to_vec();
        write_segment(&path, &records);
        let full = std::fs::read(&path).unwrap();
        let last_frame = records.last().unwrap().encode_frame();
        // Keep the length+crc header and the first 9 payload bytes of the
        // final frame: enough to attribute, not enough to verify.
        let cut = full.len() - last_frame.len() + 8 + 9;
        std::fs::write(&path, &full[..cut]).unwrap();
        let scan = read_segment(&path, 3, 2, 0xFEED).unwrap();
        assert_eq!(scan.records, records[..records.len() - 1]);
        assert_eq!(scan.tail, WalTail::Torn { user: Some(7) });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tear_inside_the_frame_header_is_unattributable() {
        let dir = tempdir();
        let path = dir.join("wal-header-torn.log");
        let records = sample_records();
        write_segment(&path, &records);
        let full = std::fs::read(&path).unwrap();
        let last_frame = records.last().unwrap().encode_frame();
        let cut = full.len() - last_frame.len() + 3;
        std::fs::write(&path, &full[..cut]).unwrap();
        let scan = read_segment(&path, 3, 2, 0xFEED).unwrap();
        assert_eq!(scan.records, records[..records.len() - 1]);
        assert_eq!(scan.tail, WalTail::Torn { user: None });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn midfile_corruption_stops_the_scan_unattributed() {
        let dir = tempdir();
        let path = dir.join("wal-corrupt.log");
        let records = sample_records();
        write_segment(&path, &records);
        let mut full = std::fs::read(&path).unwrap();
        // Flip a byte inside the first frame's payload.
        let first_payload_at = HEADER_LEN + 8 + 2;
        full[first_payload_at] ^= 0xFF;
        std::fs::write(&path, &full).unwrap();
        let scan = read_segment(&path, 3, 2, 0xFEED).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.tail, WalTail::Torn { user: None });
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_mismatches_are_structured_errors() {
        let dir = tempdir();
        let path = dir.join("wal-mismatch.log");
        write_segment(&path, &sample_records());
        assert!(matches!(
            read_segment(&path, 4, 2, 0xFEED),
            Err(DurableError::Corrupt { .. })
        ));
        assert!(matches!(
            read_segment(&path, 3, 0, 0xFEED),
            Err(DurableError::Corrupt { .. })
        ));
        assert!(matches!(
            read_segment(&path, 3, 2, 0xBEEF),
            Err(DurableError::Mismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_segment_reads_as_empty() {
        let dir = tempdir();
        let scan = read_segment(&dir.join("absent.log"), 0, 0, 0).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.tail, WalTail::Clean);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "priste-wal-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
