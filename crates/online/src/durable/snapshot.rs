//! CRC-checked, atomically-renamed snapshot files.
//!
//! A snapshot is the full serialized service state at a checkpoint: the
//! aggregate counters plus every session's posterior, ledger, and event
//! windows (each window carrying the `IncrementalTwoWorld` replay seed —
//! attach-time prior, forward-mantissa vector, log scale, and cursor).
//!
//! Layout:
//!
//! ```text
//! [magic "PRSNP01\0"][version u32][seq u64][payload_len u64][crc32 u32][payload]
//! ```
//!
//! Snapshots are written to `<name>.tmp`, fsynced, then renamed over the
//! final name — a crash mid-write leaves either the previous snapshot or a
//! `.tmp` that recovery never reads, never a half-written current file.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::Path;

use super::codec::{crc32, CodecResult, Reader, Writer};
use super::{io_err, DurableError};

/// Magic prefix of every snapshot file.
pub(crate) const SNAP_MAGIC: &[u8; 8] = b"PRSNP01\0";
/// Current snapshot format version.
pub(crate) const SNAP_VERSION: u32 = 1;

/// One event window's replay seed.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct WindowSnap {
    /// Template index the window was instantiated from.
    pub(crate) template: u32,
    /// Window-local cursor (observations consumed since attach).
    pub(crate) t: u64,
    /// Log scale factored out of the forward mantissa.
    pub(crate) log_scale: f64,
    /// Attach-time prior the window was seeded with.
    pub(crate) pi: Vec<f64>,
    /// Stacked two-world forward mantissa (length `2m`).
    pub(crate) mantissa: Vec<f64>,
}

/// One user session's persisted state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SessionSnap {
    /// User id.
    pub(crate) user: u64,
    /// User-local clock.
    pub(crate) t: u64,
    /// Ledger budget.
    pub(crate) budget: f64,
    /// Ledger spend (may be `+∞` after conservative rounding).
    pub(crate) spent: f64,
    /// Ledger observation count.
    pub(crate) observations: u64,
    /// Ledger violation count.
    pub(crate) violations: u64,
    /// Filtered location posterior.
    pub(crate) posterior: Vec<f64>,
    /// Active windows, in attach order.
    pub(crate) windows: Vec<WindowSnap>,
}

/// Full service state at a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SnapshotState {
    /// Scenario fingerprint the state belongs to.
    pub(crate) fingerprint: u64,
    /// `ServiceStats` counters in declaration order: observations, evicted,
    /// certified, violated, mismatched, suppressed.
    pub(crate) stats: [u64; 6],
    /// All sessions, shard-major then user-id order (deterministic for a
    /// given state).
    pub(crate) sessions: Vec<SessionSnap>,
}

/// Serializes the snapshot payload (no file header). Deterministic: the
/// same state always encodes to the same bytes, which is what makes
/// `state_digest` a usable equality witness in the recovery tests.
pub(crate) fn encode_payload(state: &SnapshotState) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(state.fingerprint);
    for &c in &state.stats {
        w.put_u64(c);
    }
    w.put_u64(state.sessions.len() as u64);
    for s in &state.sessions {
        w.put_u64(s.user);
        w.put_u64(s.t);
        w.put_f64(s.budget);
        w.put_f64(s.spent);
        w.put_u64(s.observations);
        w.put_u64(s.violations);
        w.put_f64_slice(&s.posterior);
        w.put_u32(s.windows.len() as u32);
        for win in &s.windows {
            w.put_u32(win.template);
            w.put_u64(win.t);
            w.put_f64(win.log_scale);
            w.put_f64_slice(&win.pi);
            w.put_f64_slice(&win.mantissa);
        }
    }
    w.into_bytes()
}

/// Inverse of [`encode_payload`].
pub(crate) fn decode_payload(bytes: &[u8]) -> CodecResult<SnapshotState> {
    let mut r = Reader::new(bytes);
    let fingerprint = r.get_u64("snapshot fingerprint")?;
    let mut stats = [0u64; 6];
    for c in &mut stats {
        *c = r.get_u64("snapshot stats")?;
    }
    let num_sessions = r.get_u64("session count")?;
    let mut sessions = Vec::new();
    for _ in 0..num_sessions {
        let user = r.get_u64("session uid")?;
        let t = r.get_u64("session clock")?;
        let budget = r.get_f64("ledger budget")?;
        let spent = r.get_f64("ledger spent")?;
        let observations = r.get_u64("ledger observations")?;
        let violations = r.get_u64("ledger violations")?;
        let posterior = r.get_f64_slice("session posterior")?;
        let num_windows = r.get_u32("window count")?;
        let mut windows = Vec::new();
        for _ in 0..num_windows {
            windows.push(WindowSnap {
                template: r.get_u32("window template")?,
                t: r.get_u64("window clock")?,
                log_scale: r.get_f64("window log scale")?,
                pi: r.get_f64_slice("window prior")?,
                mantissa: r.get_f64_slice("window mantissa")?,
            });
        }
        sessions.push(SessionSnap {
            user,
            t,
            budget,
            spent,
            observations,
            violations,
            posterior,
            windows,
        });
    }
    r.expect_end("snapshot payload")?;
    Ok(SnapshotState {
        fingerprint,
        stats,
        sessions,
    })
}

/// Writes a snapshot for generation `seq` atomically: encode → `.tmp` →
/// fsync → rename over the final path.
pub(crate) fn write_snapshot(
    path: &Path,
    seq: u64,
    state: &SnapshotState,
    fsync: bool,
) -> Result<(), DurableError> {
    let payload = encode_payload(state);
    let mut bytes = SNAP_MAGIC.to_vec();
    let mut header = Writer::new();
    header.put_u32(SNAP_VERSION);
    header.put_u64(seq);
    header.put_u64(payload.len() as u64);
    header.put_u32(crc32(&payload));
    bytes.extend_from_slice(&header.into_bytes());
    bytes.extend_from_slice(&payload);

    let tmp = path.with_extension("bin.tmp");
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| io_err("create snapshot tmp", &tmp, &e))?;
        f.write_all(&bytes)
            .map_err(|e| io_err("write snapshot", &tmp, &e))?;
        if fsync {
            f.sync_data()
                .map_err(|e| io_err("fsync snapshot", &tmp, &e))?;
        }
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err("rename snapshot into place", path, &e))?;
    if fsync {
        // Persist the rename itself (directory entry).
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_data();
            }
        }
    }
    Ok(())
}

/// Reads and fully validates one snapshot file (magic, version, sequence
/// label, CRC, payload shape).
pub(crate) fn read_snapshot(path: &Path, seq: u64) -> Result<SnapshotState, DurableError> {
    let corrupt = |detail: String| DurableError::Corrupt {
        path: path.to_path_buf(),
        detail,
    };
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err("read snapshot", path, &e))?;
    if bytes.len() < 8 || &bytes[..8] != SNAP_MAGIC {
        return Err(corrupt("bad snapshot magic".into()));
    }
    let mut r = Reader::new(&bytes[8..]);
    let version = r.get_u32("snapshot version").map_err(corrupt)?;
    if version != SNAP_VERSION {
        return Err(corrupt(format!(
            "unsupported snapshot version {version}, expected {SNAP_VERSION}"
        )));
    }
    let file_seq = r.get_u64("snapshot seq").map_err(corrupt)?;
    if file_seq != seq {
        return Err(corrupt(format!(
            "snapshot labelled seq {file_seq}, expected {seq}"
        )));
    }
    let len = r.get_u64("snapshot length").map_err(corrupt)? as usize;
    let want_crc = r.get_u32("snapshot crc").map_err(corrupt)?;
    if r.remaining() != len {
        return Err(corrupt(format!(
            "snapshot payload is {} bytes, header says {len}",
            r.remaining()
        )));
    }
    let payload = &bytes[bytes.len() - len..];
    if crc32(payload) != want_crc {
        return Err(corrupt("snapshot payload failed its CRC check".into()));
    }
    decode_payload(payload).map_err(corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sample_state() -> SnapshotState {
        SnapshotState {
            fingerprint: 0xABCD_EF01,
            stats: [10, 2, 7, 1, 0, 3],
            sessions: vec![
                SessionSnap {
                    user: 3,
                    t: 5,
                    budget: 2.0,
                    spent: 1.25,
                    observations: 5,
                    violations: 1,
                    posterior: vec![0.5, 0.25, 0.25],
                    windows: vec![WindowSnap {
                        template: 0,
                        t: 2,
                        log_scale: -3.5,
                        pi: vec![0.4, 0.3, 0.3],
                        mantissa: vec![0.1; 6],
                    }],
                },
                SessionSnap {
                    user: 9,
                    t: 1,
                    budget: 2.0,
                    spent: f64::INFINITY,
                    observations: 1,
                    violations: 0,
                    posterior: vec![1.0, 0.0, 0.0],
                    windows: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn payload_roundtrips_bit_exactly() {
        let state = sample_state();
        let bytes = encode_payload(&state);
        assert_eq!(decode_payload(&bytes).unwrap(), state);
        // Determinism: encoding is a pure function of the state.
        assert_eq!(encode_payload(&state), bytes);
    }

    #[test]
    fn file_roundtrips_and_rejects_damage() {
        let dir = tempdir();
        let path = dir.join("snap-1.bin");
        let state = sample_state();
        write_snapshot(&path, 1, &state, false).unwrap();
        assert_eq!(read_snapshot(&path, 1).unwrap(), state);
        // Wrong expected sequence.
        assert!(matches!(
            read_snapshot(&path, 2),
            Err(DurableError::Corrupt { .. })
        ));
        // Flip one payload byte: the CRC catches it.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path, 1),
            Err(DurableError::Corrupt { .. })
        ));
        // Truncate: the length check catches it.
        write_snapshot(&path, 1, &state, false).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(matches!(
            read_snapshot(&path, 1),
            Err(DurableError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "priste-snap-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
