use crate::durable::DurableError;
use priste_calibrate::CalibrateError;
use priste_quantify::QuantifyError;
use std::fmt;

/// Errors produced by the streaming service layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OnlineError {
    /// A quantification-layer error (domain mismatches, bad distributions,
    /// malformed emission columns, degenerate priors, zero likelihoods).
    Quantify(QuantifyError),
    /// A calibration-layer error from the enforcing-mode guard (mechanism
    /// rebuilds, guard configuration).
    Calibrate(CalibrateError),
    /// [`SessionManager::release`](crate::SessionManager::release) was
    /// called on a service that never enabled enforcement.
    NotEnforcing,
    /// A true location handed to the enforcing path was outside the
    /// mechanism's domain.
    InvalidLocation {
        /// Offending 0-based cell index.
        cell: usize,
        /// Domain size.
        num_cells: usize,
    },
    /// The service configuration failed validation.
    InvalidConfig {
        /// What was wrong.
        message: String,
    },
    /// An operation referenced a user id that is not registered.
    UnknownUser {
        /// The offending user id.
        user: u64,
    },
    /// A user id was registered twice.
    DuplicateUser {
        /// The offending user id.
        user: u64,
    },
    /// An operation referenced an event template that was never registered.
    UnknownTemplate {
        /// The offending template index.
        template: usize,
    },
    /// One ingest batch carried two observations for the same user; batches
    /// are one-observation-per-user-per-timestep by construction.
    DuplicateObservation {
        /// The offending user id.
        user: u64,
    },
    /// A shard worker thread panicked during a fanned-out batch. The
    /// surviving shards' results and stats deltas are still absorbed, so
    /// [`ServiceStats`](crate::ServiceStats) stays consistent with the
    /// session state that actually mutated.
    ShardPanicked {
        /// Index of the shard whose worker died.
        shard: usize,
    },
    /// The durable persistence layer failed (journaling, checkpointing, or
    /// recovery).
    Durable(DurableError),
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::Quantify(e) => write!(f, "quantification error: {e}"),
            OnlineError::Calibrate(e) => write!(f, "calibration error: {e}"),
            OnlineError::NotEnforcing => {
                write!(f, "enforcing mode is not enabled on this service")
            }
            OnlineError::InvalidLocation { cell, num_cells } => {
                write!(
                    f,
                    "true location {cell} outside the {num_cells}-cell domain"
                )
            }
            OnlineError::InvalidConfig { message } => {
                write!(f, "invalid service configuration: {message}")
            }
            OnlineError::UnknownUser { user } => write!(f, "unknown user {user}"),
            OnlineError::DuplicateUser { user } => write!(f, "user {user} already registered"),
            OnlineError::UnknownTemplate { template } => {
                write!(f, "unknown event template {template}")
            }
            OnlineError::DuplicateObservation { user } => {
                write!(f, "user {user} appears twice in one ingest batch")
            }
            OnlineError::ShardPanicked { shard } => {
                write!(f, "shard {shard} worker panicked during a batched pass")
            }
            OnlineError::Durable(e) => write!(f, "durable persistence error: {e}"),
        }
    }
}

impl std::error::Error for OnlineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OnlineError::Quantify(e) => Some(e),
            OnlineError::Calibrate(e) => Some(e),
            OnlineError::Durable(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DurableError> for OnlineError {
    fn from(e: DurableError) -> Self {
        OnlineError::Durable(e)
    }
}

impl From<QuantifyError> for OnlineError {
    fn from(e: QuantifyError) -> Self {
        OnlineError::Quantify(e)
    }
}

impl From<CalibrateError> for OnlineError {
    fn from(e: CalibrateError) -> Self {
        OnlineError::Calibrate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        for e in [
            OnlineError::Quantify(QuantifyError::DegeneratePrior { prior: 0.0 }),
            OnlineError::InvalidConfig {
                message: "x".into(),
            },
            OnlineError::UnknownUser { user: 3 },
            OnlineError::DuplicateUser { user: 4 },
            OnlineError::UnknownTemplate { template: 5 },
            OnlineError::DuplicateObservation { user: 6 },
            OnlineError::Calibrate(CalibrateError::InvalidConfig {
                message: "y".into(),
            }),
            OnlineError::NotEnforcing,
            OnlineError::InvalidLocation {
                cell: 9,
                num_cells: 4,
            },
            OnlineError::ShardPanicked { shard: 2 },
            OnlineError::Durable(DurableError::NoSnapshot {
                dir: std::path::PathBuf::from("/tmp/d"),
            }),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn durable_errors_convert_and_chain() {
        let e: OnlineError = DurableError::NoSnapshot {
            dir: std::path::PathBuf::from("/tmp/d"),
        }
        .into();
        assert!(matches!(e, OnlineError::Durable(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn quantify_errors_convert_and_chain() {
        let e: OnlineError = QuantifyError::ZeroLikelihood { t: 2 }.into();
        assert!(matches!(
            e,
            OnlineError::Quantify(QuantifyError::ZeroLikelihood { t: 2 })
        ));
        assert!(std::error::Error::source(&e).is_some());
    }
}
