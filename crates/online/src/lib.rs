//! `priste-online` — a streaming multi-user spatiotemporal event-privacy
//! service built on incremental quantification.
//!
//! The offline pipeline ([`priste_quantify`], `priste_core`) answers "is
//! this release safe?" by replaying an event's whole horizon for a single
//! user. This crate turns that checker into a **service**: many users, one
//! shared mobility model, per-timestamp updates.
//!
//! * [`Session`] — per-user state: the filtered location posterior, active
//!   event windows (each an [`IncrementalTwoWorld`] running `O(m²)` per
//!   observation — the per-timestamp recursion of the journal extension,
//!   arXiv:1907.10814), and a conservative [`BudgetLedger`]. The sliding
//!   per-user window state is in the spirit of δ-location-set privacy under
//!   temporal correlations (arXiv:1410.5919).
//! * [`SessionManager`] — shards users, batches same-timestep work (one
//!   posterior matmul per group, one shared
//!   [`LiftedStep`](priste_quantify::lifted::LiftedStep) applied via
//!   `apply_rows` per (template, window-age) group), and evicts expired
//!   windows.
//! * [`OnlineConfig`] — ε threshold, shard count, window linger, budget.
//!
//! Beyond the audit path, the service runs in **enforcing mode**:
//! [`SessionManager::enable_enforcement`] hands it an
//! [`Lppm`](priste_lppm::Lppm) plus a
//! [`GuardConfig`](priste_calibrate::GuardConfig), and
//! [`SessionManager::release`] then calibrates each user's release against
//! their event windows (geometric budget backoff, suppression on
//! exhaustion) *before* the observation leaves the mechanism — the windows
//! consult the `priste-calibrate` guard instead of merely auditing.
//!
//! Sessions can be made **durable**: [`SessionManager::make_durable`] (or
//! the `Pipeline::durable` builder knob in the facade) journals every
//! committed mutation to a per-shard CRC-framed write-ahead log *before*
//! its result returns, compacts periodically into atomic snapshots, and
//! [`SessionManager::recover`] restores the exact committed state after a
//! crash — rounding torn-tail ledger spend *up*, never down. See the
//! [`durable`] module docs for the file format and recovery guarantees.
//!
//! Share the mobility model across the fleet with `Arc`:
//!
//! ```
//! use priste_event::{Presence, StEvent};
//! use priste_geo::Region;
//! use priste_linalg::Vector;
//! use priste_markov::{Homogeneous, MarkovModel};
//! use priste_online::{OnlineConfig, SessionManager, UserId};
//! use std::sync::Arc;
//!
//! let chain = Arc::new(Homogeneous::new(MarkovModel::paper_example()));
//! let mut svc = SessionManager::new(Arc::clone(&chain), OnlineConfig::default())?;
//! let region = Region::from_one_based_range(3, 1, 2)?;
//! let tpl = svc.register_template(StEvent::from(Presence::new(region, 2, 3)?))?;
//! svc.add_user(UserId(1), Vector::uniform(3))?;
//! svc.attach_event(UserId(1), tpl)?;
//! let report = svc.ingest(UserId(1), Vector::from(vec![0.5, 0.3, 0.2]))?;
//! assert_eq!(report.t, 1);
//! assert_eq!(report.windows.len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`IncrementalTwoWorld`]: priste_quantify::IncrementalTwoWorld
//! [`BudgetLedger`]: session::BudgetLedger

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod durable;
mod error;
mod manager;
mod obs;
pub mod session;

pub use durable::{DurableError, DurableOptions};
pub use error::OnlineError;
pub use manager::{EnforcedRelease, OnlineConfig, ServiceStats, SessionManager};
pub use obs::RecoveryInfo;
pub use session::{BudgetLedger, Session, UserId, UserReport, Verdict, WindowReport};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, OnlineError>;
