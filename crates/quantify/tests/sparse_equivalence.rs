//! Sparse-vs-dense backend equivalence, property-tested.
//!
//! The CSR backend promises more than approximate agreement: a sparse twin
//! built with [`SparseMatrix::from_dense`] at threshold `0.0` iterates its
//! stored entries in the same order as the dense kernels, so every lifted
//! application is **bit-identical** — verified here over random banded
//! chains, all three [`LiftedStep`] shapes, and whole observation streams
//! through [`IncrementalTwoWorld`].

use priste_event::{Pattern, Presence, StEvent};
use priste_geo::{CellId, Region};
use priste_linalg::{Matrix, SparseMatrix, Vector};
use priste_markov::{Homogeneous, MarkovModel, TransitionMatrix};
use priste_quantify::lifted::LiftedStep;
use priste_quantify::{IncrementalTwoWorld, QuantifyError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy: a random row-stochastic **banded** matrix of size `m` with
/// band radius `b` — every entry with `|i − j| > b` is structurally zero,
/// the shape [`gaussian_kernel_chain_sparse`] produces on a 1×m strip.
///
/// [`gaussian_kernel_chain_sparse`]: priste_markov::gaussian_kernel_chain_sparse
fn banded_stochastic(m: usize, b: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, m), m).prop_map(move |rows| {
        let mut mat = Matrix::zeros(m, m);
        for (i, weights) in rows.iter().enumerate() {
            let row = mat.row_mut(i);
            for (j, &w) in weights.iter().enumerate() {
                if i.abs_diff(j) <= b {
                    row[j] = w;
                }
            }
        }
        mat.normalize_rows_mut();
        mat
    })
}

/// Strategy: a random probability distribution of length `m`.
fn distribution(m: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(0.01f64..1.0, m).prop_map(|raw| {
        let mut v = Vector::from(raw);
        v.normalize_mut().unwrap();
        v
    })
}

/// Strategy: a proper (non-empty, non-full) region over `m` cells.
fn region(m: usize) -> impl Strategy<Value = Region> {
    proptest::collection::vec(proptest::bool::ANY, m)
        .prop_filter("region must be proper", |bits| {
            let k = bits.iter().filter(|&&b| b).count();
            k > 0 && k < bits.len()
        })
        .prop_map(move |bits| {
            Region::from_cells(
                m,
                bits.iter()
                    .enumerate()
                    .filter(|(_, &b)| b)
                    .map(|(i, _)| CellId(i)),
            )
            .unwrap()
        })
}

/// Strategy: a random PRESENCE or PATTERN event over `m` cells.
fn st_event(m: usize) -> impl Strategy<Value = StEvent> {
    (1usize..=3, 1usize..=3, region(m), proptest::bool::ANY).prop_flat_map(
        move |(start, len, r, is_presence)| {
            let end = start + len - 1;
            if is_presence {
                Just(StEvent::from(Presence::new(r.clone(), start, end).unwrap())).boxed()
            } else {
                proptest::collection::vec(region(m), len)
                    .prop_map(move |rs| StEvent::from(Pattern::new(rs, start).unwrap()))
                    .boxed()
            }
        },
    )
}

fn random_emission(rng: &mut StdRng, m: usize) -> Vector {
    Vector::from(
        (0..m)
            .map(|_| rng.gen::<f64>() * 0.9 + 0.1)
            .collect::<Vec<_>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All three lifted shapes produce bit-identical rows, batches and
    /// columns on the CSR twin of a random banded chain.
    #[test]
    fn lifted_shapes_agree_bitwise_on_banded_chains(
        mat in banded_stochastic(5, 1),
        r in region(5),
        raw in proptest::collection::vec(0.0f64..1.0, 10),
    ) {
        let dense = TransitionMatrix::Dense(mat.clone());
        let sparse = TransitionMatrix::Sparse(SparseMatrix::from_dense(&mat, 0.0));
        prop_assert!(sparse.nnz() <= 5 * 3, "band escaped: {}", sparse.nnz());
        let x = Vector::from(raw);
        for (d, s) in [
            (LiftedStep::BlockDiagonal { m: &dense }, LiftedStep::BlockDiagonal { m: &sparse }),
            (
                LiftedStep::Capture { m: &dense, region: &r },
                LiftedStep::Capture { m: &sparse, region: &r },
            ),
            (
                LiftedStep::Hold { m: &dense, region: &r },
                LiftedStep::Hold { m: &sparse, region: &r },
            ),
        ] {
            prop_assert_eq!(d.apply_row(&x).as_slice(), s.apply_row(&x).as_slice());
            prop_assert_eq!(d.apply_col(&x).as_slice(), s.apply_col(&x).as_slice());
            let (db, sb) = (d.apply_rows(std::slice::from_ref(&x)), s.apply_rows(std::slice::from_ref(&x)));
            prop_assert_eq!(db[0].as_slice(), sb[0].as_slice());
            // And both match the materialized 2m×2m oracle numerically.
            prop_assert!(d.to_dense().vecmat(&x).max_abs_diff(&s.apply_row(&x)) < 1e-14);
        }
    }

    /// `from_dense` at threshold `t` keeps exactly the entries with
    /// `|v| > t` and `to_dense` restores them verbatim.
    #[test]
    fn from_dense_roundtrip(
        mat in banded_stochastic(6, 2),
        exact in proptest::bool::ANY,
        thresh in 1e-6f64..1e-1,
    ) {
        let tol = if exact { 0.0 } else { thresh };
        let sparse = SparseMatrix::from_dense(&mat, tol);
        let back = sparse.to_dense();
        let mut kept = 0usize;
        for i in 0..6 {
            for j in 0..6 {
                let v = mat.get(i, j);
                if v.abs() > tol {
                    prop_assert_eq!(back.get(i, j), v, "kept entry ({}, {})", i, j);
                    kept += 1;
                } else {
                    prop_assert_eq!(back.get(i, j), 0.0, "dropped entry ({}, {})", i, j);
                }
            }
        }
        prop_assert_eq!(sparse.nnz(), kept);
    }

    /// A full observation stream through [`IncrementalTwoWorld`] yields the
    /// same joints, posteriors and losses on the sparse backend as on the
    /// dense one (within 1e-12 — in practice bit-identical, but the public
    /// contract is the tolerance).
    #[test]
    fn incremental_streams_agree_across_backends(
        mat in banded_stochastic(5, 1),
        pi in distribution(5),
        ev in st_event(5),
        seed in 0u64..u64::MAX / 2,
    ) {
        let dense = Homogeneous::new(MarkovModel::new(mat.clone()).unwrap());
        let sparse = Homogeneous::new(
            MarkovModel::new_sparse(SparseMatrix::from_dense(&mat, 0.0)).unwrap(),
        );
        // A random event can be certain/impossible under a random chain —
        // no ratio to track on either backend. The shim inlines this body
        // into the per-case loop, so `continue` skips just this case.
        let mut inc_d = match IncrementalTwoWorld::new(ev.clone(), &dense, pi.clone()) {
            Ok(inc) => inc,
            Err(QuantifyError::DegeneratePrior { .. }) => continue,
            Err(e) => panic!("unexpected construction error: {e}"),
        };
        let mut inc_s = IncrementalTwoWorld::new(ev.clone(), &sparse, pi.clone())
            .expect("sparse twin has the identical prior");
        prop_assert!((inc_d.prior() - inc_s.prior()).abs() <= 1e-12);
        let mut rng = StdRng::seed_from_u64(seed);
        for t in 1..=ev.end() + 2 {
            let col = random_emission(&mut rng, 5);
            let sd = inc_d.observe(&col).unwrap();
            let ss = inc_s.observe(&col).unwrap();
            prop_assert_eq!(sd.t, ss.t);
            for (a, b, what) in [
                (sd.log_joint_event, ss.log_joint_event, "joint(E)"),
                (sd.log_joint_total, ss.log_joint_total, "joint(o)"),
                (sd.posterior, ss.posterior, "posterior"),
                (sd.privacy_loss, ss.privacy_loss, "privacy loss"),
            ] {
                prop_assert!(
                    (a - b).abs() <= 1e-12 || (a == f64::NEG_INFINITY && b == f64::NEG_INFINITY),
                    "t={} {}: dense {} vs sparse {} ({})", t, what, a, b, ev
                );
            }
            prop_assert!(
                inc_d.lifted_state().max_abs_diff(inc_s.lifted_state()) <= 1e-12,
                "t={} lifted state diverged ({})", t, ev
            );
        }
    }
}
