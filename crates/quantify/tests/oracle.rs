//! Oracle tests: the two-possible-world engine (linear time) must agree
//! with Appendix B's exponential enumeration on every probability it
//! reports, across randomized models, events and observation sequences.
//!
//! This is the central correctness argument of the reproduction: if prior
//! and joint agree with brute force everywhere, Lemmas III.1–III.3 and the
//! Theorem IV.1 coefficient vectors are implemented faithfully.

use priste_event::{Pattern, Presence, StEvent};
use priste_geo::{CellId, Region};
use priste_linalg::{Matrix, Vector};
use priste_markov::{Homogeneous, MarkovModel, TimeVarying};
use priste_quantify::{naive, TheoremBuilder, TwoWorldEngine};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const LIMIT: u128 = 1 << 24;

fn random_stochastic(rng: &mut StdRng, m: usize) -> Matrix {
    let mut mat = Matrix::zeros(m, m);
    for r in 0..m {
        // Occasional hard zeros exercise unreachable-state handling.
        let row: Vec<f64> = (0..m)
            .map(|_| {
                if rng.gen_bool(0.2) {
                    0.0
                } else {
                    rng.gen::<f64>()
                }
            })
            .collect();
        let s: f64 = row.iter().sum();
        for (c, v) in row.iter().enumerate() {
            mat.set(r, c, if s > 0.0 { v / s } else { 1.0 / m as f64 });
        }
    }
    mat
}

fn random_pi(rng: &mut StdRng, m: usize) -> Vector {
    let raw: Vec<f64> = (0..m).map(|_| rng.gen::<f64>() + 0.01).collect();
    let s: f64 = raw.iter().sum();
    Vector::from(raw.into_iter().map(|x| x / s).collect::<Vec<_>>())
}

fn random_region(rng: &mut StdRng, m: usize) -> Region {
    loop {
        let cells: Vec<CellId> = (0..m).filter(|_| rng.gen_bool(0.4)).map(CellId).collect();
        if !cells.is_empty() && cells.len() < m {
            return Region::from_cells(m, cells).unwrap();
        }
    }
}

fn random_emission(rng: &mut StdRng, m: usize) -> Vector {
    Vector::from(
        (0..m)
            .map(|_| rng.gen::<f64>() * 0.9 + 0.1)
            .collect::<Vec<_>>(),
    )
}

fn random_event(rng: &mut StdRng, m: usize, max_end: usize) -> StEvent {
    let start = rng.gen_range(1..=max_end);
    let end = rng.gen_range(start..=max_end);
    if rng.gen_bool(0.5) {
        Presence::new(random_region(rng, m), start, end)
            .unwrap()
            .into()
    } else {
        let regions: Vec<Region> = (start..=end).map(|_| random_region(rng, m)).collect();
        Pattern::new(regions, start).unwrap().into()
    }
}

#[test]
fn prior_matches_enumeration_over_many_random_cases() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..120 {
        let m = rng.gen_range(2..=4);
        let chain = Homogeneous::new(MarkovModel::new(random_stochastic(&mut rng, m)).unwrap());
        let event = random_event(&mut rng, m, 5);
        let pi = random_pi(&mut rng, m);
        let engine = TwoWorldEngine::new(&event, &chain).unwrap();
        let fast = engine.prior(&pi).unwrap();
        let slow = naive::prior(&event, &&chain, &pi, LIMIT).unwrap();
        assert!(
            (fast - slow).abs() < 1e-10,
            "case {case} event {event}: two-world {fast} vs naive {slow}"
        );
        assert!(
            (0.0..=1.0 + 1e-12).contains(&fast),
            "prior out of range: {fast}"
        );
    }
}

#[test]
fn joint_matches_enumeration_before_during_and_after_the_event() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for case in 0..60 {
        let m = rng.gen_range(2..=3);
        let chain = Homogeneous::new(MarkovModel::new(random_stochastic(&mut rng, m)).unwrap());
        let event = random_event(&mut rng, m, 4);
        let pi = random_pi(&mut rng, m);
        // Observe two steps past the event end to exercise Lemma III.3.
        let horizon = event.end() + 2;
        let emissions: Vec<Vector> = (0..horizon).map(|_| random_emission(&mut rng, m)).collect();

        let mut builder = TheoremBuilder::new(&event, &chain).unwrap();
        for t in 1..=horizon {
            let inputs = builder.candidate(&emissions[t - 1]).unwrap();
            let fast_joint_e = pi.dot(&inputs.b).unwrap() * inputs.bc_log_scale.exp();
            let fast_joint_all = pi.dot(&inputs.c).unwrap() * inputs.bc_log_scale.exp();
            let slow_joint_e = naive::joint(&event, &&chain, &pi, &emissions[..t], LIMIT).unwrap();
            assert!(
                (fast_joint_e - slow_joint_e).abs() < 1e-10 * slow_joint_e.max(1e-30),
                "case {case} t={t} event {event}: joint(E) {fast_joint_e} vs {slow_joint_e}"
            );
            // Pr(o) from c must equal Pr(E,o) + Pr(¬E,o); cross-check via
            // the complement: enumerate with the negated keep through the
            // prior identity Pr(o) = Σ over all trajectories.
            let prior = inputs.prior(&pi);
            let slow_prior = naive::prior(&event, &&chain, &pi, LIMIT).unwrap();
            assert!((prior - slow_prior).abs() < 1e-10, "case {case} t={t}");
            assert!(
                fast_joint_all >= fast_joint_e - 1e-12,
                "total joint below event joint"
            );
            builder.commit(emissions[t - 1].clone()).unwrap();
        }
    }
}

#[test]
fn joint_total_matches_forward_likelihood() {
    // π·c must be the plain HMM likelihood of the observations, no matter
    // the event — the event encoding must never distort total mass.
    let mut rng = StdRng::seed_from_u64(0xABCD);
    for _ in 0..40 {
        let m = rng.gen_range(2..=4);
        let chain = Homogeneous::new(MarkovModel::new(random_stochastic(&mut rng, m)).unwrap());
        let event = random_event(&mut rng, m, 4);
        let pi = random_pi(&mut rng, m);
        let horizon = event.end() + 2;
        let emissions: Vec<Vector> = (0..horizon).map(|_| random_emission(&mut rng, m)).collect();
        let mut builder = TheoremBuilder::new(&event, &chain).unwrap();
        for t in 1..=horizon {
            let inputs = builder.candidate(&emissions[t - 1]).unwrap();
            let fast = inputs.log_joint_total(&pi);
            let slow =
                priste_quantify::forward_backward::log_likelihood(&&chain, &pi, &emissions[..t])
                    .unwrap();
            assert!(
                (fast - slow).abs() < 1e-9,
                "t={t}: {fast} vs {slow} ({event})"
            );
            builder.commit(emissions[t - 1].clone()).unwrap();
        }
    }
}

#[test]
fn time_varying_chains_are_supported() {
    // Footnote 3: re-evaluate Eqs. (4)–(8) with the matrix in force at t.
    let mut rng = StdRng::seed_from_u64(0x7777);
    for _ in 0..30 {
        let m = 3;
        let schedule: Vec<MarkovModel> = (0..4)
            .map(|_| MarkovModel::new(random_stochastic(&mut rng, m)).unwrap())
            .collect();
        let chain = TimeVarying::new(schedule).unwrap();
        let event = random_event(&mut rng, m, 4);
        let pi = random_pi(&mut rng, m);
        let engine = TwoWorldEngine::new(&event, &chain).unwrap();
        let fast = engine.prior(&pi).unwrap();
        let slow = naive::prior(&event, &&chain, &pi, LIMIT).unwrap();
        assert!(
            (fast - slow).abs() < 1e-10,
            "event {event}: {fast} vs {slow}"
        );
    }
}

#[test]
fn start_one_events_agree_with_enumeration() {
    // The paper's formulas assume start ≥ 2; our initial-lift extension for
    // start = 1 must still match brute force.
    let mut rng = StdRng::seed_from_u64(0x1111);
    for _ in 0..40 {
        let m = rng.gen_range(2..=4);
        let chain = Homogeneous::new(MarkovModel::new(random_stochastic(&mut rng, m)).unwrap());
        let end = rng.gen_range(1..=3);
        let event: StEvent = if rng.gen_bool(0.5) {
            Presence::new(random_region(&mut rng, m), 1, end)
                .unwrap()
                .into()
        } else {
            let regions: Vec<Region> = (1..=end).map(|_| random_region(&mut rng, m)).collect();
            Pattern::new(regions, 1).unwrap().into()
        };
        let pi = random_pi(&mut rng, m);
        let engine = TwoWorldEngine::new(&event, &chain).unwrap();
        let fast = engine.prior(&pi).unwrap();
        let slow = naive::prior(&event, &&chain, &pi, LIMIT).unwrap();
        assert!(
            (fast - slow).abs() < 1e-10,
            "event {event}: {fast} vs {slow}"
        );

        // Joint agreement too, observing through end + 1.
        let emissions: Vec<Vector> = (0..end + 1).map(|_| random_emission(&mut rng, m)).collect();
        let mut builder = TheoremBuilder::new(&event, &chain).unwrap();
        for t in 1..=end + 1 {
            let inputs = builder.candidate(&emissions[t - 1]).unwrap();
            let fast_joint = pi.dot(&inputs.b).unwrap() * inputs.bc_log_scale.exp();
            let slow_joint = naive::joint(&event, &&chain, &pi, &emissions[..t], LIMIT).unwrap();
            assert!(
                (fast_joint - slow_joint).abs() < 1e-10 * slow_joint.max(1e-30),
                "event {event} t={t}: {fast_joint} vs {slow_joint}"
            );
            builder.commit(emissions[t - 1].clone()).unwrap();
        }
    }
}

#[test]
fn dense_lifted_products_match_structured_prior() {
    // Materialize Lemma III.1 exactly as written — [π,0]·∏Mᵢ·[0,1]ᵀ with
    // dense 2m×2m matrices — and compare against the structured engine.
    let mut rng = StdRng::seed_from_u64(0x2222);
    for _ in 0..40 {
        let m = rng.gen_range(2..=4);
        let chain = Homogeneous::new(MarkovModel::new(random_stochastic(&mut rng, m)).unwrap());
        let event = random_event(&mut rng, m, 5);
        if event.start() < 2 {
            continue; // dense formula is the paper's start ≥ 2 form
        }
        let pi = random_pi(&mut rng, m);
        let engine = TwoWorldEngine::new(&event, &chain).unwrap();

        let mut product = Matrix::identity(2 * m);
        for t in 1..event.end() {
            product = product.matmul(&engine.step_at(t).to_dense()).unwrap();
        }
        let lifted_pi = pi.concat(&Vector::zeros(m));
        let selector = Vector::zeros(m).concat(&Vector::ones(m));
        let dense_prior = product.vecmat(&lifted_pi).dot(&selector).unwrap();
        let structured = engine.prior(&pi).unwrap();
        assert!(
            (dense_prior - structured).abs() < 1e-12,
            "event {event}: dense {dense_prior} vs structured {structured}"
        );
    }
}

#[test]
fn empirical_frequencies_match_computed_prior() {
    // Monte-Carlo sanity: sample trajectories and compare the event's
    // empirical frequency with Lemma III.1.
    let mut rng = StdRng::seed_from_u64(0x3333);
    let chain = Homogeneous::new(MarkovModel::paper_example());
    let event: StEvent =
        Presence::new(Region::from_cells(3, [CellId(0), CellId(1)]).unwrap(), 3, 4)
            .unwrap()
            .into();
    let pi = Vector::from(vec![0.2, 0.3, 0.5]);
    let engine = TwoWorldEngine::new(&event, &chain).unwrap();
    let expected = engine.prior(&pi).unwrap();

    let n = 200_000;
    let mut hits = 0usize;
    for _ in 0..n {
        let traj = chain
            .model()
            .sample_trajectory_from(&pi, 4, &mut rng)
            .unwrap();
        if event.eval(&traj).unwrap() {
            hits += 1;
        }
    }
    let freq = hits as f64 / n as f64;
    assert!(
        (freq - expected).abs() < 0.005,
        "empirical {freq} vs computed {expected}"
    );
}
