//! Streaming-vs-offline equivalence: [`IncrementalTwoWorld`] fed one
//! observation at a time must agree with [`TheoremBuilder`] run over the
//! whole horizon, for random models, events and observation streams — the
//! engine-vs-enumeration oracle pattern of `tests/oracle.rs`, one layer up.

use priste_event::{Pattern, Presence, StEvent};
use priste_geo::{CellId, Region};
use priste_linalg::{Matrix, Vector};
use priste_markov::{Homogeneous, MarkovModel};
use priste_quantify::attack::BayesianAdversary;
use priste_quantify::{IncrementalTwoWorld, QuantifyError, TheoremBuilder, TwoWorldEngine};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy: a random row-stochastic matrix of size m.
fn stochastic_matrix(m: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, m), m).prop_map(move |rows| {
        let mut mat = Matrix::from_rows(&rows).unwrap();
        mat.normalize_rows_mut();
        mat
    })
}

/// Strategy: a random probability distribution of length m.
fn distribution(m: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(0.01f64..1.0, m).prop_map(|raw| {
        let mut v = Vector::from(raw);
        v.normalize_mut().unwrap();
        v
    })
}

/// Strategy: a proper (non-empty, non-full) region over m cells.
fn region(m: usize) -> impl Strategy<Value = Region> {
    proptest::collection::vec(proptest::bool::ANY, m)
        .prop_filter("region must be proper", |bits| {
            let k = bits.iter().filter(|&&b| b).count();
            k > 0 && k < bits.len()
        })
        .prop_map(move |bits| {
            Region::from_cells(
                m,
                bits.iter()
                    .enumerate()
                    .filter(|(_, &b)| b)
                    .map(|(i, _)| CellId(i)),
            )
            .unwrap()
        })
}

/// Strategy: a random PRESENCE or PATTERN event over m cells.
fn st_event(m: usize) -> impl Strategy<Value = StEvent> {
    (1usize..=3, 1usize..=3, region(m), proptest::bool::ANY).prop_flat_map(
        move |(start, len, r, is_presence)| {
            let end = start + len - 1;
            if is_presence {
                Just(StEvent::from(Presence::new(r.clone(), start, end).unwrap())).boxed()
            } else {
                proptest::collection::vec(region(m), len)
                    .prop_map(move |rs| StEvent::from(Pattern::new(rs, start).unwrap()))
                    .boxed()
            }
        },
    )
}

/// Builds the incremental state, skipping degenerate-prior cases (a random
/// event can be certain or impossible under a random chain).
fn build_or_skip<'c>(
    ev: &StEvent,
    chain: &'c Homogeneous,
    pi: &Vector,
) -> Option<IncrementalTwoWorld<&'c Homogeneous>> {
    match IncrementalTwoWorld::new(ev.clone(), chain, pi.clone()) {
        Ok(inc) => Some(inc),
        Err(QuantifyError::DegeneratePrior { .. }) => None,
        Err(e) => panic!("unexpected construction error: {e}"),
    }
}

fn random_emission(rng: &mut StdRng, m: usize) -> Vector {
    Vector::from(
        (0..m)
            .map(|_| rng.gen::<f64>() * 0.9 + 0.1)
            .collect::<Vec<_>>(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Per-step joints, posteriors and losses from the incremental state
    /// equal the offline builder replaying the whole horizon.
    #[test]
    fn incremental_equals_full_horizon_replay(
        mat in stochastic_matrix(3),
        pi in distribution(3),
        ev in st_event(3),
        seed in 0u64..u64::MAX / 2,
    ) {
        let chain = Homogeneous::new(MarkovModel::new(mat).unwrap());
        // A random event can be certain/impossible under a random chain;
        // there is no ratio to track and nothing to compare.
        // The shim inlines this body into the per-case loop, so `continue`
        // skips just this sampled case.
        let Some(mut inc) = build_or_skip(&ev, &chain, &pi) else { continue };
        let mut builder = TheoremBuilder::new(&ev, &chain).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        // Observe two steps past the event end to exercise the Lemma III.3
        // (post-event, backward-chain) regime on the offline side.
        let horizon = ev.end() + 2;
        for t in 1..=horizon {
            let col = random_emission(&mut rng, 3);
            let stream = inc.observe(&col).unwrap();
            let inputs = builder.candidate(&col).unwrap();
            prop_assert_eq!(stream.t, t);
            prop_assert!((stream.prior - inputs.prior(&pi)).abs() < 1e-12);
            let (off_jb, off_jc) = (inputs.log_joint_event(&pi), inputs.log_joint_total(&pi));
            prop_assert!(
                (stream.log_joint_event - off_jb).abs() < 1e-9
                    || (stream.log_joint_event == f64::NEG_INFINITY
                        && off_jb == f64::NEG_INFINITY),
                "t={} joint(E): {} vs {} ({})", t, stream.log_joint_event, off_jb, ev
            );
            prop_assert!(
                (stream.log_joint_total - off_jc).abs() < 1e-9,
                "t={} joint(o): {} vs {} ({})", t, stream.log_joint_total, off_jc, ev
            );
            builder.commit(col).unwrap();
        }
    }

    /// The incremental posterior is the exact Bayesian adversary's.
    #[test]
    fn incremental_posterior_is_the_adversary_posterior(
        mat in stochastic_matrix(4),
        pi in distribution(4),
        ev in st_event(4),
        seed in 0u64..u64::MAX / 2,
    ) {
        let chain = Homogeneous::new(MarkovModel::new(mat).unwrap());
        // The shim inlines this body into the per-case loop, so `continue`
        // skips just this sampled case.
        let Some(mut inc) = build_or_skip(&ev, &chain, &pi) else { continue };
        let mut adv = BayesianAdversary::new(&ev, &chain, pi).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..ev.end() + 2 {
            let col = random_emission(&mut rng, 4);
            let stream = inc.observe(&col).unwrap();
            let inf = adv.observe(&col).unwrap();
            prop_assert!(
                (stream.posterior - inf.posterior).abs() < 1e-9,
                "posterior {} vs {} ({})", stream.posterior, inf.posterior, ev
            );
        }
    }

    /// The batched path (one shared [`LiftedStep`] applied via
    /// `apply_rows`, then `observe_pre_stepped`) is the same recursion.
    #[test]
    fn pre_stepped_batching_equals_sequential_observe(
        mat in stochastic_matrix(3),
        pi in distribution(3),
        ev in st_event(3),
        seed in 0u64..u64::MAX / 2,
    ) {
        let chain = Homogeneous::new(MarkovModel::new(mat).unwrap());
        let Some(mut plain) = build_or_skip(&ev, &chain, &pi) else { continue };
        let mut batched = plain.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..ev.end() + 2 {
            let col = random_emission(&mut rng, 3);
            let a = plain.observe(&col).unwrap();
            let stepped = match batched.next_step_index() {
                None => batched.lifted_state().clone(),
                Some(idx) => {
                    let engine = TwoWorldEngine::new(batched.event(), &chain).unwrap();
                    engine
                        .step_at(idx)
                        .apply_rows(std::slice::from_ref(batched.lifted_state()))
                        .pop()
                        .unwrap()
                }
            };
            let b = batched.observe_pre_stepped(stepped, &col).unwrap();
            prop_assert!((a.log_joint_event - b.log_joint_event).abs() < 1e-12);
            prop_assert!((a.log_joint_total - b.log_joint_total).abs() < 1e-12);
            prop_assert!((a.posterior - b.posterior).abs() < 1e-12);
        }
    }
}
