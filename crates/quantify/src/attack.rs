//! Bayesian adversary simulation — what ε-spatiotemporal event privacy
//! *means* operationally.
//!
//! Definition II.4 bounds the likelihood ratio
//! `Pr(o_1..o_t | EVENT) / Pr(o_1..o_t | ¬EVENT)` by `e^ε` in both
//! directions. By Bayes, that is exactly a bound on how much any adversary
//! can *move their odds*: for every prior belief `Pr(EVENT)`,
//!
//! ```text
//! posterior odds / prior odds  ∈  [e^{−ε}, e^{+ε}].
//! ```
//!
//! [`BayesianAdversary`] implements the strongest inference consistent
//! with the threat model — exact posterior computation under the true
//! mobility model — and reports the realized odds lift at every step.
//! Integration tests release streams through the PriSTE framework and
//! assert the lift bound holds for batteries of priors; the examples use it
//! to show un-calibrated mechanisms breaking the same bound.

use crate::{QuantifyError, Result, TheoremBuilder};
use priste_event::StEvent;
use priste_linalg::Vector;
use priste_markov::TransitionProvider;

/// The adversary's belief state after each observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Inference {
    /// Timestep of the latest observation (1-based).
    pub t: usize,
    /// The adversary's prior `Pr(EVENT)` (fixed by their initial belief).
    pub prior: f64,
    /// Posterior `Pr(EVENT | o_1..o_t)`.
    pub posterior: f64,
    /// Odds lift `(posterior odds) / (prior odds)`; ε-ST-event privacy
    /// guarantees `e^{−ε} ≤ lift ≤ e^{ε}` for releases certified at ε.
    pub odds_lift: f64,
}

/// An exact Bayesian adversary with a fixed prior belief `π` over the
/// user's initial location, full knowledge of the mobility model `M`, and
/// full knowledge of each release's emission column (the mechanism is
/// public; only the true location is secret).
///
/// Built for reuse across streaming sessions: [`BayesianAdversary::reset`]
/// rewinds to the pre-observation state without rebuilding the engine, and
/// [`BayesianAdversary::fork`] (plain `Clone`) snapshots mid-stream so
/// several continuations can be explored from one shared prefix.
#[derive(Debug, Clone)]
pub struct BayesianAdversary<P> {
    builder: TheoremBuilder<P>,
    pi: Vector,
    prior: f64,
}

impl<P: TransitionProvider> BayesianAdversary<P> {
    /// Creates the adversary.
    ///
    /// # Errors
    /// Domain/validation errors; [`QuantifyError::DegeneratePrior`] when the
    /// event has probability 0 or 1 under `π` (no inference to do).
    pub fn new(event: &StEvent, provider: P, pi: Vector) -> Result<Self> {
        pi.validate_distribution()
            .map_err(QuantifyError::InvalidInitial)?;
        let builder = TheoremBuilder::new(event, provider)?;
        let prior = pi.dot(builder.a()).expect("validated length");
        if !(prior > 0.0 && prior < 1.0) {
            return Err(QuantifyError::DegeneratePrior { prior });
        }
        Ok(BayesianAdversary { builder, pi, prior })
    }

    /// The adversary's prior event probability.
    pub fn prior(&self) -> f64 {
        self.prior
    }

    /// Observations consumed so far.
    pub fn observed(&self) -> usize {
        self.builder.committed()
    }

    /// Rewinds to the pre-observation state (`t = 0`), keeping the engine's
    /// per-event precomputation. A streaming session can thus re-arm one
    /// adversary per epoch instead of paying [`BayesianAdversary::new`]
    /// for every user window.
    pub fn reset(&mut self) {
        self.builder.reset();
    }

    /// Snapshots the adversary mid-stream so a session can fork belief
    /// state (e.g. to score several candidate releases against the same
    /// observation prefix) without rebuilding the engine. Equivalent to
    /// `clone()`; named for intent at call sites.
    pub fn fork(&self) -> Self
    where
        P: Clone,
    {
        self.clone()
    }

    /// Consumes one released observation (as its emission column `p̃_o`)
    /// and returns the updated belief.
    ///
    /// # Errors
    /// Emission validation; [`QuantifyError::ZeroLikelihood`] if the
    /// observation stream has zero likelihood under the model (the
    /// adversary's model is wrong — not a privacy condition); the error
    /// carries the offending timestep and leaves the adversary unchanged.
    pub fn observe(&mut self, emission_column: &Vector) -> Result<Inference> {
        let inputs = self.builder.candidate(emission_column)?;
        let jb = self.pi.dot(&inputs.b).expect("validated length");
        let jc = self.pi.dot(&inputs.c).expect("validated length");
        if jc <= 0.0 {
            return Err(QuantifyError::ZeroLikelihood { t: inputs.t });
        }
        let posterior = (jb / jc).clamp(0.0, 1.0);
        let prior_odds = self.prior / (1.0 - self.prior);
        let posterior_odds = if posterior >= 1.0 {
            f64::INFINITY
        } else {
            posterior / (1.0 - posterior)
        };
        self.builder.commit(emission_column.clone())?;
        Ok(Inference {
            t: self.builder.committed(),
            prior: self.prior,
            posterior,
            odds_lift: posterior_odds / prior_odds,
        })
    }
}

/// Convenience: replays a whole released stream and returns the largest
/// absolute log-odds lift `max_t |ln lift_t|` — the *empirical* privacy
/// loss an exact Bayesian adversary with prior `π` achieves.
///
/// # Errors
/// See [`BayesianAdversary`].
pub fn worst_case_odds_lift<P: TransitionProvider>(
    event: &StEvent,
    provider: P,
    pi: Vector,
    emission_columns: &[Vector],
) -> Result<f64> {
    let mut adversary = BayesianAdversary::new(event, provider, pi)?;
    let mut worst: f64 = 0.0;
    for col in emission_columns {
        let inference = adversary.observe(col)?;
        worst = worst.max(inference.odds_lift.ln().abs());
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use priste_event::Presence;
    use priste_geo::{CellId, Region};
    use priste_markov::{Homogeneous, MarkovModel};

    fn region(ids: &[usize]) -> Region {
        Region::from_cells(3, ids.iter().map(|&i| CellId(i))).unwrap()
    }

    fn chain() -> Homogeneous {
        Homogeneous::new(MarkovModel::paper_example())
    }

    #[test]
    fn uninformative_observations_leave_beliefs_unchanged() {
        let ev: StEvent = Presence::new(region(&[0, 1]), 2, 3).unwrap().into();
        let mut adv = BayesianAdversary::new(&ev, chain(), Vector::uniform(3)).unwrap();
        let flat = Vector::from(vec![1.0 / 3.0; 3]);
        for _ in 0..4 {
            let inf = adv.observe(&flat).unwrap();
            assert!((inf.posterior - inf.prior).abs() < 1e-10);
            assert!((inf.odds_lift - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn posterior_moves_toward_evidence() {
        // Event: in {s1} at t=2. An observation at t=2 overwhelmingly more
        // likely from s1 must raise the posterior; one unlikely from s1
        // must lower it.
        let ev: StEvent = Presence::new(region(&[0]), 2, 2).unwrap().into();
        let pi = Vector::uniform(3);
        let flat = Vector::from(vec![1.0 / 3.0; 3]);

        let mut adv = BayesianAdversary::new(&ev, chain(), pi.clone()).unwrap();
        adv.observe(&flat).unwrap();
        let up = adv.observe(&Vector::from(vec![0.9, 0.05, 0.05])).unwrap();
        assert!(up.posterior > up.prior, "{up:?}");
        assert!(up.odds_lift > 1.0);

        let mut adv = BayesianAdversary::new(&ev, chain(), pi).unwrap();
        adv.observe(&flat).unwrap();
        let down = adv.observe(&Vector::from(vec![0.02, 0.49, 0.49])).unwrap();
        assert!(down.posterior < down.prior, "{down:?}");
        assert!(down.odds_lift < 1.0);
    }

    #[test]
    fn odds_lift_equals_likelihood_ratio() {
        // Bayes: posterior odds / prior odds = Pr(o|E)/Pr(o|¬E); the
        // adversary's lift must match the fixed-π quantifier's ratio.
        let ev: StEvent = Presence::new(region(&[0, 1]), 2, 3).unwrap().into();
        let pi = Vector::from(vec![0.5, 0.3, 0.2]);
        let cols = vec![
            Vector::from(vec![0.6, 0.3, 0.1]),
            Vector::from(vec![0.1, 0.3, 0.6]),
            Vector::from(vec![0.4, 0.4, 0.2]),
        ];
        let mut adv = BayesianAdversary::new(&ev, chain(), pi.clone()).unwrap();
        let mut quant = crate::fixed_pi::FixedPiQuantifier::new(&ev, chain(), pi).unwrap();
        for col in &cols {
            let inf = adv.observe(col).unwrap();
            let step = quant.observe(col).unwrap();
            let expected_lift = (step.log_likelihood_event - step.log_likelihood_not_event).exp();
            assert!(
                (inf.odds_lift - expected_lift).abs() < 1e-9 * expected_lift,
                "lift {} vs likelihood ratio {expected_lift}",
                inf.odds_lift
            );
        }
    }

    #[test]
    fn worst_case_helper_matches_manual_scan() {
        let ev: StEvent = Presence::new(region(&[0]), 2, 2).unwrap().into();
        let pi = Vector::uniform(3);
        let cols = vec![
            Vector::from(vec![1.0 / 3.0; 3]),
            Vector::from(vec![0.8, 0.1, 0.1]),
        ];
        let worst = worst_case_odds_lift(&ev, chain(), pi.clone(), &cols).unwrap();
        let mut adv = BayesianAdversary::new(&ev, chain(), pi).unwrap();
        let mut manual: f64 = 0.0;
        for c in &cols {
            manual = manual.max(adv.observe(c).unwrap().odds_lift.ln().abs());
        }
        assert!((worst - manual).abs() < 1e-12);
        assert!(worst > 0.1, "the peaked column should move beliefs");
    }

    #[test]
    fn reset_replays_the_same_inference_stream() {
        let ev: StEvent = Presence::new(region(&[0, 1]), 2, 3).unwrap().into();
        let mut adv = BayesianAdversary::new(&ev, chain(), Vector::uniform(3)).unwrap();
        let cols = [
            Vector::from(vec![0.6, 0.3, 0.1]),
            Vector::from(vec![0.2, 0.2, 0.6]),
        ];
        let first: Vec<Inference> = cols.iter().map(|c| adv.observe(c).unwrap()).collect();
        assert_eq!(adv.observed(), 2);
        adv.reset();
        assert_eq!(adv.observed(), 0);
        let second: Vec<Inference> = cols.iter().map(|c| adv.observe(c).unwrap()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn fork_diverges_independently_from_the_shared_prefix() {
        let ev: StEvent = Presence::new(region(&[0]), 2, 2).unwrap().into();
        let mut adv = BayesianAdversary::new(&ev, chain(), Vector::uniform(3)).unwrap();
        adv.observe(&Vector::from(vec![1.0 / 3.0; 3])).unwrap();
        let mut branch = adv.fork();
        let up = adv.observe(&Vector::from(vec![0.9, 0.05, 0.05])).unwrap();
        let down = branch
            .observe(&Vector::from(vec![0.02, 0.49, 0.49]))
            .unwrap();
        assert!(up.posterior > up.prior);
        assert!(down.posterior < down.prior);
        assert_eq!(adv.observed(), 2);
        assert_eq!(branch.observed(), 2);
    }

    #[test]
    fn impossible_stream_reports_zero_likelihood_with_the_timestep() {
        let ev: StEvent = Presence::new(region(&[0, 1]), 2, 3).unwrap().into();
        let mut adv = BayesianAdversary::new(&ev, chain(), Vector::uniform(3)).unwrap();
        // Pin the user to s3, then claim an emission only s1 can produce:
        // impossible (row s3 = [0, 0.1, 0.9]).
        adv.observe(&Vector::from(vec![0.0, 0.0, 1.0])).unwrap();
        let err = adv.observe(&Vector::from(vec![1.0, 0.0, 0.0])).unwrap_err();
        assert_eq!(err, QuantifyError::ZeroLikelihood { t: 2 });
        assert_eq!(adv.observed(), 1, "failed observe must not advance");
    }

    #[test]
    fn degenerate_priors_are_rejected() {
        let ev: StEvent = Presence::new(region(&[0]), 2, 2).unwrap().into();
        // Point mass on s3: the chain cannot reach s1 in one step.
        let pi = Vector::from(vec![0.0, 0.0, 1.0]);
        assert!(matches!(
            BayesianAdversary::new(&ev, chain(), pi),
            Err(QuantifyError::DegeneratePrior { .. })
        ));
    }
}
