use crate::lifted::lift_emission;
use crate::{QuantifyError, Result, TwoWorldEngine};
use priste_linalg::scaling::ScaledVector;
use priste_linalg::Vector;
use priste_markov::TransitionProvider;

/// The Theorem IV.1 coefficient vectors for one timestep, reduced to the
/// `m`-dimensional space of initial distributions:
///
/// * `π · a = Pr(EVENT)` (Eq. (17)),
/// * `π · b · e^{log_scale} = Pr(EVENT, o_1, …, o_t)` (Eqs. (18)/(19)),
/// * `π · c · e^{log_scale} = Pr(o_1, …, o_t)` (Eqs. (18)/(20)).
///
/// `b` and `c` share one log-scale; both Theorem IV.1 inequalities are
/// jointly homogeneous of degree 1 in `(b, c)`, so the scale never changes a
/// decision (see DESIGN.md "Numerical scaling") and the QP layer can consume
/// the carried vectors directly.
#[derive(Debug, Clone)]
pub struct TheoremInputs {
    /// Timestep `t` these inputs describe (1-based).
    pub t: usize,
    /// Reduced prior coefficient vector (length `m`).
    pub a: Vector,
    /// Reduced joint-with-event coefficient vector (length `m`).
    pub b: Vector,
    /// Reduced joint-total coefficient vector (length `m`).
    pub c: Vector,
    /// Common natural-log scale of `b` and `c`.
    pub bc_log_scale: f64,
}

impl TheoremInputs {
    /// `Pr(EVENT)` under a concrete initial distribution.
    ///
    /// # Panics
    /// Panics on a length mismatch (callers hold `π` of length `m`).
    pub fn prior(&self, pi: &Vector) -> f64 {
        pi.dot(&self.a).expect("pi length matches")
    }

    /// Natural log of `Pr(EVENT, o_1..o_t)` under a concrete `π`; `-∞` if
    /// the joint is zero.
    pub fn log_joint_event(&self, pi: &Vector) -> f64 {
        let v = pi.dot(&self.b).expect("pi length matches");
        if v <= 0.0 {
            f64::NEG_INFINITY
        } else {
            v.ln() + self.bc_log_scale
        }
    }

    /// Natural log of `Pr(o_1..o_t)` under a concrete `π`; `-∞` if zero.
    pub fn log_joint_total(&self, pi: &Vector) -> f64 {
        let v = pi.dot(&self.c).expect("pi length matches");
        if v <= 0.0 {
            f64::NEG_INFINITY
        } else {
            v.ln() + self.bc_log_scale
        }
    }

    /// The realized two-sided privacy loss
    /// `max(ln L, −ln L)` with `L = Pr(o|EVENT)/Pr(o|¬EVENT)`, for a fixed
    /// `π` (the §III quantification).
    ///
    /// # Errors
    /// [`QuantifyError::DegeneratePrior`] when `Pr(EVENT) ∈ {0, 1}` under
    /// `π`, or when either conditional likelihood is zero (infinite loss is
    /// reported as an error rather than `inf` so callers must handle it).
    pub fn privacy_loss(&self, pi: &Vector) -> Result<f64> {
        let prior = self.prior(pi);
        if !(prior > 0.0 && prior < 1.0) {
            return Err(QuantifyError::DegeneratePrior { prior });
        }
        let jb = pi.dot(&self.b).expect("pi length matches");
        let jc = pi.dot(&self.c).expect("pi length matches");
        let j_not = jc - jb;
        if jb <= 0.0 || j_not <= 0.0 {
            return Err(QuantifyError::DegeneratePrior { prior });
        }
        // ln [ (jb/prior) / (j_not/(1-prior)) ] — scales cancel.
        let log_ratio = (jb / prior).ln() - (j_not / (1.0 - prior)).ln();
        Ok(log_ratio.abs())
    }
}

/// Incremental builder of [`TheoremInputs`] along a release sequence —
/// Algorithm 2's `A`/`B` recurrences (lines 3–15), realized as factor lists
/// so each candidate check costs `O(t · m²)` structured work and nothing is
/// ever materialized at `2m × 2m`.
///
/// The `candidate`/`commit` split mirrors the release-retry loop: the
/// framework *tests* a perturbed location (possibly several, halving the
/// budget between tries) and only the location actually released updates
/// the internal state (Algorithm 2 lines 21–25).
///
/// Cloning snapshots the full release history (streaming sessions fork
/// adversary state this way); [`TheoremBuilder::reset`] rewinds to `t = 0`
/// while keeping the per-event precomputation.
///
/// Owns its event and provider (like
/// [`IncrementalTwoWorld`](crate::IncrementalTwoWorld)), so the value is
/// `'static` when they are and long-lived pipelines need no borrowed event
/// slices.
#[derive(Debug, Clone)]
pub struct TheoremBuilder<P> {
    event: priste_event::StEvent,
    provider: P,
    /// Suffix vectors `u_t`, index `t−1`, for `t = 1..=end` (lifted, `2m`).
    suffix: Vec<Vector>,
    /// Reduced Theorem IV.1 `a` (length `m`).
    a: Vector,
    /// Committed emission columns for timesteps `1..=min(t, end)`.
    fwd_emissions: Vec<Vector>,
    /// Committed emission columns for timesteps `end+1..=t`.
    bwd_emissions: Vec<Vector>,
    /// Number of committed timesteps.
    t: usize,
}

impl<P: TransitionProvider> TheoremBuilder<P> {
    /// Builds the per-event state: suffix products and the `a` vector.
    ///
    /// # Errors
    /// Propagates [`TwoWorldEngine::new`] domain checks.
    pub fn new(event: &priste_event::StEvent, provider: P) -> Result<Self> {
        let event = event.clone();
        let engine = TwoWorldEngine::new(&event, &provider)?;
        let suffix = engine.suffix_true_vectors();
        let a = engine.reduce(&suffix[0]);
        Ok(TheoremBuilder {
            event,
            provider,
            suffix,
            a,
            fwd_emissions: Vec::new(),
            bwd_emissions: Vec::new(),
            t: 0,
        })
    }

    /// The protected event.
    pub fn event(&self) -> &priste_event::StEvent {
        &self.event
    }

    /// The transition source.
    pub fn provider(&self) -> &P {
        &self.provider
    }

    /// A borrowing engine over the owned event/provider (the domain check
    /// was done at construction; re-running it is O(1)).
    pub fn engine(&self) -> TwoWorldEngine<'_, &P> {
        TwoWorldEngine::new(&self.event, &self.provider).expect("validated at construction")
    }

    /// Number of committed timesteps.
    pub fn committed(&self) -> usize {
        self.t
    }

    /// Reduced Theorem IV.1 `a` vector (constant across timesteps).
    pub fn a(&self) -> &Vector {
        &self.a
    }

    /// Rewinds to `t = 0`, discarding all committed emissions but keeping
    /// the per-event precomputation (suffix products and `a`). Lets a
    /// streaming session re-arm the same event/provider pairing without
    /// paying [`TheoremBuilder::new`] again.
    pub fn reset(&mut self) {
        self.fwd_emissions.clear();
        self.bwd_emissions.clear();
        self.t = 0;
    }

    /// Computes the Theorem IV.1 inputs for releasing `emission_column` at
    /// the *next* timestep (`committed() + 1`) without committing it.
    ///
    /// `emission_column` is `p̃_{o}` — the column of the candidate
    /// mechanism's emission matrix at the candidate observation.
    ///
    /// # Errors
    /// [`QuantifyError::InvalidEmission`] on a wrong-length or negative
    /// column.
    pub fn candidate(&self, emission_column: &Vector) -> Result<TheoremInputs> {
        let m = self.provider.num_states();
        if emission_column.len() != m {
            return Err(QuantifyError::InvalidEmission {
                expected: m,
                actual: emission_column.len(),
            });
        }
        if emission_column
            .as_slice()
            .iter()
            .any(|&x| x < 0.0 || !x.is_finite())
        {
            return Err(QuantifyError::InvalidEmission {
                expected: m,
                actual: emission_column.len(),
            });
        }
        let tc = self.t + 1;
        let end = self.event.end();

        let (b_lifted, c_lifted) = if tc <= end {
            // Lemma III.2 / Eq. (18): terminal vectors are the suffix u_tc
            // (for b) and all-ones (for c); the chain is
            // F_1 ⋯ F_tc with F_1 = p̃^D_{o_1}, F_i = M_{i−1}·p̃^D_{o_i}.
            let b0 = ScaledVector::new(self.suffix[tc - 1].clone());
            let c0 = ScaledVector::new(Vector::ones(2 * m));
            self.apply_forward_chain(b0, c0, tc, Some(emission_column))
        } else {
            // Lemma III.3 / Eqs. (19)–(20): plain backward part
            // β = (∏_{i=end}^{tc−1} M_i·p̃^D_{o_{i+1}}) · 1, then the
            // committed forward chain applied to [0, β] and [β, β].
            let beta = self.backward_beta(tc, emission_column);
            let b0 = ScaledVector {
                vector: Vector::zeros(m).concat(&beta.vector),
                log_scale: beta.log_scale,
            };
            let c0 = ScaledVector {
                vector: beta.vector.concat(&beta.vector),
                log_scale: beta.log_scale,
            };
            self.apply_forward_chain(b0, c0, end, None)
        };

        let (b_raw, c_raw, shared) = b_lifted.align_with(&c_lifted);
        let engine = self.engine();
        Ok(TheoremInputs {
            t: tc,
            a: self.a.clone(),
            b: engine.reduce(&b_raw),
            c: engine.reduce(&c_raw),
            bc_log_scale: shared,
        })
    }

    /// Commits the emission column of the observation actually released at
    /// the next timestep (Algorithm 2 lines 21–25).
    ///
    /// # Errors
    /// [`QuantifyError::InvalidEmission`] as in [`TheoremBuilder::candidate`].
    pub fn commit(&mut self, emission_column: Vector) -> Result<()> {
        let m = self.provider.num_states();
        if emission_column.len() != m {
            return Err(QuantifyError::InvalidEmission {
                expected: m,
                actual: emission_column.len(),
            });
        }
        let tc = self.t + 1;
        if tc <= self.event.end() {
            self.fwd_emissions.push(emission_column);
        } else {
            self.bwd_emissions.push(emission_column);
        }
        self.t = tc;
        Ok(())
    }

    /// Applies the forward factor chain `F_1 ⋯ F_k` (right-to-left) to the
    /// two terminal vectors. When `candidate` is `Some(e)`, the chain has
    /// `k = tc` factors whose last emission is the candidate; otherwise all
    /// `k` factors are committed.
    fn apply_forward_chain(
        &self,
        mut b: ScaledVector,
        mut c: ScaledVector,
        k: usize,
        candidate: Option<&Vector>,
    ) -> (ScaledVector, ScaledVector) {
        let engine = self.engine();
        let emission_at = |i: usize| -> Vector {
            // Emission for timestep i ∈ 1..=k; the candidate (if any)
            // occupies slot k.
            match candidate {
                Some(e) if i == k => lift_emission(e),
                _ => lift_emission(&self.fwd_emissions[i - 1]),
            }
        };
        for i in (1..=k).rev() {
            let e = emission_at(i);
            let weigh = |v: &mut ScaledVector| {
                v.vector = v.vector.hadamard(&e).expect("lifted emission length");
            };
            weigh(&mut b);
            weigh(&mut c);
            if i >= 2 {
                let step = engine.step_at(i - 1);
                b.vector = step.apply_col(&b.vector);
                c.vector = step.apply_col(&c.vector);
            }
            b.renormalize();
            c.renormalize();
        }
        (b, c)
    }

    /// Computes the plain backward vector
    /// `β = M_end·p̃^D_{o_{end+1}} ⋯ M_{tc−1}·p̃^D_{o_tc} · 1` for `tc > end`
    /// (all post-event lifted matrices are block-diagonal, so the backward
    /// pass lives in the base `m`-dimensional space).
    fn backward_beta(&self, tc: usize, candidate: &Vector) -> ScaledVector {
        let end = self.event.end();
        let mut v = ScaledVector::new(Vector::ones(self.provider.num_states()));
        for i in (end..tc).rev() {
            // Emission of timestep i+1 ∈ end+1..=tc.
            let e = if i + 1 == tc {
                candidate
            } else {
                &self.bwd_emissions[i - end]
            };
            let weighted = v.vector.hadamard(e).expect("emission length matches");
            v.vector = self.provider.transition_at(i).matvec(&weighted);
            v.renormalize();
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priste_event::{Pattern, Presence, StEvent};
    use priste_geo::{CellId, Region};
    use priste_markov::{Homogeneous, MarkovModel};

    fn region(num_cells: usize, ids: &[usize]) -> Region {
        Region::from_cells(num_cells, ids.iter().map(|&i| CellId(i))).unwrap()
    }

    fn chain() -> Homogeneous {
        Homogeneous::new(MarkovModel::paper_example())
    }

    /// Uniform "no information" emission column.
    fn flat() -> Vector {
        Vector::from(vec![1.0 / 3.0; 3])
    }

    #[test]
    fn a_matches_example_c1() {
        let ev: StEvent = Presence::new(region(3, &[0, 1]), 3, 4).unwrap().into();
        let builder = TheoremBuilder::new(&ev, chain()).unwrap();
        assert!(
            builder
                .a()
                .max_abs_diff(&Vector::from(vec![0.28, 0.298, 0.226]))
                < 1e-12
        );
    }

    #[test]
    fn uninformative_emissions_keep_ratio_at_one() {
        // With uniform emissions, Pr(o|E) = Pr(o|¬E) ⇒ zero privacy loss.
        let ev: StEvent = Presence::new(region(3, &[0, 1]), 3, 4).unwrap().into();
        let mut builder = TheoremBuilder::new(&ev, chain()).unwrap();
        let pi = Vector::from(vec![0.2, 0.3, 0.5]);
        for _ in 0..6 {
            let inputs = builder.candidate(&flat()).unwrap();
            let loss = inputs.privacy_loss(&pi).unwrap();
            assert!(loss.abs() < 1e-10, "t={} loss={loss}", inputs.t);
            builder.commit(flat()).unwrap();
        }
    }

    #[test]
    fn b_equals_c_times_prior_under_uninformative_emissions() {
        // Independence: Pr(E, o) = Pr(E)·Pr(o) when o carries no information.
        let ev: StEvent = Presence::new(region(3, &[0, 1]), 3, 4).unwrap().into();
        let mut builder = TheoremBuilder::new(&ev, chain()).unwrap();
        let pi = Vector::uniform(3);
        for t in 1..=6 {
            let inputs = builder.candidate(&flat()).unwrap();
            let prior = inputs.prior(&pi);
            let jb = inputs.log_joint_event(&pi);
            let jc = inputs.log_joint_total(&pi);
            assert!(
                (jb - jc - prior.ln()).abs() < 1e-10,
                "t={t}: log jb {jb}, log jc {jc}, prior {prior}"
            );
            builder.commit(flat()).unwrap();
        }
    }

    #[test]
    fn candidate_does_not_mutate_state() {
        let ev: StEvent = Presence::new(region(3, &[0, 1]), 2, 3).unwrap().into();
        let mut builder = TheoremBuilder::new(&ev, chain()).unwrap();
        let sharp = Vector::from(vec![0.9, 0.05, 0.05]);
        let i1 = builder.candidate(&sharp).unwrap();
        let i2 = builder.candidate(&sharp).unwrap();
        assert!(i1.b.max_abs_diff(&i2.b) < 1e-15);
        assert_eq!(builder.committed(), 0);
        builder.commit(sharp).unwrap();
        assert_eq!(builder.committed(), 1);
    }

    #[test]
    fn joint_total_is_observation_likelihood() {
        // π·c must equal Pr(o_1..o_t) computed by brute force.
        let ev: StEvent = Presence::new(region(3, &[0, 1]), 2, 3).unwrap().into();
        let mut builder = TheoremBuilder::new(&ev, chain()).unwrap();
        let pi = Vector::from(vec![0.5, 0.3, 0.2]);
        let m = MarkovModel::paper_example();
        let e1 = Vector::from(vec![0.7, 0.2, 0.1]);
        let e2 = Vector::from(vec![0.2, 0.6, 0.2]);

        // t = 1.
        let inputs = builder.candidate(&e1).unwrap();
        let expected: f64 = (0..3).map(|i| pi[i] * e1[i]).sum();
        assert!((inputs.log_joint_total(&pi) - expected.ln()).abs() < 1e-10);
        builder.commit(e1.clone()).unwrap();

        // t = 2: Σ_{i,j} π_i e1_i M_ij e2_j.
        let inputs = builder.candidate(&e2).unwrap();
        let mut expected2 = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                expected2 += pi[i] * e1[i] * m.transition().get(i, j) * e2[j];
            }
        }
        assert!((inputs.log_joint_total(&pi) - expected2.ln()).abs() < 1e-10);
    }

    #[test]
    fn post_event_timesteps_use_backward_chain() {
        // Event ends at t=2; observe through t=4 and ensure inputs remain
        // consistent: b ≤ c component-wise and prior stays fixed.
        let ev: StEvent = Presence::new(region(3, &[0]), 2, 2).unwrap().into();
        let mut builder = TheoremBuilder::new(&ev, chain()).unwrap();
        let pi = Vector::uniform(3);
        let e = Vector::from(vec![0.5, 0.3, 0.2]);
        let mut priors = Vec::new();
        for _ in 1..=4 {
            let inputs = builder.candidate(&e).unwrap();
            for i in 0..3 {
                assert!(inputs.b[i] <= inputs.c[i] + 1e-12);
            }
            priors.push(inputs.prior(&pi));
            builder.commit(e.clone()).unwrap();
        }
        for w in priors.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-12, "prior drifted: {priors:?}");
        }
    }

    #[test]
    fn pattern_events_flow_through_builder() {
        let ev: StEvent = Pattern::new(vec![region(3, &[0, 1]), region(3, &[1, 2])], 2)
            .unwrap()
            .into();
        let mut builder = TheoremBuilder::new(&ev, chain()).unwrap();
        let pi = Vector::uniform(3);
        let e = Vector::from(vec![0.6, 0.3, 0.1]);
        for _ in 1..=5 {
            let inputs = builder.candidate(&e).unwrap();
            let loss = inputs.privacy_loss(&pi).unwrap();
            assert!(loss.is_finite());
            builder.commit(e.clone()).unwrap();
        }
    }

    #[test]
    fn reset_and_clone_replay_identically() {
        let ev: StEvent = Presence::new(region(3, &[0, 1]), 2, 3).unwrap().into();
        let mut builder = TheoremBuilder::new(&ev, chain()).unwrap();
        let cols = [
            Vector::from(vec![0.7, 0.2, 0.1]),
            Vector::from(vec![0.2, 0.6, 0.2]),
            Vector::from(vec![0.3, 0.3, 0.4]),
        ];
        let mut first = Vec::new();
        for col in &cols {
            first.push(builder.candidate(col).unwrap());
            builder.commit(col.clone()).unwrap();
        }
        // A clone taken mid-stream carries the committed history.
        builder.reset();
        let snapshot = {
            let mut b = builder.clone();
            b.commit(cols[0].clone()).unwrap();
            b
        };
        assert_eq!(builder.committed(), 0, "reset must rewind the original");
        assert_eq!(snapshot.committed(), 1, "clone advances independently");
        // Replaying after reset reproduces the exact inputs.
        for (col, old) in cols.iter().zip(&first) {
            let redo = builder.candidate(col).unwrap();
            assert_eq!(redo.t, old.t);
            assert!(redo.b.max_abs_diff(&old.b) < 1e-15);
            assert!(redo.c.max_abs_diff(&old.c) < 1e-15);
            assert_eq!(redo.bc_log_scale, old.bc_log_scale);
            builder.commit(col.clone()).unwrap();
        }
        // The mid-stream snapshot matches the t=2 candidate of the replay.
        let snap_inputs = snapshot.candidate(&cols[1]).unwrap();
        assert!(snap_inputs.b.max_abs_diff(&first[1].b) < 1e-15);
    }

    #[test]
    fn emission_validation() {
        let ev: StEvent = Presence::new(region(3, &[0]), 2, 2).unwrap().into();
        let builder = TheoremBuilder::new(&ev, chain()).unwrap();
        assert!(matches!(
            builder.candidate(&Vector::from(vec![0.5, 0.5])),
            Err(QuantifyError::InvalidEmission { .. })
        ));
        assert!(matches!(
            builder.candidate(&Vector::from(vec![0.5, -0.1, 0.6])),
            Err(QuantifyError::InvalidEmission { .. })
        ));
    }

    #[test]
    fn privacy_loss_reports_degenerate_prior() {
        // Region {s1} at t=2 but chain row from s3 never reaches s1 and π
        // is a point mass on s3 … prior = Pr(u2 = s1 | u1 = s3) = 0.
        let ev: StEvent = Presence::new(region(3, &[0]), 2, 2).unwrap().into();
        let builder = TheoremBuilder::new(&ev, chain()).unwrap();
        let pi = Vector::from(vec![0.0, 0.0, 1.0]);
        let inputs = builder.candidate(&flat()).unwrap();
        assert!(matches!(
            inputs.privacy_loss(&pi),
            Err(QuantifyError::DegeneratePrior { .. })
        ));
    }

    #[test]
    fn informative_emissions_on_event_region_increase_loss() {
        // An emission column sharply peaked on the event region makes the
        // observation evidence *for* the event: loss must be positive.
        let ev: StEvent = Presence::new(region(3, &[0]), 2, 2).unwrap().into();
        let mut builder = TheoremBuilder::new(&ev, chain()).unwrap();
        let pi = Vector::uniform(3);
        let peaked = Vector::from(vec![0.98, 0.01, 0.01]);
        builder.commit(flat()).unwrap(); // t=1 uninformative
        let inputs = builder.candidate(&peaked).unwrap();
        let loss = inputs.privacy_loss(&pi).unwrap();
        assert!(loss > 0.1, "expected substantial loss, got {loss}");
    }
}
