use crate::lifted::LiftedStep;
use crate::{QuantifyError, Result};
use priste_event::StEvent;
use priste_linalg::Vector;
use priste_markov::TransitionProvider;

/// Per-event schedule of two-possible-world transitions.
///
/// Maps the paper's piecewise definitions (Eqs. (4)–(8)) onto a single
/// query: *which lifted shape governs the step `t → t+1`?* — plus the
/// initial-state lifting and the Lemma III.1 prior.
///
/// The paper's formulas assume `start ≥ 2` (mass can only enter the true
/// world through a transition). For events starting at `t = 1` the initial
/// vector itself is lifted world-aware: `[π∘(1−s), π∘s]`, so membership at
/// the first timestamp is counted (documented deviation in DESIGN.md).
#[derive(Debug, Clone)]
pub struct TwoWorldEngine<'e, P> {
    event: &'e StEvent,
    provider: P,
}

impl<'e, P: TransitionProvider> TwoWorldEngine<'e, P> {
    /// Couples an event with a transition source.
    ///
    /// # Errors
    /// [`QuantifyError::DomainMismatch`] if their state domains differ.
    pub fn new(event: &'e StEvent, provider: P) -> Result<Self> {
        if event.num_cells() != provider.num_states() {
            return Err(QuantifyError::DomainMismatch {
                event: event.num_cells(),
                provider: provider.num_states(),
            });
        }
        Ok(TwoWorldEngine { event, provider })
    }

    /// The event being encoded.
    pub fn event(&self) -> &StEvent {
        self.event
    }

    /// The transition source.
    pub fn provider(&self) -> &P {
        &self.provider
    }

    /// State-domain size `m`.
    pub fn num_states(&self) -> usize {
        self.provider.num_states()
    }

    /// The lifted shape governing the step `t → t+1` (`t ≥ 1`), per
    /// Eqs. (4)–(8).
    pub fn step_at(&self, t: usize) -> LiftedStep<'_> {
        assert!(t >= 1, "transition steps are 1-based");
        let m = self.provider.transition_at(t);
        let (start, end) = (self.event.start(), self.event.end());
        match self.event {
            StEvent::Presence(p) => {
                // Eq. (4) while entering/inside the window, Eq. (5) outside.
                if t + 1 >= start && t < end {
                    LiftedStep::Capture {
                        m,
                        region: p.region(),
                    }
                } else {
                    LiftedStep::BlockDiagonal { m }
                }
            }
            StEvent::Pattern(p) => {
                if t + 1 == start {
                    // Eq. (6): first entry into the pattern's opening region.
                    LiftedStep::Capture {
                        m,
                        region: p.region_at(start).expect("start is inside the window"),
                    }
                } else if t >= start && t < end {
                    // Eq. (7): must stay inside the region of the
                    // *destination* timestamp t+1 (see DESIGN.md on the
                    // paper's index ambiguity here).
                    LiftedStep::Hold {
                        m,
                        region: p.region_at(t + 1).expect("t+1 is inside the window"),
                    }
                } else {
                    // Eq. (8).
                    LiftedStep::BlockDiagonal { m }
                }
            }
        }
    }

    /// Lifts an initial distribution into the doubled space: `[π, 0]` for
    /// events starting at `t ≥ 2`; world-split `[π∘(1−s), π∘s]` for events
    /// whose window opens at `t = 1`.
    ///
    /// # Errors
    /// [`QuantifyError::InvalidInitial`] if `π` has the wrong length (the
    /// caller validates distribution-ness where it matters).
    pub fn initial_lift(&self, pi: &Vector) -> Result<Vector> {
        let m = self.num_states();
        if pi.len() != m {
            return Err(QuantifyError::InvalidInitial(
                priste_linalg::LinalgError::DimensionMismatch {
                    op: "initial distribution",
                    expected: m,
                    actual: pi.len(),
                },
            ));
        }
        if self.event.start() >= 2 {
            return Ok(pi.concat(&Vector::zeros(m)));
        }
        let region = self.opening_region();
        let s = region.indicator();
        let not_s = region.complement_indicator();
        let f = pi.hadamard(&not_s).expect("lengths match");
        let t = pi.hadamard(&s).expect("lengths match");
        Ok(f.concat(&t))
    }

    /// Reduces a lifted `2m` coefficient vector `v` to the `m`-vector `r`
    /// with `initial_lift(π) · v = π · r` for every `π` — the projection
    /// `[1^D, 0^D]` of Theorem IV.1, generalized to the `start = 1` lift.
    ///
    /// # Panics
    /// Panics if `v.len() != 2m`.
    pub fn reduce(&self, v: &Vector) -> Vector {
        let m = self.num_states();
        assert_eq!(v.len(), 2 * m, "reduce expects a lifted vector");
        let (vf, vt) = v.split_halves();
        if self.event.start() >= 2 {
            return vf;
        }
        let region = self.opening_region();
        let s = region.indicator();
        let not_s = region.complement_indicator();
        vf.hadamard(&not_s)
            .expect("lengths match")
            .add(&vt.hadamard(&s).expect("lengths match"))
            .expect("lengths match")
    }

    fn opening_region(&self) -> &priste_geo::Region {
        match self.event {
            StEvent::Presence(p) => p.region(),
            StEvent::Pattern(p) => p.region_at(p.start()).expect("start is inside the window"),
        }
    }

    /// Suffix products `u_t = ∏_{i=t}^{end−1} M_i · [0, 1]ᵀ` for
    /// `t = 1, …, end` (returned with `u_t` at index `t − 1`;
    /// `u_end = [0, 1]ᵀ`). `u_1` is Theorem IV.1's `aᵀ` (Eq. (17)), and
    /// `u_t` closes the Lemma III.2 products for observations up to `t`.
    pub fn suffix_true_vectors(&self) -> Vec<Vector> {
        let m = self.num_states();
        let end = self.event.end();
        let mut out = vec![Vector::zeros(0); end];
        out[end - 1] = Vector::zeros(m).concat(&Vector::ones(m));
        for t in (1..end).rev() {
            out[t - 1] = self.step_at(t).apply_col(&out[t]);
        }
        out
    }

    /// Prior probability of the event (Lemma III.1):
    /// `Pr(EVENT) = [π, 0] · ∏_{i=1}^{end−1} M_i · [0, 1]ᵀ`.
    ///
    /// # Errors
    /// [`QuantifyError::InvalidInitial`] if `π` is not a distribution over
    /// the state domain.
    pub fn prior(&self, pi: &Vector) -> Result<f64> {
        pi.validate_distribution()
            .map_err(QuantifyError::InvalidInitial)?;
        let lifted = self.initial_lift(pi)?;
        // Forward orientation: cheaper than building suffix vectors when
        // only the prior is needed, and numerically identical.
        let mut state = lifted;
        for t in 1..self.event.end() {
            state = self.step_at(t).apply_row(&state);
        }
        let (_, true_world) = state.split_halves();
        Ok(true_world.sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priste_event::{Pattern, Presence};
    use priste_geo::{CellId, Region};
    use priste_markov::{Homogeneous, MarkovModel};

    fn region(num_cells: usize, ids: &[usize]) -> Region {
        Region::from_cells(num_cells, ids.iter().map(|&i| CellId(i))).unwrap()
    }

    fn paper_chain() -> Homogeneous {
        Homogeneous::new(MarkovModel::paper_example())
    }

    #[test]
    fn domain_mismatch_is_rejected() {
        let ev: StEvent = Presence::new(region(4, &[0]), 2, 3).unwrap().into();
        assert!(matches!(
            TwoWorldEngine::new(&ev, paper_chain()),
            Err(QuantifyError::DomainMismatch { .. })
        ));
    }

    #[test]
    fn paper_example_c1_prior() {
        // Example C.1: PRESENCE(S={s1,s2}, T={3,4}) on the Eq. (2) chain
        // gives Pr = π · [0.28, 0.298, 0.226]ᵀ.
        let ev: StEvent = Presence::new(region(3, &[0, 1]), 3, 4).unwrap().into();
        let engine = TwoWorldEngine::new(&ev, paper_chain()).unwrap();
        for pi in [
            Vector::from(vec![1.0, 0.0, 0.0]),
            Vector::from(vec![0.0, 1.0, 0.0]),
            Vector::from(vec![0.0, 0.0, 1.0]),
            Vector::from(vec![0.2, 0.3, 0.5]),
        ] {
            let expected = pi.dot(&Vector::from(vec![0.28, 0.298, 0.226])).unwrap();
            let got = engine.prior(&pi).unwrap();
            assert!(
                (got - expected).abs() < 1e-12,
                "pi {:?}: {got} vs {expected}",
                pi.as_slice()
            );
        }
    }

    #[test]
    fn suffix_u1_reduction_matches_prior() {
        let ev: StEvent = Presence::new(region(3, &[0, 1]), 3, 4).unwrap().into();
        let engine = TwoWorldEngine::new(&ev, paper_chain()).unwrap();
        let suffix = engine.suffix_true_vectors();
        let a = engine.reduce(&suffix[0]);
        // Example C.1 again, via the column orientation.
        assert!(a.max_abs_diff(&Vector::from(vec![0.28, 0.298, 0.226])) < 1e-12);
    }

    #[test]
    fn presence_step_schedule_matches_paper_window() {
        // Event at T={3,4}: captures at t=2,3; diagonal at t=1 and t≥4.
        let ev: StEvent = Presence::new(region(3, &[0, 1]), 3, 4).unwrap().into();
        let engine = TwoWorldEngine::new(&ev, paper_chain()).unwrap();
        assert!(matches!(
            engine.step_at(1),
            LiftedStep::BlockDiagonal { .. }
        ));
        assert!(matches!(engine.step_at(2), LiftedStep::Capture { .. }));
        assert!(matches!(engine.step_at(3), LiftedStep::Capture { .. }));
        assert!(matches!(
            engine.step_at(4),
            LiftedStep::BlockDiagonal { .. }
        ));
        assert!(matches!(
            engine.step_at(5),
            LiftedStep::BlockDiagonal { .. }
        ));
    }

    #[test]
    fn pattern_step_schedule() {
        // PATTERN over t=2..4: capture at t=1, hold at t=2,3, diagonal after.
        let ev: StEvent = Pattern::new(
            vec![region(3, &[0, 1]), region(3, &[1, 2]), region(3, &[0])],
            2,
        )
        .unwrap()
        .into();
        let engine = TwoWorldEngine::new(&ev, paper_chain()).unwrap();
        assert!(matches!(engine.step_at(1), LiftedStep::Capture { .. }));
        assert!(matches!(engine.step_at(2), LiftedStep::Hold { .. }));
        assert!(matches!(engine.step_at(3), LiftedStep::Hold { .. }));
        assert!(matches!(
            engine.step_at(4),
            LiftedStep::BlockDiagonal { .. }
        ));
        // Hold at t=2 must require the region of the destination time t=3.
        if let LiftedStep::Hold { region: r, .. } = engine.step_at(2) {
            assert!(r.contains(CellId(1)) && r.contains(CellId(2)) && !r.contains(CellId(0)));
        } else {
            panic!("expected hold at t=2");
        }
    }

    #[test]
    fn prior_matches_hand_enumeration_for_pattern() {
        // PATTERN {s1,s2}@2 then {s2,s3}@3 on the Eq. (2) chain, π uniform.
        let ev: StEvent = Pattern::new(vec![region(3, &[0, 1]), region(3, &[1, 2])], 2)
            .unwrap()
            .into();
        let engine = TwoWorldEngine::new(&ev, paper_chain()).unwrap();
        let pi = Vector::uniform(3);
        let m = MarkovModel::paper_example();
        // Enumerate all 27 trajectories of length 3 by hand.
        let mut expected = 0.0;
        for u1 in 0..3 {
            for u2 in 0..3 {
                for u3 in 0..3 {
                    let in_pattern = (u2 == 0 || u2 == 1) && (u3 == 1 || u3 == 2);
                    if in_pattern {
                        expected +=
                            pi[u1] * m.transition().get(u1, u2) * m.transition().get(u2, u3);
                    }
                }
            }
        }
        let got = engine.prior(&pi).unwrap();
        assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    }

    #[test]
    fn start_one_presence_counts_first_timestamp() {
        // PRESENCE(S={s1}, T={1}): prior is exactly π₁.
        let ev: StEvent = Presence::new(region(3, &[0]), 1, 1).unwrap().into();
        let engine = TwoWorldEngine::new(&ev, paper_chain()).unwrap();
        let pi = Vector::from(vec![0.6, 0.3, 0.1]);
        assert!((engine.prior(&pi).unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn start_one_pattern_requires_both_steps() {
        // PATTERN {s1}@1 then {s3}@2: Pr = π₁ · M[0][2].
        let ev: StEvent = Pattern::new(vec![region(3, &[0]), region(3, &[2])], 1)
            .unwrap()
            .into();
        let engine = TwoWorldEngine::new(&ev, paper_chain()).unwrap();
        let pi = Vector::from(vec![0.5, 0.25, 0.25]);
        assert!((engine.prior(&pi).unwrap() - 0.5 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn reduce_is_adjoint_of_initial_lift() {
        for ev in [
            StEvent::from(Presence::new(region(3, &[0, 1]), 1, 2).unwrap()),
            StEvent::from(Presence::new(region(3, &[0, 1]), 3, 4).unwrap()),
            StEvent::from(Pattern::new(vec![region(3, &[2]), region(3, &[1])], 1).unwrap()),
        ] {
            let engine = TwoWorldEngine::new(&ev, paper_chain()).unwrap();
            let pi = Vector::from(vec![0.2, 0.5, 0.3]);
            let v = Vector::from(vec![0.1, 0.9, 0.4, 0.7, 0.3, 0.2]);
            let direct = engine.initial_lift(&pi).unwrap().dot(&v).unwrap();
            let reduced = pi.dot(&engine.reduce(&v)).unwrap();
            assert!((direct - reduced).abs() < 1e-14, "event {ev}");
        }
    }

    #[test]
    fn prior_plus_complement_is_one() {
        let ev: StEvent = Presence::new(region(3, &[1]), 2, 5).unwrap().into();
        let engine = TwoWorldEngine::new(&ev, paper_chain()).unwrap();
        let pi = Vector::from(vec![0.3, 0.4, 0.3]);
        let lifted = engine.initial_lift(&pi).unwrap();
        let mut state = lifted;
        for t in 1..ev.end() {
            state = engine.step_at(t).apply_row(&state);
        }
        // Total mass is conserved; true + false worlds partition it.
        assert!((state.sum() - 1.0).abs() < 1e-12);
        let (f, tr) = state.split_halves();
        assert!((f.sum() + tr.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prior_rejects_bad_initial() {
        let ev: StEvent = Presence::new(region(3, &[0]), 2, 3).unwrap().into();
        let engine = TwoWorldEngine::new(&ev, paper_chain()).unwrap();
        assert!(engine.prior(&Vector::from(vec![0.5, 0.2, 0.1])).is_err());
        assert!(engine.prior(&Vector::uniform(4)).is_err());
    }
}
