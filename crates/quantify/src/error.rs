use std::fmt;

/// Errors produced by the quantification engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QuantifyError {
    /// The event's state domain disagrees with the transition provider's.
    DomainMismatch {
        /// Domain size of the event.
        event: usize,
        /// Domain size of the transition provider.
        provider: usize,
    },
    /// An initial distribution failed validation.
    InvalidInitial(priste_linalg::LinalgError),
    /// An emission column had the wrong length or negative entries.
    InvalidEmission {
        /// Expected length `m`.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// The event prior is degenerate (0 or 1) under the given model, so the
    /// conditional ratio `Pr(o|EVENT)/Pr(o|¬EVENT)` is undefined.
    DegeneratePrior {
        /// The offending prior probability.
        prior: f64,
    },
    /// An observation stream has zero likelihood under the model: the
    /// forward mass vanished at the recorded timestep, so no posterior
    /// exists. Distinct from [`QuantifyError::InvalidEmission`] (a
    /// malformed column) — the column was well-formed but impossible given
    /// everything observed before it.
    ZeroLikelihood {
        /// 1-based timestep of the observation that killed the likelihood.
        t: usize,
    },
    /// A persisted quantifier state failed validation on resume (wrong
    /// mantissa length, non-finite entries, an inconsistent cursor).
    InvalidResume {
        /// What was wrong with the persisted state.
        detail: String,
    },
    /// Observations were supplied out of order or beyond the engine state.
    TimestepOutOfOrder {
        /// Timestep expected next.
        expected: usize,
        /// Timestep requested.
        requested: usize,
    },
    /// A naive enumeration would exceed the configured work limit.
    EnumerationTooLarge {
        /// Number of trajectories the enumeration would visit.
        trajectories: u128,
        /// The configured cap.
        limit: u128,
    },
}

impl fmt::Display for QuantifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantifyError::DomainMismatch { event, provider } => {
                write!(
                    f,
                    "event domain has {event} cells but transition model has {provider}"
                )
            }
            QuantifyError::InvalidInitial(e) => write!(f, "invalid initial distribution: {e}"),
            QuantifyError::InvalidEmission { expected, actual } => {
                write!(
                    f,
                    "emission column has length {actual}, expected {expected}"
                )
            }
            QuantifyError::DegeneratePrior { prior } => {
                write!(
                    f,
                    "event prior {prior} is degenerate; privacy ratio undefined"
                )
            }
            QuantifyError::ZeroLikelihood { t } => {
                write!(
                    f,
                    "observation stream has zero likelihood under the model at timestep {t}"
                )
            }
            QuantifyError::InvalidResume { detail } => {
                write!(f, "persisted quantifier state failed validation: {detail}")
            }
            QuantifyError::TimestepOutOfOrder {
                expected,
                requested,
            } => {
                write!(
                    f,
                    "timestep {requested} out of order; engine expects {expected}"
                )
            }
            QuantifyError::EnumerationTooLarge {
                trajectories,
                limit,
            } => {
                write!(
                    f,
                    "naive enumeration of {trajectories} trajectories exceeds limit {limit}"
                )
            }
        }
    }
}

impl std::error::Error for QuantifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QuantifyError::InvalidInitial(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = QuantifyError::DegeneratePrior { prior: 0.0 };
        assert!(e.to_string().contains('0'));
    }

    #[test]
    fn zero_likelihood_reports_the_timestep() {
        let e = QuantifyError::ZeroLikelihood { t: 7 };
        assert!(e.to_string().contains('7'));
        assert_eq!(e, QuantifyError::ZeroLikelihood { t: 7 });
    }
}
