//! Incremental two-possible-world quantification for streaming releases.
//!
//! [`TheoremBuilder`](crate::TheoremBuilder) answers the *any-π* Theorem
//! IV.1 question, and pays for that generality by replaying the committed
//! factor chain on every candidate — `O(t·m²)` at timestep `t`, `O(T²·m²)`
//! over a horizon. The journal extension of the paper (*Protecting
//! Spatiotemporal Event Privacy in Continuous Location-Based Services*,
//! arXiv:1907.10814) observes that for a **known** initial distribution the
//! same recursion can be maintained forward: carry the lifted row vector
//!
//! ```text
//! α_t = lift(π) · E_1 M_1 E_2 M_2 ⋯ M_{t−1} E_t
//! ```
//!
//! across timestamps and every quantity of Lemmas III.1–III.3 falls out of
//! two inner products:
//!
//! * `Pr(EVENT, o_1..o_t) = α_t · u_{min(t, end)}` (the precomputed suffix
//!   vectors of [`TwoWorldEngine::suffix_true_vectors`]; past the event end
//!   the suffix is the constant true-world selector `[0, 1]ᵀ`),
//! * `Pr(o_1..o_t) = α_t · 1`.
//!
//! One observation therefore costs a single structured lifted step plus an
//! emission Hadamard — `O(m²)` — which is what makes per-timestamp checking
//! viable for a service tracking many users ([`priste-online`'s sessions
//! hold one `IncrementalTwoWorld` per active event window).
//!
//! Unlike the borrowing [`TwoWorldEngine`], this type **owns** its event and
//! provider so sessions can live in long-running collections without
//! self-referential lifetimes; share one model across windows via
//! `Arc<Homogeneous>` (every `TransitionProvider` is also implemented for
//! `Arc<T>`).

use crate::lifted::lift_emission;
use crate::{QuantifyError, Result, TwoWorldEngine};
use priste_event::StEvent;
use priste_linalg::scaling::ScaledVector;
use priste_linalg::Vector;
use priste_markov::TransitionProvider;

/// Per-observation output of the incremental quantifier — the streaming
/// analogue of [`crate::fixed_pi::StepQuantification`] plus the adversary's
/// posterior view.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStep {
    /// Timestep `t` of the observation just consumed (1-based).
    pub t: usize,
    /// `Pr(EVENT)` under the session's `π` (constant over time).
    pub prior: f64,
    /// `ln Pr(EVENT, o_1..o_t)`; `-∞` if the joint is zero.
    pub log_joint_event: f64,
    /// `ln Pr(o_1..o_t)`.
    pub log_joint_total: f64,
    /// Posterior `Pr(EVENT | o_1..o_t)` (exact Bayes under the model).
    pub posterior: f64,
    /// Odds lift `(posterior odds) / (prior odds)`; ε-ST-event privacy at ε
    /// bounds it inside `[e^{−ε}, e^{ε}]`. `0` or `+∞` at degenerate
    /// posteriors.
    pub odds_lift: f64,
    /// Realized two-sided privacy loss `|ln [Pr(o|E) / Pr(o|¬E)]|`.
    /// Reported as `+∞` (rather than an error) when the observations prove
    /// the event true or false outright — a streaming service must record
    /// that as a verdict, not crash on it.
    pub privacy_loss: f64,
}

impl StreamStep {
    /// Whether the realized loss stays within a given ε budget.
    pub fn certifies(&self, epsilon: f64) -> bool {
        self.privacy_loss <= epsilon
    }
}

/// Streaming fixed-`π` event-privacy quantifier: carries the lifted forward
/// vector across timestamps and updates in `O(m²)` per observation instead
/// of replaying the horizon. Cross-validated against
/// [`TheoremBuilder`](crate::TheoremBuilder) /
/// [`TwoWorldEngine`](crate::TwoWorldEngine) by the
/// `incremental_stream` integration suite.
#[derive(Debug, Clone)]
pub struct IncrementalTwoWorld<P> {
    event: StEvent,
    provider: P,
    pi: Vector,
    /// Lifted suffix vectors `u_t` (index `t−1`) for `t = 1..=end`.
    suffix: Vec<Vector>,
    prior: f64,
    /// Lifted forward vector after `t` observations.
    alpha: ScaledVector,
    t: usize,
}

impl<P: TransitionProvider> IncrementalTwoWorld<P> {
    /// Builds the streaming state: suffix products, the Lemma III.1 prior,
    /// and the lifted initial vector. Owns `event` and `provider` so the
    /// value is `'static` when they are (sessions outlive call frames).
    ///
    /// # Errors
    /// Domain checks from [`TwoWorldEngine::new`];
    /// [`QuantifyError::InvalidInitial`] for a bad `π`;
    /// [`QuantifyError::DegeneratePrior`] when `Pr(EVENT) ∈ {0, 1}` under
    /// `π` (there is no ratio to track).
    pub fn new(event: StEvent, provider: P, pi: Vector) -> Result<Self> {
        pi.validate_distribution()
            .map_err(QuantifyError::InvalidInitial)?;
        let engine = TwoWorldEngine::new(&event, &provider)?;
        let suffix = engine.suffix_true_vectors();
        let lifted = engine.initial_lift(&pi)?;
        let prior = pi
            .dot(&engine.reduce(&suffix[0]))
            .expect("validated length");
        if !(prior > 0.0 && prior < 1.0) {
            return Err(QuantifyError::DegeneratePrior { prior });
        }
        Ok(IncrementalTwoWorld {
            event,
            provider,
            pi,
            suffix,
            prior,
            alpha: ScaledVector::new(lifted),
            t: 0,
        })
    }

    /// The protected event.
    pub fn event(&self) -> &StEvent {
        &self.event
    }

    /// The session's fixed initial distribution.
    pub fn pi(&self) -> &Vector {
        &self.pi
    }

    /// `Pr(EVENT)` under `π`.
    pub fn prior(&self) -> f64 {
        self.prior
    }

    /// Observations consumed so far.
    pub fn observed(&self) -> usize {
        self.t
    }

    /// State-domain size `m`.
    pub fn num_states(&self) -> usize {
        self.provider.num_states()
    }

    /// The carried lifted forward mantissa (length `2m`; the represented
    /// vector is this times `e^{log_scale}`, but every consumer below is
    /// scale-invariant). Exposed so a batch driver can apply one shared
    /// [`LiftedStep`](crate::lifted::LiftedStep) to many sessions at once.
    pub fn lifted_state(&self) -> &Vector {
        &self.alpha.vector
    }

    /// The natural-log scale factor of the carried forward vector: the
    /// represented `α_t` is [`IncrementalTwoWorld::lifted_state`] times
    /// `e^{log_scale}`. Together with the mantissa and the cursor
    /// [`IncrementalTwoWorld::observed`], this is the complete dynamic
    /// state — a persistence layer can checkpoint the triple and hand it
    /// back to [`IncrementalTwoWorld::resume`].
    pub fn log_scale(&self) -> f64 {
        self.alpha.log_scale
    }

    /// Rebuilds a quantifier from persisted dynamic state: the event and
    /// provider (static configuration), the attach-time `π` (the replay
    /// seed), and the checkpointed forward vector `(mantissa, log_scale)`
    /// at cursor `t`. The static precomputation (suffix vectors, prior) is
    /// re-derived from scratch, so a resumed quantifier is bit-identical to
    /// one that observed the same stream live.
    ///
    /// # Errors
    /// Construction errors from [`IncrementalTwoWorld::new`];
    /// [`QuantifyError::InvalidResume`] when the mantissa has the wrong
    /// length, carries negative or non-finite entries, is identically zero
    /// past the first observation, or the scale is non-finite.
    pub fn resume(
        event: StEvent,
        provider: P,
        pi: Vector,
        mantissa: Vector,
        log_scale: f64,
        t: usize,
    ) -> Result<Self> {
        let mut state = Self::new(event, provider, pi)?;
        if mantissa.len() != 2 * state.num_states() {
            return Err(QuantifyError::InvalidResume {
                detail: format!(
                    "lifted mantissa has length {}, expected {}",
                    mantissa.len(),
                    2 * state.num_states()
                ),
            });
        }
        if mantissa
            .as_slice()
            .iter()
            .any(|&x| x < 0.0 || !x.is_finite())
        {
            return Err(QuantifyError::InvalidResume {
                detail: "lifted mantissa carries negative or non-finite entries".into(),
            });
        }
        if t > 0 && mantissa.sum() <= 0.0 {
            return Err(QuantifyError::InvalidResume {
                detail: format!("lifted mantissa vanished at cursor {t}"),
            });
        }
        if !log_scale.is_finite() {
            return Err(QuantifyError::InvalidResume {
                detail: format!("non-finite log scale {log_scale}"),
            });
        }
        state.alpha = ScaledVector {
            vector: mantissa,
            log_scale,
        };
        state.t = t;
        Ok(state)
    }

    /// Index of the lifted step that must be applied before the *next*
    /// observation (`step_at(t)` of the engine schedule), or `None` for the
    /// very first observation, which is emission-weighting only.
    pub fn next_step_index(&self) -> Option<usize> {
        (self.t >= 1).then_some(self.t)
    }

    /// Quantifies the next observation without committing it.
    ///
    /// # Errors
    /// Emission validation; [`QuantifyError::ZeroLikelihood`] when the
    /// observation stream would have zero probability under the model.
    pub fn peek(&self, emission_column: &Vector) -> Result<StreamStep> {
        self.validate_emission(emission_column)?;
        let advanced = self.advanced_alpha(emission_column);
        self.report(self.t + 1, &advanced)
    }

    /// Consumes one observation: one structured lifted step plus an emission
    /// weighting (`O(m²)`), then the two inner products of the module docs.
    ///
    /// # Errors
    /// See [`IncrementalTwoWorld::peek`]. On error the state is unchanged,
    /// so a session can skip an impossible observation and continue.
    pub fn observe(&mut self, emission_column: &Vector) -> Result<StreamStep> {
        self.validate_emission(emission_column)?;
        let advanced = self.advanced_alpha(emission_column);
        let step = self.report(self.t + 1, &advanced)?;
        self.alpha = advanced;
        self.t += 1;
        Ok(step)
    }

    /// Batched-path variant of [`IncrementalTwoWorld::observe`]: the caller
    /// has already applied this timestep's lifted transition to
    /// [`IncrementalTwoWorld::lifted_state`] (typically via
    /// [`LiftedStep::apply_rows`](crate::lifted::LiftedStep::apply_rows)
    /// with one step shared across many sessions) and hands back the moved
    /// mantissa; only the emission weighting and the report remain here.
    ///
    /// For the first observation (`next_step_index() == None`) pass the
    /// current mantissa unchanged.
    ///
    /// # Errors
    /// See [`IncrementalTwoWorld::peek`].
    ///
    /// # Panics
    /// Panics if `stepped.len() != 2m`.
    pub fn observe_pre_stepped(
        &mut self,
        stepped: Vector,
        emission_column: &Vector,
    ) -> Result<StreamStep> {
        self.validate_emission(emission_column)?;
        assert_eq!(
            stepped.len(),
            2 * self.num_states(),
            "pre-stepped vector must be lifted"
        );
        let mut advanced = ScaledVector {
            vector: stepped
                .hadamard(&lift_emission(emission_column))
                .expect("lifted emission length"),
            log_scale: self.alpha.log_scale,
        };
        advanced.renormalize();
        let step = self.report(self.t + 1, &advanced)?;
        self.alpha = advanced;
        self.t += 1;
        Ok(step)
    }

    /// Rewinds to `t = 0`, keeping the per-event precomputation (suffix
    /// vectors, prior) so a session can be replayed or re-armed without
    /// rebuilding.
    pub fn reset(&mut self) {
        let lifted = self
            .engine()
            .initial_lift(&self.pi)
            .expect("validated at construction");
        self.alpha = ScaledVector::new(lifted);
        self.t = 0;
    }

    /// Temporary borrowing engine over the owned event/provider (checks
    /// were done at construction; re-running them is O(1)).
    fn engine(&self) -> TwoWorldEngine<'_, &P> {
        TwoWorldEngine::new(&self.event, &self.provider).expect("validated at construction")
    }

    fn validate_emission(&self, emission_column: &Vector) -> Result<()> {
        let m = self.num_states();
        if emission_column.len() != m
            || emission_column
                .as_slice()
                .iter()
                .any(|&x| x < 0.0 || !x.is_finite())
        {
            return Err(QuantifyError::InvalidEmission {
                expected: m,
                actual: emission_column.len(),
            });
        }
        Ok(())
    }

    /// `α_{t+1}` from `α_t`: apply the scheduled lifted step (none before
    /// the first observation), weight by the lifted emission, renormalize.
    fn advanced_alpha(&self, emission_column: &Vector) -> ScaledVector {
        let next_t = self.t + 1;
        let mut a = self.alpha.clone();
        if next_t >= 2 {
            a.vector = self.engine().step_at(next_t - 1).apply_row(&a.vector);
        }
        a.vector = a
            .vector
            .hadamard(&lift_emission(emission_column))
            .expect("lifted emission length");
        a.renormalize();
        a
    }

    /// The Lemma III.2/III.3 readout at timestep `t` for a forward vector.
    fn report(&self, t: usize, alpha: &ScaledVector) -> Result<StreamStep> {
        let u = &self.suffix[t.min(self.event.end()) - 1];
        let jb = alpha.vector.dot(u).expect("lifted lengths match");
        let jc = alpha.vector.sum();
        if jc <= 0.0 {
            return Err(QuantifyError::ZeroLikelihood { t });
        }
        let log_joint_event = if jb > 0.0 {
            jb.ln() + alpha.log_scale
        } else {
            f64::NEG_INFINITY
        };
        let log_joint_total = jc.ln() + alpha.log_scale;
        let posterior = (jb / jc).clamp(0.0, 1.0);
        let prior_odds = self.prior / (1.0 - self.prior);
        let posterior_odds = if posterior >= 1.0 {
            f64::INFINITY
        } else {
            posterior / (1.0 - posterior)
        };
        let j_not = jc - jb;
        let privacy_loss = if jb <= 0.0 || j_not <= 0.0 {
            f64::INFINITY
        } else {
            // ln [ (jb/prior) / (j_not/(1−prior)) ] — scales cancel.
            ((jb / self.prior).ln() - (j_not / (1.0 - self.prior)).ln()).abs()
        };
        Ok(StreamStep {
            t,
            prior: self.prior,
            log_joint_event,
            log_joint_total,
            posterior,
            odds_lift: posterior_odds / prior_odds,
            privacy_loss,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TheoremBuilder;
    use priste_event::Presence;
    use priste_geo::{CellId, Region};
    use priste_markov::{Homogeneous, MarkovModel};

    fn region(ids: &[usize]) -> Region {
        Region::from_cells(3, ids.iter().map(|&i| CellId(i))).unwrap()
    }

    fn chain() -> Homogeneous {
        Homogeneous::new(MarkovModel::paper_example())
    }

    fn presence_event() -> StEvent {
        Presence::new(region(&[0, 1]), 2, 3).unwrap().into()
    }

    #[test]
    fn matches_offline_builder_step_by_step() {
        let ev = presence_event();
        let pi = Vector::from(vec![0.5, 0.3, 0.2]);
        let mut inc = IncrementalTwoWorld::new(ev.clone(), chain(), pi.clone()).unwrap();
        let mut builder = TheoremBuilder::new(&ev, chain()).unwrap();
        let cols = [
            Vector::from(vec![0.7, 0.2, 0.1]),
            Vector::from(vec![0.1, 0.8, 0.1]),
            Vector::from(vec![0.3, 0.3, 0.4]),
            Vector::from(vec![0.25, 0.5, 0.25]),
            Vector::from(vec![0.6, 0.2, 0.2]),
        ];
        for col in &cols {
            let stream = inc.observe(col).unwrap();
            let inputs = builder.candidate(col).unwrap();
            assert!((stream.prior - inputs.prior(&pi)).abs() < 1e-12);
            assert!(
                (stream.log_joint_event - inputs.log_joint_event(&pi)).abs() < 1e-9,
                "t={}: {} vs {}",
                stream.t,
                stream.log_joint_event,
                inputs.log_joint_event(&pi)
            );
            assert!((stream.log_joint_total - inputs.log_joint_total(&pi)).abs() < 1e-9);
            builder.commit(col.clone()).unwrap();
        }
        assert_eq!(inc.observed(), 5);
    }

    #[test]
    fn uninformative_stream_stays_at_zero_loss() {
        let mut inc =
            IncrementalTwoWorld::new(presence_event(), chain(), Vector::uniform(3)).unwrap();
        let flat = Vector::from(vec![1.0 / 3.0; 3]);
        for _ in 0..6 {
            let s = inc.observe(&flat).unwrap();
            assert!(s.privacy_loss < 1e-10, "loss {}", s.privacy_loss);
            assert!((s.posterior - s.prior).abs() < 1e-10);
            assert!((s.odds_lift - 1.0).abs() < 1e-9);
            assert!(s.certifies(1e-6));
        }
    }

    #[test]
    fn peek_does_not_advance_and_observe_matches_peek() {
        let mut inc =
            IncrementalTwoWorld::new(presence_event(), chain(), Vector::uniform(3)).unwrap();
        let col = Vector::from(vec![0.6, 0.3, 0.1]);
        let p1 = inc.peek(&col).unwrap();
        let p2 = inc.peek(&col).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(inc.observed(), 0);
        let o = inc.observe(&col).unwrap();
        assert_eq!(o, p1);
        assert_eq!(inc.observed(), 1);
    }

    #[test]
    fn pre_stepped_path_equals_self_stepped_path() {
        let pi = Vector::from(vec![0.2, 0.4, 0.4]);
        let mut plain = IncrementalTwoWorld::new(presence_event(), chain(), pi.clone()).unwrap();
        let mut batched = plain.clone();
        let cols = [
            Vector::from(vec![0.5, 0.3, 0.2]),
            Vector::from(vec![0.2, 0.2, 0.6]),
            Vector::from(vec![0.9, 0.05, 0.05]),
        ];
        let provider = chain();
        for col in &cols {
            let a = plain.observe(col).unwrap();
            let stepped = match batched.next_step_index() {
                None => batched.lifted_state().clone(),
                Some(idx) => {
                    let engine = TwoWorldEngine::new(batched.event(), &provider).unwrap();
                    let step = engine.step_at(idx);
                    step.apply_rows(std::slice::from_ref(batched.lifted_state()))
                        .pop()
                        .unwrap()
                }
            };
            let b = batched.observe_pre_stepped(stepped, col).unwrap();
            assert!((a.log_joint_event - b.log_joint_event).abs() < 1e-12);
            assert!((a.log_joint_total - b.log_joint_total).abs() < 1e-12);
            assert!((a.posterior - b.posterior).abs() < 1e-12);
        }
    }

    #[test]
    fn reset_replays_identically() {
        let mut inc =
            IncrementalTwoWorld::new(presence_event(), chain(), Vector::uniform(3)).unwrap();
        let cols = [
            Vector::from(vec![0.7, 0.2, 0.1]),
            Vector::from(vec![0.2, 0.6, 0.2]),
        ];
        let first: Vec<StreamStep> = cols.iter().map(|c| inc.observe(c).unwrap()).collect();
        inc.reset();
        assert_eq!(inc.observed(), 0);
        let second: Vec<StreamStep> = cols.iter().map(|c| inc.observe(c).unwrap()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn proving_the_event_false_reports_infinite_loss_not_an_error() {
        // Event: in {s1} at t=2. An observation only s3 can emit at t=2
        // proves ¬EVENT; the stream must keep flowing with loss = ∞.
        let ev: StEvent = Presence::new(region(&[0]), 2, 2).unwrap().into();
        let mut inc = IncrementalTwoWorld::new(ev, chain(), Vector::uniform(3)).unwrap();
        inc.observe(&Vector::from(vec![1.0 / 3.0; 3])).unwrap();
        let s = inc.observe(&Vector::from(vec![0.0, 0.0, 1.0])).unwrap();
        assert_eq!(s.posterior, 0.0);
        assert_eq!(s.privacy_loss, f64::INFINITY);
        assert!(!s.certifies(1e9));
        assert_eq!(inc.observed(), 2);
    }

    #[test]
    fn impossible_observation_is_zero_likelihood_and_leaves_state_intact() {
        let mut inc =
            IncrementalTwoWorld::new(presence_event(), chain(), Vector::uniform(3)).unwrap();
        inc.observe(&Vector::from(vec![0.0, 0.0, 1.0])).unwrap();
        // From s3 only {s2, s3} are reachable; a column emitting solely
        // from s1 is impossible.
        let err = inc.observe(&Vector::from(vec![1.0, 0.0, 0.0])).unwrap_err();
        assert_eq!(err, QuantifyError::ZeroLikelihood { t: 2 });
        assert_eq!(inc.observed(), 1, "failed observe must not advance");
    }

    #[test]
    fn construction_rejects_bad_inputs() {
        assert!(matches!(
            IncrementalTwoWorld::new(presence_event(), chain(), Vector::uniform(4)),
            Err(QuantifyError::InvalidInitial(_))
        ));
        let ev: StEvent = Presence::new(region(&[0]), 2, 2).unwrap().into();
        // Point mass on s3: the chain cannot reach s1 in one step.
        assert!(matches!(
            IncrementalTwoWorld::new(ev, chain(), Vector::from(vec![0.0, 0.0, 1.0])),
            Err(QuantifyError::DegeneratePrior { .. })
        ));
        let inc = IncrementalTwoWorld::new(presence_event(), chain(), Vector::uniform(3)).unwrap();
        assert!(matches!(
            inc.peek(&Vector::from(vec![0.5, 0.5])),
            Err(QuantifyError::InvalidEmission { .. })
        ));
        assert!(matches!(
            inc.peek(&Vector::from(vec![0.5, -0.1, 0.6])),
            Err(QuantifyError::InvalidEmission { .. })
        ));
    }

    #[test]
    fn resume_restores_bit_identical_state() {
        let pi = Vector::from(vec![0.5, 0.3, 0.2]);
        let mut live = IncrementalTwoWorld::new(presence_event(), chain(), pi.clone()).unwrap();
        let cols = [
            Vector::from(vec![0.7, 0.2, 0.1]),
            Vector::from(vec![0.1, 0.8, 0.1]),
            Vector::from(vec![0.3, 0.3, 0.4]),
        ];
        for col in &cols {
            live.observe(col).unwrap();
        }
        let mut resumed = IncrementalTwoWorld::resume(
            presence_event(),
            chain(),
            pi,
            live.lifted_state().clone(),
            live.log_scale(),
            live.observed(),
        )
        .unwrap();
        assert_eq!(resumed.observed(), 3);
        assert_eq!(resumed.lifted_state(), live.lifted_state());
        assert_eq!(resumed.log_scale(), live.log_scale());
        // Continuing the stream from the resumed state matches the live one
        // exactly (same bits, not just same values).
        let next = Vector::from(vec![0.25, 0.5, 0.25]);
        assert_eq!(
            live.observe(&next).unwrap(),
            resumed.observe(&next).unwrap()
        );
    }

    #[test]
    fn resume_rejects_malformed_state() {
        let pi = Vector::uniform(3);
        let bad_len = IncrementalTwoWorld::resume(
            presence_event(),
            chain(),
            pi.clone(),
            Vector::uniform(3),
            0.0,
            1,
        );
        assert!(matches!(bad_len, Err(QuantifyError::InvalidResume { .. })));
        let bad_entries = IncrementalTwoWorld::resume(
            presence_event(),
            chain(),
            pi.clone(),
            Vector::from(vec![0.1, f64::NAN, 0.1, 0.1, 0.1, 0.1]),
            0.0,
            1,
        );
        assert!(matches!(
            bad_entries,
            Err(QuantifyError::InvalidResume { .. })
        ));
        let bad_scale = IncrementalTwoWorld::resume(
            presence_event(),
            chain(),
            pi.clone(),
            Vector::uniform(6),
            f64::INFINITY,
            1,
        );
        assert!(matches!(
            bad_scale,
            Err(QuantifyError::InvalidResume { .. })
        ));
        let vanished =
            IncrementalTwoWorld::resume(presence_event(), chain(), pi, Vector::zeros(6), 0.0, 2);
        assert!(matches!(vanished, Err(QuantifyError::InvalidResume { .. })));
    }

    #[test]
    fn posterior_agrees_with_bayesian_adversary() {
        let ev = presence_event();
        let pi = Vector::from(vec![0.3, 0.3, 0.4]);
        let mut inc = IncrementalTwoWorld::new(ev.clone(), chain(), pi.clone()).unwrap();
        let mut adv = crate::attack::BayesianAdversary::new(&ev, chain(), pi).unwrap();
        for col in [
            Vector::from(vec![0.6, 0.3, 0.1]),
            Vector::from(vec![0.1, 0.3, 0.6]),
            Vector::from(vec![0.4, 0.4, 0.2]),
        ] {
            let s = inc.observe(&col).unwrap();
            let inf = adv.observe(&col).unwrap();
            assert!(
                (s.posterior - inf.posterior).abs() < 1e-10,
                "posterior {} vs {}",
                s.posterior,
                inf.posterior
            );
            assert!((s.odds_lift - inf.odds_lift).abs() < 1e-9 * inf.odds_lift.max(1.0));
        }
    }
}
