//! ε-capacity analysis: the *smallest* ε a release sequence can certify.
//!
//! The framework answers "does this release satisfy a given ε?"; users
//! tuning a deployment usually ask the inverse — "what is the strongest
//! guarantee this mechanism can give for my event?". Both Theorem IV.1
//! inequalities are monotone in ε (larger ε is never harder — the
//! `larger_epsilon_never_harder` test in `priste-qp` pins this), so the
//! answer is a bisection over ε with the exact checker as the oracle.

use crate::{Result, TheoremInputs};
use priste_qp::{SolverConfig, TheoremChecker};

/// Result of an ε-capacity query.
#[derive(Debug, Clone, PartialEq)]
pub struct EpsilonCapacity {
    /// The smallest ε (within `tolerance`) for which the check certifies,
    /// or `None` if even `eps_max` fails.
    pub min_epsilon: Option<f64>,
    /// Bisection iterations used.
    pub iterations: usize,
}

/// Finds the smallest certifiable ε for one timestep's Theorem inputs by
/// bisection on `[eps_min, eps_max]`.
///
/// # Panics
/// Panics on a non-positive or inverted bracket (caller bug).
pub fn min_certifiable_epsilon(
    inputs: &TheoremInputs,
    eps_min: f64,
    eps_max: f64,
    tolerance: f64,
    solver: &SolverConfig,
) -> EpsilonCapacity {
    assert!(
        eps_min > 0.0 && eps_min < eps_max,
        "invalid bracket [{eps_min}, {eps_max}]"
    );
    assert!(tolerance > 0.0, "tolerance must be positive");

    let certifies = |eps: f64| {
        TheoremChecker::new(eps, solver.clone())
            .check(&inputs.a, &inputs.b, &inputs.c)
            .satisfied()
    };

    let mut iterations = 0;
    if !certifies(eps_max) {
        return EpsilonCapacity {
            min_epsilon: None,
            iterations: 1,
        };
    }
    if certifies(eps_min) {
        return EpsilonCapacity {
            min_epsilon: Some(eps_min),
            iterations: 2,
        };
    }
    let (mut lo, mut hi) = (eps_min, eps_max);
    while hi - lo > tolerance {
        iterations += 1;
        let mid = 0.5 * (lo + hi);
        if certifies(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
        if iterations > 200 {
            break; // numerical safety net; tolerance of any practical size converges long before
        }
    }
    EpsilonCapacity {
        min_epsilon: Some(hi),
        iterations,
    }
}

/// Sweeps a whole release sequence: the per-timestep minimal certifiable ε
/// for a fixed (uncalibrated) mechanism — the curve that tells a user where
/// in time their event is most exposed.
///
/// `emission_columns[i]` is the column released at timestep `i+1`; the
/// builder is advanced with the same columns.
///
/// # Errors
/// Propagates quantification errors from the builder.
pub fn epsilon_capacity_curve<P: priste_markov::TransitionProvider>(
    builder: &mut crate::TheoremBuilder<'_, P>,
    emission_columns: &[priste_linalg::Vector],
    eps_max: f64,
    solver: &SolverConfig,
) -> Result<Vec<EpsilonCapacity>> {
    let mut out = Vec::with_capacity(emission_columns.len());
    for col in emission_columns {
        let inputs = builder.candidate(col)?;
        out.push(min_certifiable_epsilon(
            &inputs, 1e-4, eps_max, 1e-3, solver,
        ));
        builder.commit(col.clone())?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TheoremBuilder;
    use priste_event::{Presence, StEvent};
    use priste_geo::{CellId, Region};
    use priste_linalg::Vector;
    use priste_markov::{Homogeneous, MarkovModel};

    fn setup() -> (StEvent, Homogeneous) {
        let ev: StEvent =
            Presence::new(Region::from_cells(3, [CellId(0), CellId(1)]).unwrap(), 2, 3)
                .unwrap()
                .into();
        (ev, Homogeneous::new(MarkovModel::paper_example()))
    }

    #[test]
    fn uninformative_columns_certify_tiny_epsilon() {
        let (ev, chain) = setup();
        let builder = TheoremBuilder::new(&ev, chain).unwrap();
        let flat = Vector::from(vec![1.0 / 3.0; 3]);
        let inputs = builder.candidate(&flat).unwrap();
        let cap = min_certifiable_epsilon(&inputs, 1e-4, 4.0, 1e-4, &SolverConfig::default());
        assert_eq!(
            cap.min_epsilon,
            Some(1e-4),
            "flat column should certify at the floor"
        );
    }

    #[test]
    fn informative_columns_need_more_epsilon() {
        let (ev, chain) = setup();
        let builder = TheoremBuilder::new(&ev, chain).unwrap();
        let mild = Vector::from(vec![0.4, 0.35, 0.25]);
        let sharp = Vector::from(vec![0.9, 0.05, 0.05]);
        let cfg = SolverConfig::default();
        let mild_eps =
            min_certifiable_epsilon(&builder.candidate(&mild).unwrap(), 1e-4, 8.0, 1e-4, &cfg)
                .min_epsilon
                .unwrap();
        let sharp_eps =
            min_certifiable_epsilon(&builder.candidate(&sharp).unwrap(), 1e-4, 8.0, 1e-4, &cfg)
                .min_epsilon
                .unwrap();
        assert!(
            sharp_eps > mild_eps + 0.05,
            "sharper evidence must need more ε: {sharp_eps} vs {mild_eps}"
        );
    }

    #[test]
    fn bisection_result_is_a_boundary() {
        // Just below the returned ε the check fails; at it, it certifies.
        let (ev, chain) = setup();
        let builder = TheoremBuilder::new(&ev, chain).unwrap();
        let col = Vector::from(vec![0.7, 0.2, 0.1]);
        let inputs = builder.candidate(&col).unwrap();
        let cfg = SolverConfig::default();
        let eps = min_certifiable_epsilon(&inputs, 1e-4, 8.0, 1e-5, &cfg)
            .min_epsilon
            .unwrap();
        let at = TheoremChecker::new(eps, cfg.clone()).check(&inputs.a, &inputs.b, &inputs.c);
        assert!(at.satisfied());
        let below =
            TheoremChecker::new((eps - 1e-3).max(1e-6), cfg).check(&inputs.a, &inputs.b, &inputs.c);
        assert!(!below.satisfied(), "ε − 0.001 should fail at the boundary");
    }

    #[test]
    fn capacity_curve_tracks_the_event_window() {
        let (ev, chain) = setup();
        let mut builder = TheoremBuilder::new(&ev, chain).unwrap();
        // Moderately informative columns at every step.
        let col = Vector::from(vec![0.5, 0.3, 0.2]);
        let cols = vec![col.clone(), col.clone(), col.clone(), col];
        let curve =
            epsilon_capacity_curve(&mut builder, &cols, 8.0, &SolverConfig::default()).unwrap();
        assert_eq!(curve.len(), 4);
        for c in &curve {
            assert!(c.min_epsilon.is_some());
        }
    }

    #[test]
    fn unreachable_bracket_reports_none() {
        let (ev, chain) = setup();
        let builder = TheoremBuilder::new(&ev, chain).unwrap();
        let sharp = Vector::from(vec![0.98, 0.01, 0.01]);
        let inputs = builder.candidate(&sharp).unwrap();
        // ε ≤ 1e-3 cannot absorb this column's evidence.
        let cap = min_certifiable_epsilon(&inputs, 1e-4, 1e-3, 1e-5, &SolverConfig::default());
        assert_eq!(cap.min_epsilon, None);
    }
}
