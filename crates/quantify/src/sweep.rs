//! ε-capacity analysis: the *smallest* ε a release sequence can certify.
//!
//! The framework answers "does this release satisfy a given ε?"; users
//! tuning a deployment usually ask the inverse — "what is the strongest
//! guarantee this mechanism can give for my event?". Both Theorem IV.1
//! inequalities are monotone in ε (larger ε is never harder — the
//! `larger_epsilon_never_harder` test in `priste-qp` pins this), so the
//! answer is a bisection over ε with the exact checker as the oracle.
//!
//! Two accelerations matter once capacities are queried in bulk (the
//! `priste-calibrate` planner bisects once per emission column per budget
//! rung):
//!
//! * **warm starts** — consecutive queries (adjacent timesteps, adjacent
//!   budgets) move the answer slowly, so seeding the bracket from the
//!   previous answer replaces the full `[eps_min, eps_max]` bisection with
//!   a few probes around the hint ([`min_certifiable_epsilon_warm`]);
//! * **threading** — independent bisections parallelize perfectly with
//!   `std::thread::scope`; [`min_certifiable_epsilons`] chunks a batch of
//!   [`TheoremInputs`] across a caller-chosen number of worker threads
//!   (the repo builds with vendored deps only, so no rayon — scoped
//!   threads are the whole machinery).

use crate::{Result, TheoremInputs};
use priste_qp::{SolverConfig, TheoremChecker};

/// Relative half-width of the initial warm-start window around a hint;
/// misses expand outward by doubling (exponential search).
const WARM_SLACK: f64 = 2e-3;

/// Hard cap on bisection iterations — a numerical safety net; any practical
/// tolerance converges long before.
const MAX_BISECTIONS: usize = 200;

/// Result of an ε-capacity query.
#[derive(Debug, Clone, PartialEq)]
pub struct EpsilonCapacity {
    /// The smallest ε (within `tolerance`) for which the check certifies,
    /// or `None` if even `eps_max` fails.
    pub min_epsilon: Option<f64>,
    /// Oracle calls (Theorem IV.1 checks) spent answering the query — the
    /// quantity warm starts shrink.
    pub iterations: usize,
    /// The final isolating bracket `(lo, hi)`: the check fails at `lo` and
    /// certifies at `hi`. Degenerate cases use sentinel bounds —
    /// `(0.0, eps_min)` when even `eps_min` certifies, `(eps_max, +∞)`
    /// when nothing in range does. Callers chain this (or `min_epsilon`)
    /// into the `warm` hint of the next query.
    pub bracket: (f64, f64),
}

/// Finds the smallest certifiable ε for one timestep's Theorem inputs by
/// bisection on `[eps_min, eps_max]`.
///
/// # Panics
/// Panics on a non-positive or inverted bracket (caller bug).
pub fn min_certifiable_epsilon(
    inputs: &TheoremInputs,
    eps_min: f64,
    eps_max: f64,
    tolerance: f64,
    solver: &SolverConfig,
) -> EpsilonCapacity {
    min_certifiable_epsilon_warm(inputs, eps_min, eps_max, tolerance, solver, None)
}

/// [`min_certifiable_epsilon`] with an optional warm-start hint — typically
/// the previous timestep's (or previous budget rung's, or a near-identical
/// sibling column's) answer.
///
/// The hint seeds a tight probe window around itself; if the boundary sits
/// inside, the bisection runs over that sliver instead of the full
/// `[eps_min, eps_max]` range. When the answer drifted, the window expands
/// *outward by doubling* (exponential search), so a hint at distance `d`
/// costs `O(log d)` extra probes and the final bisection still runs over a
/// bracket proportional to the drift — a stale hint degrades gracefully
/// toward the cold cost instead of falling off a cliff.
///
/// # Panics
/// Panics on a non-positive or inverted bracket, or a non-positive
/// tolerance (caller bug).
pub fn min_certifiable_epsilon_warm(
    inputs: &TheoremInputs,
    eps_min: f64,
    eps_max: f64,
    tolerance: f64,
    solver: &SolverConfig,
    warm: Option<f64>,
) -> EpsilonCapacity {
    assert!(
        eps_min > 0.0 && eps_min < eps_max,
        "invalid bracket [{eps_min}, {eps_max}]"
    );
    assert!(tolerance > 0.0, "tolerance must be positive");

    let mut calls = 0usize;
    let mut certifies = |eps: f64| {
        calls += 1;
        TheoremChecker::new(eps, solver.clone())
            .check(&inputs.a, &inputs.b, &inputs.c)
            .satisfied()
    };
    let floor_result = |calls: usize| EpsilonCapacity {
        min_epsilon: Some(eps_min),
        iterations: calls,
        bracket: (0.0, eps_min),
    };
    let unreachable_result = |calls: usize| EpsilonCapacity {
        min_epsilon: None,
        iterations: calls,
        bracket: (eps_max, f64::INFINITY),
    };

    // Establish an isolating bracket (lo fails, hi certifies), preferring
    // an exponential search around the hint when one is given.
    let hint = warm
        .filter(|w| w.is_finite() && *w > 0.0)
        .map(|w| w.clamp(eps_min, eps_max));
    let (mut lo, mut hi) = 'bracket: {
        let Some(w) = hint else {
            if !certifies(eps_max) {
                return unreachable_result(calls);
            }
            if certifies(eps_min) {
                return floor_result(calls);
            }
            break 'bracket (eps_min, eps_max);
        };
        let slack = (2.0 * tolerance).max(w * WARM_SLACK);
        let hi_probe = (w + slack).min(eps_max);
        let lo_probe = (w - slack).max(eps_min);
        if certifies(hi_probe) {
            if !certifies(lo_probe) {
                break 'bracket (lo_probe, hi_probe); // hint window isolates
            }
            // Boundary below the window: expand downward by doubling.
            let mut upper = lo_probe; // certifies
            let mut step = slack;
            loop {
                let next = (upper - step).max(eps_min);
                if next <= eps_min {
                    if certifies(eps_min) {
                        return floor_result(calls);
                    }
                    break 'bracket (eps_min, upper);
                }
                if !certifies(next) {
                    break 'bracket (next, upper);
                }
                upper = next;
                step *= 2.0;
            }
        } else {
            // Boundary above the window: expand upward by doubling.
            let mut lower = hi_probe; // fails
            let mut step = slack;
            loop {
                let next = (lower + step).min(eps_max);
                if next >= eps_max {
                    if !certifies(eps_max) {
                        return unreachable_result(calls);
                    }
                    break 'bracket (lower, eps_max);
                }
                if certifies(next) {
                    break 'bracket (lower, next);
                }
                lower = next;
                step *= 2.0;
            }
        }
    };

    let mut bisections = 0usize;
    while hi - lo > tolerance && bisections < MAX_BISECTIONS {
        bisections += 1;
        let mid = 0.5 * (lo + hi);
        if certifies(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    EpsilonCapacity {
        min_epsilon: Some(hi),
        iterations: calls,
        bracket: (lo, hi),
    }
}

/// Bulk ε-capacity: one bisection per [`TheoremInputs`], fanned out over
/// `threads` scoped worker threads (clamped to `[1, inputs.len()]`).
///
/// Within each worker the queries run in order and chain warm starts — the
/// first query of each chunk is seeded with `warm`. With `threads == 1`
/// this is exactly the sequential warm-chained scan, so single-threaded
/// callers pay nothing for the generality.
pub fn min_certifiable_epsilons(
    inputs: &[TheoremInputs],
    eps_min: f64,
    eps_max: f64,
    tolerance: f64,
    solver: &SolverConfig,
    threads: usize,
    warm: Option<f64>,
) -> Vec<EpsilonCapacity> {
    let scan = |chunk: &[TheoremInputs]| -> Vec<EpsilonCapacity> {
        let mut hint = warm;
        chunk
            .iter()
            .map(|inp| {
                let cap =
                    min_certifiable_epsilon_warm(inp, eps_min, eps_max, tolerance, solver, hint);
                // An off-scale answer resets the chain: the cold path
                // detects "still off-scale" in a single oracle call, which
                // no hint can beat.
                hint = cap.min_epsilon;
                cap
            })
            .collect()
    };

    let threads = threads.clamp(1, inputs.len().max(1));
    if threads == 1 {
        return scan(inputs);
    }
    let chunk_len = inputs.len().div_ceil(threads);
    let mut out = Vec::with_capacity(inputs.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || scan(chunk)))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("capacity worker panicked"));
        }
    });
    out
}

/// Sweeps a whole release sequence: the per-timestep minimal certifiable ε
/// for a fixed (uncalibrated) mechanism — the curve that tells a user where
/// in time their event is most exposed. Warm-starts each timestep from the
/// previous answer.
///
/// `emission_columns[i]` is the column released at timestep `i+1`; the
/// builder is advanced with the same columns.
///
/// # Errors
/// Propagates quantification errors from the builder.
pub fn epsilon_capacity_curve<P: priste_markov::TransitionProvider>(
    builder: &mut crate::TheoremBuilder<P>,
    emission_columns: &[priste_linalg::Vector],
    eps_max: f64,
    solver: &SolverConfig,
) -> Result<Vec<EpsilonCapacity>> {
    epsilon_capacity_curve_threaded(builder, emission_columns, eps_max, solver, 1)
}

/// [`epsilon_capacity_curve`] with a `threads` knob: the per-timestep
/// [`TheoremInputs`] are collected sequentially (the builder's recurrence
/// is inherently ordered and cheap next to the bisections), then the
/// bisections fan out via [`min_certifiable_epsilons`].
///
/// # Errors
/// Propagates quantification errors from the builder.
pub fn epsilon_capacity_curve_threaded<P: priste_markov::TransitionProvider>(
    builder: &mut crate::TheoremBuilder<P>,
    emission_columns: &[priste_linalg::Vector],
    eps_max: f64,
    solver: &SolverConfig,
    threads: usize,
) -> Result<Vec<EpsilonCapacity>> {
    let mut inputs = Vec::with_capacity(emission_columns.len());
    for col in emission_columns {
        inputs.push(builder.candidate(col)?);
        builder.commit(col.clone())?;
    }
    Ok(min_certifiable_epsilons(
        &inputs, 1e-4, eps_max, 1e-3, solver, threads, None,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TheoremBuilder;
    use priste_event::StEvent;
    use priste_linalg::Vector;
    use priste_markov::Homogeneous;

    fn setup() -> (StEvent, Homogeneous) {
        // Shared scaffolding: presence over the first two cells of the
        // paper's 3-state example, protected during timestamps 2–3.
        (
            priste_core::test_support::presence(3, 2, 2, 3),
            priste_core::test_support::paper_chain(),
        )
    }

    #[test]
    fn uninformative_columns_certify_tiny_epsilon() {
        let (ev, chain) = setup();
        let builder = TheoremBuilder::new(&ev, chain).unwrap();
        let flat = Vector::from(vec![1.0 / 3.0; 3]);
        let inputs = builder.candidate(&flat).unwrap();
        let cap = min_certifiable_epsilon(&inputs, 1e-4, 4.0, 1e-4, &SolverConfig::default());
        assert_eq!(
            cap.min_epsilon,
            Some(1e-4),
            "flat column should certify at the floor"
        );
        assert_eq!(cap.bracket, (0.0, 1e-4));
    }

    #[test]
    fn informative_columns_need_more_epsilon() {
        let (ev, chain) = setup();
        let builder = TheoremBuilder::new(&ev, chain).unwrap();
        let mild = Vector::from(vec![0.4, 0.35, 0.25]);
        let sharp = Vector::from(vec![0.9, 0.05, 0.05]);
        let cfg = SolverConfig::default();
        let mild_eps =
            min_certifiable_epsilon(&builder.candidate(&mild).unwrap(), 1e-4, 8.0, 1e-4, &cfg)
                .min_epsilon
                .unwrap();
        let sharp_eps =
            min_certifiable_epsilon(&builder.candidate(&sharp).unwrap(), 1e-4, 8.0, 1e-4, &cfg)
                .min_epsilon
                .unwrap();
        assert!(
            sharp_eps > mild_eps + 0.05,
            "sharper evidence must need more ε: {sharp_eps} vs {mild_eps}"
        );
    }

    #[test]
    fn bisection_result_is_a_boundary() {
        // Just below the returned ε the check fails; at it, it certifies.
        let (ev, chain) = setup();
        let builder = TheoremBuilder::new(&ev, chain).unwrap();
        let col = Vector::from(vec![0.7, 0.2, 0.1]);
        let inputs = builder.candidate(&col).unwrap();
        let cfg = SolverConfig::default();
        let cap = min_certifiable_epsilon(&inputs, 1e-4, 8.0, 1e-5, &cfg);
        let eps = cap.min_epsilon.unwrap();
        let at = TheoremChecker::new(eps, cfg.clone()).check(&inputs.a, &inputs.b, &inputs.c);
        assert!(at.satisfied());
        let below =
            TheoremChecker::new((eps - 1e-3).max(1e-6), cfg).check(&inputs.a, &inputs.b, &inputs.c);
        assert!(!below.satisfied(), "ε − 0.001 should fail at the boundary");
        let (lo, hi) = cap.bracket;
        assert!(lo < hi && hi == eps, "bracket must end at the answer");
        assert!(hi - lo <= 1e-5, "bracket must be within tolerance");
    }

    #[test]
    fn warm_start_matches_cold_and_spends_fewer_oracle_calls() {
        let (ev, chain) = setup();
        let builder = TheoremBuilder::new(&ev, chain).unwrap();
        let col = Vector::from(vec![0.7, 0.2, 0.1]);
        let inputs = builder.candidate(&col).unwrap();
        let cfg = SolverConfig::default();
        let cold = min_certifiable_epsilon(&inputs, 1e-4, 8.0, 1e-5, &cfg);
        let warm = min_certifiable_epsilon_warm(&inputs, 1e-4, 8.0, 1e-5, &cfg, cold.min_epsilon);
        assert!(
            (warm.min_epsilon.unwrap() - cold.min_epsilon.unwrap()).abs() <= 1e-5,
            "warm {warm:?} vs cold {cold:?}"
        );
        assert!(
            warm.iterations < cold.iterations,
            "a good hint must save oracle calls: warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn bad_warm_hints_still_converge() {
        let (ev, chain) = setup();
        let builder = TheoremBuilder::new(&ev, chain).unwrap();
        let col = Vector::from(vec![0.7, 0.2, 0.1]);
        let inputs = builder.candidate(&col).unwrap();
        let cfg = SolverConfig::default();
        let cold = min_certifiable_epsilon(&inputs, 1e-4, 8.0, 1e-5, &cfg)
            .min_epsilon
            .unwrap();
        for hint in [1e-4, 7.9, 1e9, -3.0, f64::NAN] {
            let warm = min_certifiable_epsilon_warm(&inputs, 1e-4, 8.0, 1e-5, &cfg, Some(hint));
            assert!(
                (warm.min_epsilon.unwrap() - cold).abs() <= 2e-5,
                "hint {hint}: {warm:?} vs cold {cold}"
            );
        }
    }

    #[test]
    fn capacity_curve_tracks_the_event_window() {
        let (ev, chain) = setup();
        let mut builder = TheoremBuilder::new(&ev, chain).unwrap();
        // Moderately informative columns at every step.
        let col = Vector::from(vec![0.5, 0.3, 0.2]);
        let cols = vec![col.clone(), col.clone(), col.clone(), col];
        let curve =
            epsilon_capacity_curve(&mut builder, &cols, 8.0, &SolverConfig::default()).unwrap();
        assert_eq!(curve.len(), 4);
        for c in &curve {
            assert!(c.min_epsilon.is_some());
        }
    }

    #[test]
    fn threaded_curve_matches_sequential() {
        let (ev, chain) = setup();
        let cols: Vec<Vector> = [
            vec![0.5, 0.3, 0.2],
            vec![0.7, 0.2, 0.1],
            vec![0.2, 0.6, 0.2],
            vec![0.4, 0.4, 0.2],
            vec![0.6, 0.1, 0.3],
        ]
        .into_iter()
        .map(Vector::from)
        .collect();
        let cfg = SolverConfig::default();
        let mut b1 = TheoremBuilder::new(&ev, chain.clone()).unwrap();
        let seq = epsilon_capacity_curve_threaded(&mut b1, &cols, 8.0, &cfg, 1).unwrap();
        let mut b2 = TheoremBuilder::new(&ev, chain).unwrap();
        let par = epsilon_capacity_curve_threaded(&mut b2, &cols, 8.0, &cfg, 3).unwrap();
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            match (s.min_epsilon, p.min_epsilon) {
                (Some(a), Some(b)) => assert!(
                    (a - b).abs() <= 2e-3,
                    "sequential {a} vs threaded {b} beyond tolerance"
                ),
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn unreachable_bracket_reports_none() {
        let (ev, chain) = setup();
        let builder = TheoremBuilder::new(&ev, chain).unwrap();
        let sharp = Vector::from(vec![0.98, 0.01, 0.01]);
        let inputs = builder.candidate(&sharp).unwrap();
        // ε ≤ 1e-3 cannot absorb this column's evidence.
        let cap = min_certifiable_epsilon(&inputs, 1e-4, 1e-3, 1e-5, &SolverConfig::default());
        assert_eq!(cap.min_epsilon, None);
        assert_eq!(cap.bracket, (1e-3, f64::INFINITY));
        // A warm hint cannot resurrect an unreachable bracket.
        let warm = min_certifiable_epsilon_warm(
            &inputs,
            1e-4,
            1e-3,
            1e-5,
            &SolverConfig::default(),
            Some(5e-4),
        );
        assert_eq!(warm.min_epsilon, None);
    }
}
