//! Structured two-possible-world transition steps (paper Eqs. (3)–(8)).
//!
//! The lifted state space doubles the map: indices `0..m` are the
//! EVENT-*false* world, `m..2m` the EVENT-*true* world (the paper's "top"
//! and "bottom" worlds of Figs. 4–5; `[π, 0]` starts all mass in the false
//! world, `[0, 1]ᵀ` sums the true world). Every lifted matrix is built from
//! `M` and a region diagonal, so applications decompose into a handful of
//! `m`-dimensional products — [`LiftedStep::apply_row`] and
//! [`LiftedStep::apply_col`] exploit that instead of materializing dense
//! `2m×2m` matrices. [`LiftedStep::to_dense`] materializes them anyway for
//! oracle tests.
//!
//! The base matrix is a backend-tagged [`TransitionMatrix`]: with a CSR
//! chain every application costs `O(nnz)` instead of `O(m²)`, which is what
//! lets the incremental quantifier and the streaming service run on
//! 10⁴-cell grids. The kernels write into preallocated buffers (no
//! `split_halves`/`concat` round-trips) and borrow the region's cached
//! indicator masks ([`Region::masks`]), so the steady-state per-observation
//! path performs no `O(m)` allocations beyond its output vector.

use priste_geo::Region;
use priste_linalg::{Matrix, Vector};
use priste_markov::TransitionMatrix;

/// One lifted transition step `M_t`, by shape.
#[derive(Debug, Clone)]
pub enum LiftedStep<'a> {
    /// Eq. (5)/(8): `[[M, 0], [0, M]]` — outside the event window both
    /// worlds evolve independently.
    BlockDiagonal {
        /// The base transition matrix.
        m: &'a TransitionMatrix,
    },
    /// Eq. (4)/(6): `[[M − M·s^D, M·s^D], [0, M]]` — transitions entering
    /// the region are re-directed from the false world into the true world
    /// (PRESENCE capture, and PATTERN's first step).
    Capture {
        /// The base transition matrix.
        m: &'a TransitionMatrix,
        /// The region whose entry flips the event true.
        region: &'a Region,
    },
    /// Eq. (7): `[[M, 0], [M − M·s^D, M·s^D]]` — inside a PATTERN window
    /// only transitions *staying* in the region sequence remain in the true
    /// world; all others fall back to the false world.
    Hold {
        /// The base transition matrix.
        m: &'a TransitionMatrix,
        /// The region required at the destination timestamp.
        region: &'a Region,
    },
}

impl LiftedStep<'_> {
    /// State-domain size `m` of the underlying map.
    pub fn base_states(&self) -> usize {
        match self {
            LiftedStep::BlockDiagonal { m }
            | LiftedStep::Capture { m, .. }
            | LiftedStep::Hold { m, .. } => m.rows(),
        }
    }

    /// The base transition matrix `M`.
    fn base(&self) -> &TransitionMatrix {
        match self {
            LiftedStep::BlockDiagonal { m }
            | LiftedStep::Capture { m, .. }
            | LiftedStep::Hold { m, .. } => m,
        }
    }

    /// Combines the moved halves `(u_f, u_t) = (x_f·M, x_t·M)` into the
    /// lifted output row for this step's shape — the shared tail of the
    /// single and batched row applications:
    ///
    /// * BlockDiagonal: `y = [u_f, u_t]`,
    /// * Capture: `y_f = u_f ∘ (1−s)`, `y_t = u_f ∘ s + u_t`,
    /// * Hold: `y_f = u_f + u_t ∘ (1−s)`, `y_t = u_t ∘ s`.
    ///
    /// Region masks are borrowed from the region's cache; `out` must not
    /// alias the inputs.
    fn combine_moved_into(&self, uf: &[f64], ut: &[f64], out: &mut [f64]) {
        let n = uf.len();
        let (out_f, out_t) = out.split_at_mut(n);
        match self {
            LiftedStep::BlockDiagonal { .. } => {
                out_f.copy_from_slice(uf);
                out_t.copy_from_slice(ut);
            }
            LiftedStep::Capture { region, .. } => {
                let (s, not_s) = region.masks();
                for i in 0..n {
                    out_f[i] = uf[i] * not_s[i];
                    out_t[i] = uf[i] * s[i] + ut[i];
                }
            }
            LiftedStep::Hold { region, .. } => {
                let (s, not_s) = region.masks();
                for i in 0..n {
                    out_f[i] = uf[i] + ut[i] * not_s[i];
                    out_t[i] = ut[i] * s[i];
                }
            }
        }
    }

    /// One row application written into caller-provided storage: moves both
    /// halves of `x` through `M` (into the `buf_*` scratch slices, each of
    /// length `m`) and recombines into `out` (length `2m`).
    fn apply_row_into(&self, x: &[f64], buf_f: &mut [f64], buf_t: &mut [f64], out: &mut [f64]) {
        let n = self.base_states();
        let m = self.base();
        m.vecmat_into(&x[..n], buf_f);
        m.vecmat_into(&x[n..], buf_t);
        self.combine_moved_into(buf_f, buf_t, out);
    }

    /// Row-vector application `x · M_t` for a lifted row vector
    /// `x = [x_false, x_true]` of length `2m` — the forward orientation of
    /// Lemma III.1/III.2 products. (Capture: `y_f = x_f·(M − M·s^D)`,
    /// `y_t = x_f·M·s^D + x_t·M`; Hold mirrored — the two event modes
    /// share one private recombination helper.)
    ///
    /// # Panics
    /// Panics if `x.len() != 2m`.
    pub fn apply_row(&self, x: &Vector) -> Vector {
        let n = self.base_states();
        assert_eq!(x.len(), 2 * n, "lifted row vector length mismatch");
        let mut buf_f = vec![0.0; n];
        let mut buf_t = vec![0.0; n];
        let mut out = vec![0.0; 2 * n];
        self.apply_row_into(x.as_slice(), &mut buf_f, &mut buf_t, &mut out);
        Vector::from(out)
    }

    /// Batched row application: `xs[i] · M_t` for many lifted row vectors at
    /// once — the streaming service's "one shared step per timestep" path.
    /// Each vector's halves are pushed through `M` into two reused scratch
    /// buffers and recombined directly into that vector's output storage:
    /// per batch the only allocations are the `k` output vectors themselves
    /// (no half-splitting copies, no stacked intermediate matrices).
    /// Equivalent to mapping [`LiftedStep::apply_row`].
    ///
    /// # Panics
    /// Panics if any input has length `!= 2m`.
    pub fn apply_rows(&self, xs: &[Vector]) -> Vec<Vector> {
        let n = self.base_states();
        if xs.is_empty() {
            return Vec::new();
        }
        let mut buf_f = vec![0.0; n];
        let mut buf_t = vec![0.0; n];
        xs.iter()
            .map(|x| {
                assert_eq!(x.len(), 2 * n, "lifted row vector length mismatch");
                let mut out = vec![0.0; 2 * n];
                self.apply_row_into(x.as_slice(), &mut buf_f, &mut buf_t, &mut out);
                Vector::from(out)
            })
            .collect()
    }

    /// Column-vector application `M_t · v` for a lifted column vector of
    /// length `2m` — the suffix-product orientation of Lemma III.1's
    /// `∏ M_i [0,1]ᵀ` and the right-to-left chains of Theorem IV.1.
    ///
    /// # Panics
    /// Panics if `v.len() != 2m`.
    pub fn apply_col(&self, v: &Vector) -> Vector {
        let n = self.base_states();
        assert_eq!(v.len(), 2 * n, "lifted column vector length mismatch");
        let (vf, vt) = v.as_slice().split_at(n);
        let mut out = vec![0.0; 2 * n];
        let (out_f, out_t) = out.split_at_mut(n);
        match self {
            LiftedStep::BlockDiagonal { m } => {
                m.matvec_into(vf, out_f);
                m.matvec_into(vt, out_t);
            }
            LiftedStep::Capture { m, region } => {
                // row_f = (M − Ms^D)v_f + Ms^D v_t = M·(v_f∘(1−s) + v_t∘s)
                // row_t = M·v_t
                let (s, not_s) = region.masks();
                let mixed: Vec<f64> = (0..n).map(|i| vf[i] * not_s[i] + vt[i] * s[i]).collect();
                m.matvec_into(&mixed, out_f);
                m.matvec_into(vt, out_t);
            }
            LiftedStep::Hold { m, region } => {
                // row_f = M·v_f
                // row_t = (M − Ms^D)v_f + Ms^D v_t = M·(v_f∘(1−s) + v_t∘s)
                let (s, not_s) = region.masks();
                let mixed: Vec<f64> = (0..n).map(|i| vf[i] * not_s[i] + vt[i] * s[i]).collect();
                m.matvec_into(vf, out_f);
                m.matvec_into(&mixed, out_t);
            }
        }
        Vector::from(out)
    }

    /// Materializes the dense `2m×2m` matrix (paper Eqs. (4)–(8) verbatim).
    /// Test/diagnostic path — production code uses the structured
    /// applications. Sparse-backed steps densify their base first.
    pub fn to_dense(&self) -> Matrix {
        let n = self.base_states();
        let zero = Matrix::zeros(n, n);
        let base = self.base().to_dense_matrix();
        match self {
            LiftedStep::BlockDiagonal { .. } => {
                Matrix::from_blocks(&base, &zero, &zero, &base).expect("blocks are square")
            }
            LiftedStep::Capture { region, .. } => {
                let msd = base
                    .scale_cols(&region.indicator())
                    .expect("diag length matches");
                let tl = base.sub(&msd).expect("shapes match");
                Matrix::from_blocks(&tl, &msd, &zero, &base).expect("blocks are square")
            }
            LiftedStep::Hold { region, .. } => {
                let msd = base
                    .scale_cols(&region.indicator())
                    .expect("diag length matches");
                let bl = base.sub(&msd).expect("shapes match");
                Matrix::from_blocks(&base, &zero, &bl, &msd).expect("blocks are square")
            }
        }
    }
}

/// Lifts an emission column to the doubled space: observations are emitted
/// identically in both worlds (§III.C: "the emission probability … is
/// independent from any EVENTS"), so the lifted diagonal is `[e, e]`.
pub fn lift_emission(e: &Vector) -> Vector {
    e.concat(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use priste_geo::CellId;
    use priste_linalg::SparseMatrix;

    fn m3() -> TransitionMatrix {
        // Paper Example III.1 Eq. (2).
        TransitionMatrix::Dense(
            Matrix::from_rows(&[
                vec![0.1, 0.2, 0.7],
                vec![0.4, 0.1, 0.5],
                vec![0.0, 0.1, 0.9],
            ])
            .unwrap(),
        )
    }

    fn m3_sparse() -> TransitionMatrix {
        TransitionMatrix::Sparse(SparseMatrix::from_dense(
            m3().as_dense().expect("dense fixture"),
            0.0,
        ))
    }

    fn region12() -> Region {
        Region::from_cells(3, [CellId(0), CellId(1)]).unwrap()
    }

    #[test]
    fn capture_dense_matches_paper_example_c1() {
        // Example C.1 prints M2/M3 (capture, left) and M1/M4/M5 (diagonal).
        let m = m3();
        let r = region12();
        let capture = LiftedStep::Capture { m: &m, region: &r }.to_dense();
        let expected = Matrix::from_rows(&[
            vec![0.0, 0.0, 0.7, 0.1, 0.2, 0.0],
            vec![0.0, 0.0, 0.5, 0.4, 0.1, 0.0],
            vec![0.0, 0.0, 0.9, 0.0, 0.1, 0.0],
            vec![0.0, 0.0, 0.0, 0.1, 0.2, 0.7],
            vec![0.0, 0.0, 0.0, 0.4, 0.1, 0.5],
            vec![0.0, 0.0, 0.0, 0.0, 0.1, 0.9],
        ])
        .unwrap();
        assert!(capture.max_abs_diff(&expected) < 1e-15);

        let diag = LiftedStep::BlockDiagonal { m: &m }.to_dense();
        let expected_diag = Matrix::from_rows(&[
            vec![0.1, 0.2, 0.7, 0.0, 0.0, 0.0],
            vec![0.4, 0.1, 0.5, 0.0, 0.0, 0.0],
            vec![0.0, 0.1, 0.9, 0.0, 0.0, 0.0],
            vec![0.0, 0.0, 0.0, 0.1, 0.2, 0.7],
            vec![0.0, 0.0, 0.0, 0.4, 0.1, 0.5],
            vec![0.0, 0.0, 0.0, 0.0, 0.1, 0.9],
        ])
        .unwrap();
        assert!(diag.max_abs_diff(&expected_diag) < 1e-15);
    }

    #[test]
    fn all_shapes_stay_row_stochastic() {
        let m = m3();
        let r = region12();
        for step in [
            LiftedStep::BlockDiagonal { m: &m },
            LiftedStep::Capture { m: &m, region: &r },
            LiftedStep::Hold { m: &m, region: &r },
        ] {
            step.to_dense().validate_stochastic().unwrap();
        }
    }

    #[test]
    fn structured_row_application_matches_dense() {
        let r = region12();
        let x = Vector::from(vec![0.1, 0.2, 0.3, 0.05, 0.15, 0.2]);
        for m in [m3(), m3_sparse()] {
            for step in [
                LiftedStep::BlockDiagonal { m: &m },
                LiftedStep::Capture { m: &m, region: &r },
                LiftedStep::Hold { m: &m, region: &r },
            ] {
                let fast = step.apply_row(&x);
                let dense = step.to_dense().vecmat(&x);
                assert!(fast.max_abs_diff(&dense) < 1e-14, "shape {step:?}");
            }
        }
    }

    #[test]
    fn batched_row_application_matches_singles() {
        let r = region12();
        let xs = vec![
            Vector::from(vec![0.1, 0.2, 0.3, 0.05, 0.15, 0.2]),
            Vector::from(vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0]),
            Vector::from(vec![0.3, 0.1, 0.0, 0.2, 0.2, 0.2]),
        ];
        for m in [m3(), m3_sparse()] {
            for step in [
                LiftedStep::BlockDiagonal { m: &m },
                LiftedStep::Capture { m: &m, region: &r },
                LiftedStep::Hold { m: &m, region: &r },
            ] {
                let batched = step.apply_rows(&xs);
                assert_eq!(batched.len(), xs.len());
                for (x, y) in xs.iter().zip(&batched) {
                    let single = step.apply_row(x);
                    assert!(y.max_abs_diff(&single) < 1e-14, "shape {step:?}");
                }
                assert!(step.apply_rows(&[]).is_empty());
            }
        }
    }

    #[test]
    fn structured_col_application_matches_dense() {
        let r = region12();
        let v = Vector::from(vec![0.3, 0.1, 0.9, 1.0, 0.0, 0.5]);
        for m in [m3(), m3_sparse()] {
            for step in [
                LiftedStep::BlockDiagonal { m: &m },
                LiftedStep::Capture { m: &m, region: &r },
                LiftedStep::Hold { m: &m, region: &r },
            ] {
                let fast = step.apply_col(&v);
                let dense = step.to_dense().matvec(&v);
                assert!(fast.max_abs_diff(&dense) < 1e-14, "shape {step:?}");
            }
        }
    }

    #[test]
    fn sparse_and_dense_backends_agree_bitwise() {
        let dense = m3();
        let sparse = m3_sparse();
        let r = region12();
        let x = Vector::from(vec![0.1, 0.2, 0.3, 0.05, 0.15, 0.2]);
        for (d, s) in [
            (
                LiftedStep::Capture {
                    m: &dense,
                    region: &r,
                },
                LiftedStep::Capture {
                    m: &sparse,
                    region: &r,
                },
            ),
            (
                LiftedStep::Hold {
                    m: &dense,
                    region: &r,
                },
                LiftedStep::Hold {
                    m: &sparse,
                    region: &r,
                },
            ),
        ] {
            assert_eq!(d.apply_row(&x).as_slice(), s.apply_row(&x).as_slice());
            assert_eq!(d.apply_col(&x).as_slice(), s.apply_col(&x).as_slice());
        }
    }

    #[test]
    fn capture_redirects_mass_into_true_world() {
        let m = m3();
        let r = region12();
        let step = LiftedStep::Capture { m: &m, region: &r };
        // All mass on s3, false world. After one step, transitions into
        // {s1, s2} (prob 0 + 0.1) land in the true world.
        let x = Vector::from(vec![0.0, 0.0, 1.0, 0.0, 0.0, 0.0]);
        let y = step.apply_row(&x);
        let (yf, yt) = y.split_halves();
        assert!((yt.sum() - 0.1).abs() < 1e-12);
        assert!((yf.sum() - 0.9).abs() < 1e-12);
        // True-world mass never returns to false world under capture.
        let x_true = Vector::from(vec![0.0, 0.0, 0.0, 0.0, 0.0, 1.0]);
        let (yf2, yt2) = step.apply_row(&x_true).split_halves();
        assert_eq!(yf2.sum(), 0.0);
        assert!((yt2.sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hold_drops_mass_leaving_the_region() {
        let m = m3();
        let r = region12();
        let step = LiftedStep::Hold { m: &m, region: &r };
        // True-world mass on s2: transitions to s3 (0.5) fall back to the
        // false world, transitions to {s1,s2} (0.4 + 0.1) stay true.
        let x = Vector::from(vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
        let (yf, yt) = step.apply_row(&x).split_halves();
        assert!((yt.sum() - 0.5).abs() < 1e-12);
        assert!((yf.sum() - 0.5).abs() < 1e-12);
        // False-world mass can never (re-)enter the true world under hold.
        let xf = Vector::from(vec![0.3, 0.3, 0.4, 0.0, 0.0, 0.0]);
        let (_, yt2) = step.apply_row(&xf).split_halves();
        assert_eq!(yt2.sum(), 0.0);
    }

    #[test]
    fn lift_emission_duplicates() {
        let e = Vector::from(vec![0.5, 0.2, 0.3]);
        assert_eq!(
            lift_emission(&e).as_slice(),
            &[0.5, 0.2, 0.3, 0.5, 0.2, 0.3]
        );
    }
}
