//! §III quantification for a *known* initial distribution.
//!
//! Section III computes the conditional likelihoods
//! `Pr(o_1..o_t | EVENT)` and `Pr(o_1..o_t | ¬EVENT)` for a specified `π`;
//! §IV then generalizes to arbitrary `π` via Theorem IV.1. This module is
//! the fixed-`π` face: a tracker that follows a release sequence and reports
//! the realized privacy loss `|ln ratio|` at every step, used by examples,
//! post-hoc verification in integration tests, and the experiment harness's
//! sanity checks.

use crate::{QuantifyError, Result, TheoremBuilder};
use priste_event::StEvent;
use priste_linalg::Vector;
use priste_markov::TransitionProvider;

/// Step-by-step privacy-loss quantifier for a fixed initial distribution.
#[derive(Debug)]
pub struct FixedPiQuantifier<P> {
    builder: TheoremBuilder<P>,
    pi: Vector,
}

/// One step's quantification output.
#[derive(Debug, Clone, PartialEq)]
pub struct StepQuantification {
    /// Timestep `t` (1-based).
    pub t: usize,
    /// `Pr(EVENT)` — constant over time for a fixed model and `π`.
    pub prior: f64,
    /// `ln Pr(o_1..o_t | EVENT)`.
    pub log_likelihood_event: f64,
    /// `ln Pr(o_1..o_t | ¬EVENT)`.
    pub log_likelihood_not_event: f64,
    /// Realized two-sided privacy loss `|ln ratio|` — the smallest ε for
    /// which Definition II.4's inequality holds at this step under this `π`.
    pub privacy_loss: f64,
}

impl<P: TransitionProvider> FixedPiQuantifier<P> {
    /// Couples an event, a transition source and a fixed `π`.
    ///
    /// # Errors
    /// Domain checks from [`TheoremBuilder::new`];
    /// [`QuantifyError::InvalidInitial`] for a bad `π`;
    /// [`QuantifyError::DegeneratePrior`] when `Pr(EVENT) ∈ {0, 1}` under
    /// `π` (no ratio to bound).
    pub fn new(event: &StEvent, provider: P, pi: Vector) -> Result<Self> {
        pi.validate_distribution()
            .map_err(QuantifyError::InvalidInitial)?;
        let builder = TheoremBuilder::new(event, provider)?;
        let prior = pi.dot(builder.a()).expect("validated length");
        if !(prior > 0.0 && prior < 1.0) {
            return Err(QuantifyError::DegeneratePrior { prior });
        }
        Ok(FixedPiQuantifier { builder, pi })
    }

    /// The fixed initial distribution.
    pub fn pi(&self) -> &Vector {
        &self.pi
    }

    /// `Pr(EVENT)` under the fixed `π`.
    pub fn prior(&self) -> f64 {
        self.pi.dot(self.builder.a()).expect("validated length")
    }

    /// Quantifies the privacy loss of releasing an observation with emission
    /// column `p̃_o` at the next timestep, *without* advancing the tracker.
    ///
    /// # Errors
    /// Emission validation from [`TheoremBuilder::candidate`]; degenerate
    /// likelihoods as [`QuantifyError::DegeneratePrior`].
    pub fn peek(&self, emission_column: &Vector) -> Result<StepQuantification> {
        let inputs = self.builder.candidate(emission_column)?;
        let prior = inputs.prior(&self.pi);
        let log_joint_e = inputs.log_joint_event(&self.pi);
        let log_joint_all = inputs.log_joint_total(&self.pi);
        let joint_not = self.pi.dot(&inputs.c).expect("validated length")
            - self.pi.dot(&inputs.b).expect("validated length");
        if !log_joint_e.is_finite() || joint_not <= 0.0 {
            return Err(QuantifyError::DegeneratePrior { prior });
        }
        let log_like_e = log_joint_e - prior.ln();
        let log_like_not = joint_not.ln() + inputs.bc_log_scale - (1.0 - prior).ln();
        let _ = log_joint_all;
        Ok(StepQuantification {
            t: inputs.t,
            prior,
            log_likelihood_event: log_like_e,
            log_likelihood_not_event: log_like_not,
            privacy_loss: (log_like_e - log_like_not).abs(),
        })
    }

    /// Quantifies and advances past the released observation.
    ///
    /// # Errors
    /// See [`FixedPiQuantifier::peek`].
    pub fn observe(&mut self, emission_column: &Vector) -> Result<StepQuantification> {
        let q = self.peek(emission_column)?;
        self.builder.commit(emission_column.clone())?;
        Ok(q)
    }

    /// Number of observations consumed so far.
    pub fn observed(&self) -> usize {
        self.builder.committed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use priste_event::Presence;
    use priste_geo::{CellId, Region};
    use priste_markov::{Homogeneous, MarkovModel};

    fn region(num_cells: usize, ids: &[usize]) -> Region {
        Region::from_cells(num_cells, ids.iter().map(|&i| CellId(i))).unwrap()
    }

    fn chain() -> Homogeneous {
        Homogeneous::new(MarkovModel::paper_example())
    }

    #[test]
    fn likelihoods_match_naive_enumeration() {
        let ev: StEvent = Presence::new(region(3, &[0, 1]), 2, 3).unwrap().into();
        let pi = Vector::from(vec![0.5, 0.3, 0.2]);
        let mut q = FixedPiQuantifier::new(&ev, chain(), pi.clone()).unwrap();
        let e1 = Vector::from(vec![0.7, 0.2, 0.1]);
        let e2 = Vector::from(vec![0.1, 0.8, 0.1]);
        let e3 = Vector::from(vec![0.3, 0.3, 0.4]);
        let emissions = [e1, e2, e3];
        let prior = naive::prior(&ev, &chain(), &pi, 1 << 20).unwrap();
        for t in 1..=3 {
            let step = q.observe(&emissions[t - 1]).unwrap();
            let joint_e = naive::joint(&ev, &chain(), &pi, &emissions[..t], 1 << 20).unwrap();
            // ln Pr(o|E) = ln Pr(o,E) − ln Pr(E).
            let expect_like_e = joint_e.ln() - prior.ln();
            assert!(
                (step.log_likelihood_event - expect_like_e).abs() < 1e-9,
                "t={t}: {} vs {}",
                step.log_likelihood_event,
                expect_like_e
            );
            assert!((step.prior - prior).abs() < 1e-12);
            assert!(step.privacy_loss.is_finite());
        }
    }

    #[test]
    fn peek_does_not_advance() {
        let ev: StEvent = Presence::new(region(3, &[0]), 2, 2).unwrap().into();
        let mut q = FixedPiQuantifier::new(&ev, chain(), Vector::uniform(3)).unwrap();
        let e = Vector::from(vec![0.5, 0.25, 0.25]);
        let p1 = q.peek(&e).unwrap();
        let p2 = q.peek(&e).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(q.observed(), 0);
        q.observe(&e).unwrap();
        assert_eq!(q.observed(), 1);
    }

    #[test]
    fn degenerate_prior_is_rejected_at_construction() {
        let ev: StEvent = Presence::new(region(3, &[0]), 2, 2).unwrap().into();
        // From s3 the chain cannot reach s1 in one step: prior = 0.
        let pi = Vector::from(vec![0.0, 0.0, 1.0]);
        assert!(matches!(
            FixedPiQuantifier::new(&ev, chain(), pi),
            Err(QuantifyError::DegeneratePrior { .. })
        ));
    }

    #[test]
    fn uninformative_stream_has_zero_loss() {
        let ev: StEvent = Presence::new(region(3, &[0, 1]), 3, 4).unwrap().into();
        let mut q = FixedPiQuantifier::new(&ev, chain(), Vector::uniform(3)).unwrap();
        let flat = Vector::from(vec![1.0 / 3.0; 3]);
        for _ in 0..6 {
            let step = q.observe(&flat).unwrap();
            assert!(step.privacy_loss < 1e-10);
        }
    }
}
