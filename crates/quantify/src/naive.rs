//! Naive exponential baselines (paper Appendix B).
//!
//! "A naive approach would be to enumerate all possible cases for the event
//! and sum (correspond to OR) the product (correspond to AND) of the
//! probabilities of each location predicate and such an approach would
//! require exponential computation time."
//!
//! These implementations serve two purposes: the *correctness oracle* for
//! the two-possible-world engine on small worlds, and the baseline whose
//! runtime Fig. 14 compares against (exponential in event length/width,
//! versus PriSTE's linear/polynomial behaviour).

use crate::{QuantifyError, Result};
use priste_event::{EventExpr, Pattern, StEvent};
use priste_linalg::Vector;
use priste_markov::TransitionProvider;

/// Hard cap on enumerated trajectories; computations that would exceed it
/// fail fast with [`QuantifyError::EnumerationTooLarge`] instead of hanging.
pub const DEFAULT_ENUMERATION_LIMIT: u128 = 50_000_000;

/// Prior probability of an arbitrary Boolean event by full enumeration over
/// `m^horizon` trajectories, where `horizon` is the largest timestamp the
/// expression references.
///
/// # Errors
/// * [`QuantifyError::EnumerationTooLarge`] if `m^horizon > limit`.
/// * [`QuantifyError::InvalidInitial`] for a bad `π`.
pub fn prior_expr<P: TransitionProvider>(
    expr: &EventExpr,
    provider: &P,
    pi: &Vector,
    limit: u128,
) -> Result<f64> {
    let horizon = expr.time_span().map(|(_, max)| max).unwrap_or(1);
    joint_enumerate(provider, pi, &[], horizon, limit, |traj| {
        expr.eval(traj)
            .expect("trajectory spans the expression horizon")
    })
}

/// Prior probability of a structured event by full enumeration.
///
/// # Errors
/// See [`prior_expr`].
pub fn prior<P: TransitionProvider>(
    event: &StEvent,
    provider: &P,
    pi: &Vector,
    limit: u128,
) -> Result<f64> {
    joint_enumerate(provider, pi, &[], event.end(), limit, |traj| {
        event.eval(traj).expect("trajectory spans the event window")
    })
}

/// Joint probability `Pr(EVENT, o_1, …, o_t)` by full enumeration, where
/// `emissions[i]` is the emission column `p̃_{o_{i+1}}`.
///
/// # Errors
/// See [`prior_expr`]; additionally [`QuantifyError::InvalidEmission`] for
/// wrong-length columns.
pub fn joint<P: TransitionProvider>(
    event: &StEvent,
    provider: &P,
    pi: &Vector,
    emissions: &[Vector],
    limit: u128,
) -> Result<f64> {
    let m = provider.num_states();
    for e in emissions {
        if e.len() != m {
            return Err(QuantifyError::InvalidEmission {
                expected: m,
                actual: e.len(),
            });
        }
    }
    let horizon = event.end().max(emissions.len());
    joint_enumerate(provider, pi, emissions, horizon, limit, |traj| {
        event.eval(traj).expect("trajectory spans the event window")
    })
}

/// Core enumeration: sums `π(u_1)·∏ M(u_i, u_{i+1})·∏ p̃(u_i)` over all
/// trajectories of length `horizon` satisfying `keep`.
fn joint_enumerate<P: TransitionProvider>(
    provider: &P,
    pi: &Vector,
    emissions: &[Vector],
    horizon: usize,
    limit: u128,
    keep: impl Fn(&[priste_geo::CellId]) -> bool,
) -> Result<f64> {
    let m = provider.num_states();
    if pi.len() != m {
        return Err(QuantifyError::InvalidInitial(
            priste_linalg::LinalgError::DimensionMismatch {
                op: "naive enumeration initial",
                expected: m,
                actual: pi.len(),
            },
        ));
    }
    pi.validate_distribution()
        .map_err(QuantifyError::InvalidInitial)?;
    let count = (m as u128).checked_pow(horizon as u32).unwrap_or(u128::MAX);
    if count > limit {
        return Err(QuantifyError::EnumerationTooLarge {
            trajectories: count,
            limit,
        });
    }

    let mut traj = vec![priste_geo::CellId(0); horizon];
    let mut total = 0.0;
    let mut odometer = vec![0usize; horizon];
    loop {
        for (slot, &s) in traj.iter_mut().zip(&odometer) {
            *slot = priste_geo::CellId(s);
        }
        if keep(&traj) {
            let mut p = pi[odometer[0]];
            if let Some(e) = emissions.first() {
                p *= e[odometer[0]];
            }
            for i in 1..horizon {
                if p == 0.0 {
                    break;
                }
                p *= provider.transition_at(i).get(odometer[i - 1], odometer[i]);
                if let Some(e) = emissions.get(i) {
                    p *= e[odometer[i]];
                }
            }
            total += p;
        }
        // Increment the odometer.
        let mut k = horizon;
        loop {
            if k == 0 {
                return Ok(total);
            }
            k -= 1;
            odometer[k] += 1;
            if odometer[k] < m {
                break;
            }
            odometer[k] = 0;
        }
    }
}

/// Paper Algorithm 4: the PATTERN-specific baseline that enumerates only
/// region-constrained trajectories (`∏_t |s_t|` of them) and computes
/// `Pr(PATTERN, o_start, …, o_end)` — the joint of the pattern with the
/// observations *inside its window*. `window_emissions[k]` is the emission
/// column at timestamp `start + k`; it must cover the whole window.
///
/// # Errors
/// * [`QuantifyError::EnumerationTooLarge`] if `∏|s_t| > limit`.
/// * [`QuantifyError::InvalidEmission`] if the emission list does not match
///   the window.
pub fn pattern_joint_algorithm4<P: TransitionProvider>(
    pattern: &Pattern,
    provider: &P,
    pi: &Vector,
    window_emissions: &[Vector],
    limit: u128,
) -> Result<f64> {
    let m = provider.num_states();
    if window_emissions.len() != pattern.window_len() {
        return Err(QuantifyError::InvalidEmission {
            expected: pattern.window_len(),
            actual: window_emissions.len(),
        });
    }
    for e in window_emissions {
        if e.len() != m {
            return Err(QuantifyError::InvalidEmission {
                expected: m,
                actual: e.len(),
            });
        }
    }
    pi.validate_distribution()
        .map_err(QuantifyError::InvalidInitial)?;

    let cells_per_step: Vec<Vec<usize>> = pattern
        .regions()
        .iter()
        .map(|r| r.iter().map(|c| c.index()).collect())
        .collect();
    let count = cells_per_step
        .iter()
        .fold(1u128, |acc, c| acc.saturating_mul(c.len() as u128));
    if count > limit {
        return Err(QuantifyError::EnumerationTooLarge {
            trajectories: count,
            limit,
        });
    }

    // p_{start−1}·M marginal at the window opening (Algorithm 4's setup).
    let mut p_open = pi.clone();
    for t in 1..pattern.start() {
        p_open = provider.transition_at(t).vecmat(&p_open);
    }

    let window = pattern.window_len();
    let mut idx = vec![0usize; window];
    let mut total = 0.0;
    loop {
        // ptraj ← p_open[u_start] · p̃_{o_start}[u_start] · ∏ m·p̃.
        let u0 = cells_per_step[0][idx[0]];
        let mut p = p_open[u0] * window_emissions[0][u0];
        for k in 1..window {
            if p == 0.0 {
                break;
            }
            let prev = cells_per_step[k - 1][idx[k - 1]];
            let cur = cells_per_step[k][idx[k]];
            let t = pattern.start() + k - 1; // transition t → t+1
            p *= provider.transition_at(t).get(prev, cur) * window_emissions[k][cur];
        }
        total += p;

        let mut k = window;
        loop {
            if k == 0 {
                return Ok(total);
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < cells_per_step[k].len() {
                break;
            }
            idx[k] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priste_event::Presence;
    use priste_geo::{CellId, Region};
    use priste_markov::{Homogeneous, MarkovModel};

    fn region(num_cells: usize, ids: &[usize]) -> Region {
        Region::from_cells(num_cells, ids.iter().map(|&i| CellId(i))).unwrap()
    }

    fn chain() -> Homogeneous {
        Homogeneous::new(MarkovModel::paper_example())
    }

    #[test]
    fn naive_prior_matches_example_c1() {
        let ev: StEvent = Presence::new(region(3, &[0, 1]), 3, 4).unwrap().into();
        let pi = Vector::from(vec![0.2, 0.3, 0.5]);
        let expected = pi.dot(&Vector::from(vec![0.28, 0.298, 0.226])).unwrap();
        let got = prior(&ev, &chain(), &pi, DEFAULT_ENUMERATION_LIMIT).unwrap();
        assert!((got - expected).abs() < 1e-12);
    }

    #[test]
    fn prior_expr_agrees_with_structured_prior() {
        let ev: StEvent = Presence::new(region(3, &[0, 1]), 2, 3).unwrap().into();
        let pi = Vector::uniform(3);
        let a = prior(&ev, &chain(), &pi, DEFAULT_ENUMERATION_LIMIT).unwrap();
        let b = prior_expr(&ev.to_expr(), &chain(), &pi, DEFAULT_ENUMERATION_LIMIT).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn enumeration_limit_fires() {
        let ev: StEvent = Presence::new(region(3, &[0]), 1, 10).unwrap().into();
        let pi = Vector::uniform(3);
        // 3^10 = 59049 > 1000.
        assert!(matches!(
            prior(&ev, &chain(), &pi, 1000),
            Err(QuantifyError::EnumerationTooLarge { .. })
        ));
    }

    #[test]
    fn joint_with_empty_observations_is_prior() {
        let ev: StEvent = Presence::new(region(3, &[1]), 2, 3).unwrap().into();
        let pi = Vector::from(vec![0.5, 0.25, 0.25]);
        let p = prior(&ev, &chain(), &pi, DEFAULT_ENUMERATION_LIMIT).unwrap();
        let j = joint(&ev, &chain(), &pi, &[], DEFAULT_ENUMERATION_LIMIT).unwrap();
        assert!((p - j).abs() < 1e-12);
    }

    #[test]
    fn joint_decreases_with_more_observations() {
        let ev: StEvent = Presence::new(region(3, &[1]), 2, 3).unwrap().into();
        let pi = Vector::uniform(3);
        let e = Vector::from(vec![0.5, 0.3, 0.2]);
        let j1 = joint(
            &ev,
            &chain(),
            &pi,
            std::slice::from_ref(&e),
            DEFAULT_ENUMERATION_LIMIT,
        )
        .unwrap();
        let j2 = joint(
            &ev,
            &chain(),
            &pi,
            &[e.clone(), e.clone()],
            DEFAULT_ENUMERATION_LIMIT,
        )
        .unwrap();
        assert!(j2 < j1);
        assert!(j1 > 0.0);
    }

    #[test]
    fn algorithm4_matches_general_enumeration() {
        // PATTERN window 2..3; general joint with all-ones emissions before
        // the window equals Algorithm 4's window-restricted sum.
        let pattern = Pattern::new(vec![region(3, &[0, 1]), region(3, &[1, 2])], 2).unwrap();
        let ev: StEvent = pattern.clone().into();
        let pi = Vector::from(vec![0.3, 0.3, 0.4]);
        let e2 = Vector::from(vec![0.6, 0.3, 0.1]);
        let e3 = Vector::from(vec![0.2, 0.2, 0.6]);
        let ones = Vector::ones(3);
        let general = joint(
            &ev,
            &chain(),
            &pi,
            &[ones, e2.clone(), e3.clone()],
            DEFAULT_ENUMERATION_LIMIT,
        )
        .unwrap();
        let fast = pattern_joint_algorithm4(
            &pattern,
            &chain(),
            &pi,
            &[e2, e3],
            DEFAULT_ENUMERATION_LIMIT,
        )
        .unwrap();
        assert!((general - fast).abs() < 1e-12, "{general} vs {fast}");
    }

    #[test]
    fn algorithm4_validates_window() {
        let pattern = Pattern::new(vec![region(3, &[0])], 2).unwrap();
        let pi = Vector::uniform(3);
        assert!(matches!(
            pattern_joint_algorithm4(&pattern, &chain(), &pi, &[], 1000),
            Err(QuantifyError::InvalidEmission { .. })
        ));
    }

    #[test]
    fn bad_pi_is_rejected() {
        let ev: StEvent = Presence::new(region(3, &[0]), 1, 2).unwrap().into();
        assert!(prior(&ev, &chain(), &Vector::from(vec![0.9, 0.3, 0.1]), 1000).is_err());
    }
}
