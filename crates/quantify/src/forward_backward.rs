//! The classic HMM forward–backward smoother (paper Eqs. (10)–(12)).
//!
//! PriSTE's joint-probability lemmas embed forward–backward inside the
//! two-possible-world space; this module is the *plain* version over the
//! base state space, used for posterior state estimation (e.g. adversary
//! simulations in the examples) and as a reference point for tests.

use crate::{QuantifyError, Result};
use priste_linalg::scaling::ScaledVector;
use priste_linalg::Vector;
use priste_markov::TransitionProvider;

/// Posterior state estimates `Pr(u_t = s_k | o_1, …, o_T)` for every
/// timestep (Eq. (12)), given per-timestep emission columns
/// (`emissions[i]` = `p̃_{o_{i+1}}`).
///
/// # Errors
/// * [`QuantifyError::InvalidInitial`] for a bad `π`.
/// * [`QuantifyError::InvalidEmission`] for wrong-length columns.
/// * [`QuantifyError::ZeroLikelihood`] when the observation sequence is
///   impossible under the model — the error carries the 1-based timestep at
///   which the forward mass first vanished, so streaming callers can point
///   at the offending observation.
pub fn posterior_states<P: TransitionProvider>(
    provider: &P,
    pi: &Vector,
    emissions: &[Vector],
) -> Result<Vec<Vector>> {
    let m = provider.num_states();
    if pi.len() != m {
        return Err(QuantifyError::InvalidInitial(
            priste_linalg::LinalgError::DimensionMismatch {
                op: "forward-backward initial",
                expected: m,
                actual: pi.len(),
            },
        ));
    }
    pi.validate_distribution()
        .map_err(QuantifyError::InvalidInitial)?;
    for e in emissions {
        if e.len() != m {
            return Err(QuantifyError::InvalidEmission {
                expected: m,
                actual: e.len(),
            });
        }
    }
    let big_t = emissions.len();
    if big_t == 0 {
        return Ok(Vec::new());
    }

    // Forward pass (Eq. (10)): α_1 = π ∘ p̃_{o_1}; α_t = (α_{t−1}·M)∘p̃_{o_t}.
    // A vanished α pinpoints the first impossible observation.
    let mut alphas: Vec<ScaledVector> = Vec::with_capacity(big_t);
    let mut alpha = ScaledVector::new(pi.hadamard(&emissions[0]).expect("validated length"));
    if alpha.vector.sum() <= 0.0 {
        return Err(QuantifyError::ZeroLikelihood { t: 1 });
    }
    alpha.renormalize();
    alphas.push(alpha.clone());
    for t in 2..=big_t {
        provider
            .transition_at(t - 1)
            .forward_step(&mut alpha, &emissions[t - 1]);
        if alpha.vector.sum() <= 0.0 {
            return Err(QuantifyError::ZeroLikelihood { t });
        }
        alphas.push(alpha.clone());
    }

    // Backward pass (Eq. (11)): β_T = 1; β_t = M·(p̃_{o_{t+1}} ∘ β_{t+1}).
    let mut betas: Vec<ScaledVector> = vec![ScaledVector::new(Vector::ones(m)); big_t];
    for t in (1..big_t).rev() {
        let mut b = betas[t].clone();
        provider
            .transition_at(t)
            .backward_step(&mut b, &emissions[t]);
        betas[t - 1] = b;
    }

    // Combine (Eq. (12)): normalize α_t ∘ β_t per timestep. A vanished
    // product means the suffix is impossible given the prefix; report the
    // timestep after the prefix as the point of death.
    let mut out = Vec::with_capacity(big_t);
    for (t0, (a, b)) in alphas.iter().zip(&betas).enumerate() {
        let mut post = a.vector.hadamard(&b.vector).expect("validated length");
        post.normalize_mut()
            .map_err(|_| QuantifyError::ZeroLikelihood { t: t0 + 1 })?;
        out.push(post);
    }
    Ok(out)
}

/// Log-likelihood `ln Pr(o_1, …, o_T)` of an observation sequence.
///
/// # Errors
/// As [`posterior_states`]. An empty sequence has likelihood 1 (log 0).
pub fn log_likelihood<P: TransitionProvider>(
    provider: &P,
    pi: &Vector,
    emissions: &[Vector],
) -> Result<f64> {
    let m = provider.num_states();
    pi.validate_distribution()
        .map_err(QuantifyError::InvalidInitial)?;
    if emissions.is_empty() {
        return Ok(0.0);
    }
    for e in emissions {
        if e.len() != m {
            return Err(QuantifyError::InvalidEmission {
                expected: m,
                actual: e.len(),
            });
        }
    }
    let mut alpha = ScaledVector::new(pi.hadamard(&emissions[0]).expect("validated length"));
    alpha.renormalize();
    for t in 2..=emissions.len() {
        provider
            .transition_at(t - 1)
            .forward_step(&mut alpha, &emissions[t - 1]);
    }
    Ok(alpha.log_sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use priste_markov::{Homogeneous, MarkovModel};

    fn chain() -> Homogeneous {
        Homogeneous::new(MarkovModel::paper_example())
    }

    #[test]
    fn posteriors_are_distributions() {
        let e = vec![
            Vector::from(vec![0.7, 0.2, 0.1]),
            Vector::from(vec![0.1, 0.8, 0.1]),
            Vector::from(vec![0.3, 0.3, 0.4]),
        ];
        let posts = posterior_states(&chain(), &Vector::uniform(3), &e).unwrap();
        assert_eq!(posts.len(), 3);
        for p in &posts {
            p.validate_distribution().unwrap();
        }
    }

    #[test]
    fn single_observation_posterior_is_bayes_rule() {
        let e = vec![Vector::from(vec![0.9, 0.05, 0.05])];
        let pi = Vector::from(vec![0.5, 0.25, 0.25]);
        let posts = posterior_states(&chain(), &pi, &e).unwrap();
        let z = 0.5 * 0.9 + 0.25 * 0.05 + 0.25 * 0.05;
        assert!((posts[0][0] - 0.45 / z).abs() < 1e-12);
    }

    #[test]
    fn smoothing_uses_future_evidence() {
        // An observation at t=2 that only state s3 can emit pins u_2 = s3;
        // since only s1/s2 reach s3 with prob 0.7/0.5 and s3 self-loops 0.9,
        // smoothing shifts the t=1 posterior toward s3.
        let e = vec![
            Vector::from(vec![1.0 / 3.0; 3]),
            Vector::from(vec![0.0, 0.0, 1.0]),
        ];
        let posts = posterior_states(&chain(), &Vector::uniform(3), &e).unwrap();
        assert!((posts[1][2] - 1.0).abs() < 1e-12);
        // Filtered-only t=1 posterior would be uniform; smoothed must favor s3.
        assert!(posts[0][2] > posts[0][0]);
        assert!(posts[0][2] > posts[0][1]);
    }

    #[test]
    fn impossible_sequence_is_an_error() {
        // Emission column of zeros: likelihood 0, no posterior.
        let e = vec![Vector::zeros(3)];
        assert_eq!(
            posterior_states(&chain(), &Vector::uniform(3), &e),
            Err(QuantifyError::ZeroLikelihood { t: 1 })
        );
    }

    #[test]
    fn zero_likelihood_error_carries_the_offending_timestep() {
        // t=1 and t=2 are fine; the t=3 column kills the forward mass
        // because s3 is the only state reachable with positive probability
        // after pinning u_2 = s3 (row [0, 0.1, 0.9]) — and the column
        // assigns mass only to s1.
        let e = vec![
            Vector::from(vec![1.0 / 3.0; 3]),
            Vector::from(vec![0.0, 0.0, 1.0]),
            Vector::from(vec![1.0, 0.0, 0.0]),
        ];
        assert_eq!(
            posterior_states(&chain(), &Vector::uniform(3), &e),
            Err(QuantifyError::ZeroLikelihood { t: 3 })
        );
        // A malformed column is still the *other* error.
        let bad = vec![Vector::uniform(4)];
        assert!(matches!(
            posterior_states(&chain(), &Vector::uniform(3), &bad),
            Err(QuantifyError::InvalidEmission { .. })
        ));
    }

    #[test]
    fn log_likelihood_matches_manual_chain_rule() {
        let e1 = Vector::from(vec![0.7, 0.2, 0.1]);
        let e2 = Vector::from(vec![0.1, 0.8, 0.1]);
        let pi = Vector::uniform(3);
        let m = MarkovModel::paper_example();
        let mut manual = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                manual += pi[i] * e1[i] * m.transition().get(i, j) * e2[j];
            }
        }
        let got = log_likelihood(&chain(), &pi, &[e1, e2]).unwrap();
        assert!((got - manual.ln()).abs() < 1e-12);
    }

    #[test]
    fn empty_sequence() {
        assert_eq!(
            log_likelihood(&chain(), &Vector::uniform(3), &[]).unwrap(),
            0.0
        );
        assert!(posterior_states(&chain(), &Vector::uniform(3), &[])
            .unwrap()
            .is_empty());
    }
}
