//! Quantifying ε-spatiotemporal event privacy (paper §III and §IV.A).
//!
//! The central objects are the *two-possible-world* lifted transition
//! matrices: `2m×2m` matrices over the doubled state space
//! `(state, EVENT-false) ⊎ (state, EVENT-true)` that encode a PRESENCE or
//! PATTERN event inside ordinary Markov propagation (Eqs. (3)–(8)). With
//! them, prior probabilities (Lemma III.1), joint probabilities with
//! observations (Lemmas III.2/III.3), and the Theorem IV.1 coefficient
//! vectors `a`, `b`, `c` all cost *linear* work in the number of event
//! predicates — versus the exponential enumeration of Appendix B, which is
//! also implemented here ([`naive`]) as the correctness oracle and the
//! Fig. 14 runtime baseline.
//!
//! Module map:
//!
//! * [`lifted`] — structured lifted transition steps; every application is
//!   four `m`-dimensional operations instead of one dense `2m×2m` product.
//! * [`TwoWorldEngine`] — per-event schedule of lifted steps, initial-state
//!   lifting, suffix products and the prior of Lemma III.1.
//! * [`TheoremBuilder`] — the incremental `A`/`B` recurrences of
//!   Algorithm 2 (lines 3–15) with candidate/commit semantics matching the
//!   release-retry loop, emitting [`TheoremInputs`] for the QP check.
//! * [`IncrementalTwoWorld`] — the streaming face: carries the lifted
//!   forward vector across timestamps so each observation costs `O(m²)`
//!   instead of replaying the horizon (the journal extension's per-timestamp
//!   recursion, arXiv:1907.10814); what `priste-online` sessions hold.
//! * [`fixed_pi`] — §III's quantification for a *known* initial probability:
//!   conditional likelihoods and realized privacy loss.
//! * [`forward_backward`] — the classic HMM smoother (Eqs. (10)–(12)).
//! * [`naive`] — Appendix B exponential baselines (general Boolean events
//!   via [`priste_event::EventExpr`], plus Algorithm 4's PATTERN-specific
//!   enumeration).
//! * [`attack`] — an exact Bayesian adversary whose posterior-odds lift is
//!   what the ε guarantee bounds; used to verify releases operationally.
//! * [`sweep`] — ε-capacity analysis: the smallest certifiable ε per
//!   timestep, by bisection over the exact Theorem IV.1 checker.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attack;
mod engine;
mod error;
pub mod fixed_pi;
pub mod forward_backward;
mod incremental;
pub mod lifted;
pub mod naive;
pub mod sweep;
mod theorem;

pub use engine::TwoWorldEngine;
pub use error::QuantifyError;
pub use incremental::{IncrementalTwoWorld, StreamStep};
pub use theorem::{TheoremBuilder, TheoremInputs};

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, QuantifyError>;
