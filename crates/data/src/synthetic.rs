//! The paper's synthetic world (§V.A).
//!
//! "First, a map with 20∗20 cells is generated. Then, the transition
//! probability from one cell to another is proportional to the
//! two-dimensional Gaussian distribution with scale parameter σ. … Finally,
//! we produced trajectories with 50 timestamps using such transition matrix
//! to simulate movement of a user."

use crate::{Result, World};
use priste_geo::GridMap;
use priste_linalg::Vector;
use priste_markov::gaussian_kernel_chain;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default horizon of synthetic trajectories (paper: 50 timestamps).
pub const DEFAULT_HORIZON: usize = 50;

/// Parameters of the synthetic world.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Grid rows (paper: 20).
    pub rows: usize,
    /// Grid columns (paper: 20).
    pub cols: usize,
    /// Cell side length in km (1 km gives the paper's distance scale).
    pub cell_size_km: f64,
    /// Gaussian kernel scale σ (Fig. 13 sweeps {0.01, 0.1, 1, 10}).
    pub sigma: f64,
    /// Trajectory length (paper: 50).
    pub horizon: usize,
    /// Number of trajectories to sample.
    pub num_trajectories: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            rows: 20,
            cols: 20,
            cell_size_km: 1.0,
            sigma: 1.0,
            horizon: DEFAULT_HORIZON,
            num_trajectories: 1,
            seed: 0,
        }
    }
}

/// Builds the synthetic world: Gaussian-kernel chain plus sampled
/// trajectories (starting states drawn uniformly, matching the uniform `π`
/// of the experiments).
///
/// # Errors
/// Grid/chain construction or sampling failures.
pub fn build(config: &SyntheticConfig) -> Result<World> {
    let grid = GridMap::new(config.rows, config.cols, config.cell_size_km)?;
    let chain = gaussian_kernel_chain(&grid, config.sigma)?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let pi = Vector::uniform(grid.num_cells());
    let mut trajectories = Vec::with_capacity(config.num_trajectories);
    for _ in 0..config.num_trajectories {
        trajectories.push(chain.sample_trajectory_from(&pi, config.horizon, &mut rng)?);
    }
    Ok(World {
        grid,
        chain,
        trajectories,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_dimensions() {
        let c = SyntheticConfig::default();
        let world = build(&c).unwrap();
        assert_eq!(world.grid.num_cells(), 400);
        assert_eq!(world.trajectories.len(), 1);
        assert_eq!(world.trajectories[0].len(), 50);
        world.chain.transition().validate_stochastic().unwrap();
    }

    #[test]
    fn small_sigma_trajectories_barely_move() {
        let c = SyntheticConfig {
            rows: 5,
            cols: 5,
            sigma: 0.01,
            horizon: 30,
            seed: 3,
            ..Default::default()
        };
        let world = build(&c).unwrap();
        let traj = &world.trajectories[0];
        let distinct: std::collections::HashSet<_> = traj.iter().collect();
        assert!(
            distinct.len() <= 2,
            "σ=0.01 should pin the user, saw {distinct:?}"
        );
    }

    #[test]
    fn large_sigma_trajectories_roam() {
        let c = SyntheticConfig {
            rows: 5,
            cols: 5,
            sigma: 50.0,
            horizon: 40,
            seed: 3,
            ..Default::default()
        };
        let world = build(&c).unwrap();
        let distinct: std::collections::HashSet<_> = world.trajectories[0].iter().collect();
        assert!(
            distinct.len() > 10,
            "σ=50 should roam, saw {} cells",
            distinct.len()
        );
    }

    #[test]
    fn seeding_is_reproducible() {
        let c = SyntheticConfig {
            seed: 9,
            num_trajectories: 3,
            ..Default::default()
        };
        let a = build(&c).unwrap();
        let b = build(&c).unwrap();
        assert_eq!(a.trajectories, b.trajectories);
        let c2 = SyntheticConfig {
            seed: 10,
            num_trajectories: 3,
            ..Default::default()
        };
        let d = build(&c2).unwrap();
        assert_ne!(a.trajectories, d.trajectories);
    }
}
