use std::fmt;

/// Errors produced by dataset construction and parsing.
#[derive(Debug)]
#[non_exhaustive]
pub enum DataError {
    /// Geometry-layer failure.
    Geo(priste_geo::GeoError),
    /// Markov-layer failure (training/sampling).
    Markov(priste_markov::MarkovError),
    /// A `.plt` record failed to parse.
    PltParse {
        /// 1-based line number within the file.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An I/O failure while reading dataset files.
    Io(std::io::Error),
    /// Not enough usable data to build a world (e.g. all GPS fixes were
    /// outside the bounding box).
    InsufficientData {
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Geo(e) => write!(f, "geometry error: {e}"),
            DataError::Markov(e) => write!(f, "markov error: {e}"),
            DataError::PltParse { line, message } => {
                write!(f, "plt parse error at line {line}: {message}")
            }
            DataError::Io(e) => write!(f, "i/o error: {e}"),
            DataError::InsufficientData { message } => write!(f, "insufficient data: {message}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Geo(e) => Some(e),
            DataError::Markov(e) => Some(e),
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<priste_geo::GeoError> for DataError {
    fn from(e: priste_geo::GeoError) -> Self {
        DataError::Geo(e)
    }
}

impl From<priste_markov::MarkovError> for DataError {
    fn from(e: priste_markov::MarkovError) -> Self {
        DataError::Markov(e)
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = DataError::PltParse {
            line: 7,
            message: "bad latitude".into(),
        };
        assert!(e.to_string().contains("line 7"));
        let e = DataError::InsufficientData {
            message: "empty".into(),
        };
        assert!(e.to_string().contains("empty"));
    }
}
