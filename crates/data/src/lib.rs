//! Datasets for the PriSTE experiments (paper §V.A).
//!
//! Three sources, all producing the same artifact — a `(GridMap,
//! MarkovModel)` world plus trajectories — so every experiment is
//! data-source agnostic:
//!
//! * [`synthetic`] — the paper's synthetic world: a 20×20 grid whose
//!   transition kernel is a two-dimensional Gaussian with scale `σ`, and
//!   50-step trajectories sampled from it.
//! * [`geolife`] — a parser for the real GeoLife GPS dataset's `.plt`
//!   files (Zheng et al.), with grid discretization and Markov training, so
//!   the actual data can be dropped in by anyone who has it.
//! * [`stats`] — trajectory statistics (radius of gyration, visit entropy,
//!   dwell fractions) used to validate that simulated data behaves like
//!   commuter GPS traces.
//! * [`geolife_sim`] — the **substitute** used by default here (the 1.7 GB
//!   dataset is not redistributable with this repository): a commuter
//!   simulator producing multi-day home↔work trajectories with Gaussian
//!   jitter and exploration noise over a Beijing-extent grid, trained into
//!   a transition matrix exactly the way §V.A trains on GeoLife. See
//!   DESIGN.md "Substitutions" for why this preserves the evaluated
//!   behaviour.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
pub mod geolife;
pub mod geolife_sim;
pub mod stats;
pub mod synthetic;

pub use error::DataError;

use priste_geo::GridMap;
use priste_markov::MarkovModel;

/// A ready-to-run experiment world: geometry, mobility model, and the
/// trajectories the model was trained on (or generated from).
#[derive(Debug, Clone)]
pub struct World {
    /// The spatial grid.
    pub grid: GridMap,
    /// The trained/synthesized mobility model.
    pub chain: MarkovModel,
    /// Trajectories associated with the world (training data for trained
    /// worlds; sample runs for synthetic ones).
    pub trajectories: Vec<Vec<priste_geo::CellId>>,
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, DataError>;
