//! Trajectory statistics — the descriptive measures mobility papers use to
//! characterize datasets (and that this repository uses to show the
//! simulator substitute behaves like commuter GPS data).

use priste_geo::{CellId, GridMap, Region};
use std::collections::HashMap;

/// Summary statistics of one cell trajectory on a grid.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryStats {
    /// Number of timestamps.
    pub len: usize,
    /// Number of distinct cells visited.
    pub distinct_cells: usize,
    /// Radius of gyration in km: RMS distance of visited points from the
    /// trajectory's center of mass (the standard mobility-range measure).
    pub radius_of_gyration_km: f64,
    /// Shannon entropy (nats) of the visit distribution — low for
    /// anchor-dominated movement, `ln(m)` for uniform wandering.
    pub visit_entropy_nats: f64,
    /// Mean consecutive-step jump length in km.
    pub mean_jump_km: f64,
    /// Fraction of steps that stay in the same cell.
    pub dwell_fraction: f64,
}

/// Computes [`TrajectoryStats`].
///
/// # Panics
/// Panics if the trajectory is empty or references cells outside the grid
/// (analysis helpers assume validated inputs).
pub fn trajectory_stats(grid: &GridMap, trajectory: &[CellId]) -> TrajectoryStats {
    assert!(!trajectory.is_empty(), "empty trajectory");
    let centers: Vec<(f64, f64)> = trajectory
        .iter()
        .map(|&c| grid.cell_center_km(c).expect("cell in grid"))
        .collect();

    let n = centers.len() as f64;
    let (mx, my) = centers
        .iter()
        .fold((0.0, 0.0), |(ax, ay), &(x, y)| (ax + x / n, ay + y / n));
    let rog = (centers
        .iter()
        .map(|&(x, y)| (x - mx).powi(2) + (y - my).powi(2))
        .sum::<f64>()
        / n)
        .sqrt();

    let mut counts: HashMap<CellId, usize> = HashMap::new();
    for &c in trajectory {
        *counts.entry(c).or_insert(0) += 1;
    }
    let entropy = -counts
        .values()
        .map(|&k| {
            let p = k as f64 / n;
            p * p.ln()
        })
        .sum::<f64>();

    let mut jumps = 0.0;
    let mut dwells = 0usize;
    for w in trajectory.windows(2) {
        let d = grid.distance_km(w[0], w[1]).expect("cells in grid");
        jumps += d;
        if w[0] == w[1] {
            dwells += 1;
        }
    }
    let steps = (trajectory.len() - 1).max(1) as f64;

    TrajectoryStats {
        len: trajectory.len(),
        distinct_cells: counts.len(),
        radius_of_gyration_km: rog,
        visit_entropy_nats: entropy,
        mean_jump_km: jumps / steps,
        dwell_fraction: dwells as f64 / steps,
    }
}

/// The `k` most-visited cells in descending visit order (ties by index).
pub fn top_cells(trajectory: &[CellId], k: usize) -> Vec<(CellId, usize)> {
    let mut counts: HashMap<CellId, usize> = HashMap::new();
    for &c in trajectory {
        *counts.entry(c).or_insert(0) += 1;
    }
    let mut out: Vec<(CellId, usize)> = counts.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out.truncate(k);
    out
}

/// Fraction of timestamps spent inside `region`.
///
/// # Panics
/// Panics on an empty trajectory.
pub fn occupancy(trajectory: &[CellId], region: &Region) -> f64 {
    assert!(!trajectory.is_empty(), "empty trajectory");
    let hits = trajectory.iter().filter(|&&c| region.contains(c)).count();
    hits as f64 / trajectory.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> GridMap {
        GridMap::new(4, 4, 1.0).unwrap()
    }

    #[test]
    fn stationary_trajectory_has_zero_spread() {
        let t = vec![CellId(5); 10];
        let s = trajectory_stats(&grid(), &t);
        assert_eq!(s.len, 10);
        assert_eq!(s.distinct_cells, 1);
        assert!(s.radius_of_gyration_km < 1e-12);
        assert_eq!(s.visit_entropy_nats, 0.0);
        assert_eq!(s.mean_jump_km, 0.0);
        assert_eq!(s.dwell_fraction, 1.0);
    }

    #[test]
    fn two_point_commute_statistics() {
        // Alternating between cells 0 and 3 of a 1×4 grid row (3 km apart).
        let g = GridMap::new(1, 4, 1.0).unwrap();
        let t = vec![CellId(0), CellId(3), CellId(0), CellId(3)];
        let s = trajectory_stats(&g, &t);
        assert_eq!(s.distinct_cells, 2);
        assert!((s.mean_jump_km - 3.0).abs() < 1e-12);
        assert_eq!(s.dwell_fraction, 0.0);
        // Entropy of a fair two-point distribution is ln 2.
        assert!((s.visit_entropy_nats - (2.0_f64).ln()).abs() < 1e-12);
        // RoG of points ±1.5 km around the center.
        assert!((s.radius_of_gyration_km - 1.5).abs() < 1e-12);
    }

    #[test]
    fn top_cells_orders_by_count_then_index() {
        let t = vec![CellId(2), CellId(2), CellId(1), CellId(3), CellId(1)];
        let top = top_cells(&t, 2);
        assert_eq!(top, vec![(CellId(1), 2), (CellId(2), 2)]);
    }

    #[test]
    fn occupancy_counts_region_hits() {
        let region = Region::from_cells(16, [CellId(0), CellId(1)]).unwrap();
        let t = vec![CellId(0), CellId(5), CellId(1), CellId(1)];
        assert!((occupancy(&t, &region) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn commuter_world_statistics_look_like_commuting() {
        let world = crate::geolife_sim::build(&crate::geolife_sim::CommuterConfig {
            rows: 10,
            cols: 10,
            days: 5,
            steps_per_day: 40,
            ..Default::default()
        })
        .unwrap();
        for day in &world.trajectories {
            let s = trajectory_stats(&world.grid, day);
            // Anchored days: plenty of dwelling, bounded entropy, real range.
            assert!(s.dwell_fraction > 0.1, "dwell {s:?}");
            assert!(s.radius_of_gyration_km > 1.0, "rog {s:?}");
            assert!(s.visit_entropy_nats < (world.grid.num_cells() as f64).ln());
        }
    }

    #[test]
    #[should_panic(expected = "empty trajectory")]
    fn empty_trajectory_panics() {
        let _ = trajectory_stats(&grid(), &[]);
    }
}
