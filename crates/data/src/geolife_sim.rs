//! GeoLife substitute: a commuter simulator (see DESIGN.md
//! "Substitutions").
//!
//! The real dataset is 1.7 GB of GPS traces and cannot ship with this
//! repository; what the paper actually *consumes* from it is a single
//! user's discretized cell trajectory and the Markov transition matrix
//! trained from it. The simulator reproduces the statistical features that
//! drive the PriSTE experiments:
//!
//! * a strong home↔work commuting pattern (the paper's motivating secret
//!   "regularly commuting between Address 1 and Address 2"),
//! * dwell periods at anchor locations with local jitter,
//! * grid-path commutes through intermediate cells (so the chain has
//!   realistic banded structure rather than teleports), and
//! * occasional exploration visits that spread support over the map.
//!
//! Output is the same [`World`] artifact as the real-data pipeline, trained
//! with the identical MLE estimator — downstream code cannot tell the
//! difference, which is the point of the substitution.

use crate::{DataError, Result, World};
use priste_geo::{CellId, GridMap};
use priste_markov::train_mle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the commuter simulator.
#[derive(Debug, Clone)]
pub struct CommuterConfig {
    /// Grid rows (default 20 — the paper's map granularity).
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Cell side in km. The paper reports GeoLife Euclidean-distance
    /// utilities of 2–5 km, implying a grid over Beijing's urban core
    /// (≈20 km) rather than the full metro extent; 1 km cells on a 20×20
    /// grid match that scale.
    pub cell_size_km: f64,
    /// Number of simulated days (each contributing one trajectory).
    pub days: usize,
    /// Steps per day (timestamps of the daily trajectory).
    pub steps_per_day: usize,
    /// Probability of a jitter move to a neighbouring cell while dwelling.
    pub jitter: f64,
    /// Probability of an exploration detour instead of a routine day.
    pub exploration: f64,
    /// MLE smoothing (keeps unvisited rows uniform).
    pub smoothing_alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CommuterConfig {
    fn default() -> Self {
        CommuterConfig {
            rows: 20,
            cols: 20,
            cell_size_km: 1.0,
            days: 60,
            steps_per_day: 48,
            jitter: 0.15,
            exploration: 0.1,
            smoothing_alpha: 0.05,
            seed: 2019,
        }
    }
}

/// Simulates the commuter and trains the world from the generated days.
///
/// # Errors
/// Construction failures from the grid/training layers.
pub fn build(config: &CommuterConfig) -> Result<World> {
    if config.days == 0 || config.steps_per_day < 4 {
        return Err(DataError::InsufficientData {
            message: "need at least one day of at least 4 steps".into(),
        });
    }
    let grid = GridMap::new(config.rows, config.cols, config.cell_size_km)?;
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Anchors: home in the lower-left quadrant, work in the upper-right —
    // the commute crosses the map like a Beijing west-suburb → CBD run.
    // The day-to-day wobble of the home row only applies on grids big
    // enough to have one (rows/8 ≥ 1).
    let wobble_range = (config.rows / 8).max(1);
    let home_row = (config.rows * 3 / 4 + rng.gen_range(0..wobble_range)).min(config.rows - 1);
    let home = grid.from_row_col(home_row, config.cols / 8)?;
    let work = grid.from_row_col(config.rows / 8, config.cols * 3 / 4)?;

    let mut days: Vec<Vec<CellId>> = Vec::with_capacity(config.days);
    for _ in 0..config.days {
        days.push(simulate_day(&grid, home, work, config, &mut rng)?);
    }
    let chain = train_mle(grid.num_cells(), &days, config.smoothing_alpha)?;
    Ok(World {
        grid,
        chain,
        trajectories: days,
    })
}

/// One simulated day: dwell at home, commute, dwell at work (with an
/// optional exploration detour routed through real grid paths), commute
/// back, dwell at home. Every consecutive pair of cells is identical or
/// 4-adjacent — no teleports, so the trained chain is banded like a real
/// pedestrian/vehicle trace.
fn simulate_day(
    grid: &GridMap,
    home: CellId,
    work: CellId,
    config: &CommuterConfig,
    rng: &mut StdRng,
) -> Result<Vec<CellId>> {
    let steps = config.steps_per_day;
    let leave = steps / 4 + rng.gen_range(0..steps / 12 + 1);
    let depart = steps * 3 / 4 + rng.gen_range(0..steps / 12 + 1);

    let mut day: Vec<CellId> = Vec::with_capacity(steps + 8);
    day.extend(dwell_steps(grid, home, leave, config.jitter, rng)?);
    append_path(&mut day, &grid_path(grid, home, work)?);

    if rng.gen_bool(config.exploration) {
        // Detour: walk to a nearby random cell and back before settling in.
        let (wr, wc) = grid.to_row_col(work)?;
        let er = wr.saturating_sub(2)
            + rng
                .gen_range(0usize..5)
                .min(grid.rows() - 1 - wr.saturating_sub(2));
        let ec = wc.saturating_sub(2)
            + rng
                .gen_range(0usize..5)
                .min(grid.cols() - 1 - wc.saturating_sub(2));
        let target = grid.from_row_col(er.min(grid.rows() - 1), ec.min(grid.cols() - 1))?;
        append_path(&mut day, &grid_path(grid, work, target)?);
        day.extend(dwell_steps(grid, target, 2, config.jitter, rng)?);
        append_path(&mut day, &grid_path(grid, target, work)?);
    }

    if day.len() < depart {
        let remaining = depart - day.len();
        day.extend(dwell_steps(grid, work, remaining, config.jitter, rng)?);
    }
    append_path(&mut day, &grid_path(grid, work, home)?);
    while day.len() < steps {
        let remaining = steps - day.len();
        day.extend(dwell_steps(grid, home, remaining, config.jitter, rng)?);
    }
    day.truncate(steps);
    Ok(day)
}

/// Appends a grid path, skipping its first cell (the current position).
fn append_path(day: &mut Vec<CellId>, path: &[CellId]) {
    day.extend_from_slice(&path[1..]);
}

/// `n` dwell steps anchored at `anchor`: mostly staying put, with jitter
/// excursions to a random neighbour that return on the following step (so
/// the sequence starts and ends on the anchor and all moves are adjacent).
fn dwell_steps(
    grid: &GridMap,
    anchor: CellId,
    n: usize,
    jitter: f64,
    rng: &mut StdRng,
) -> Result<Vec<CellId>> {
    let mut out = Vec::with_capacity(n);
    let neighbors = grid.neighbors4(anchor)?;
    let mut i = 0;
    while i < n {
        if i + 2 <= n && rng.gen_bool(jitter) {
            out.push(neighbors[rng.gen_range(0..neighbors.len())]);
            out.push(anchor);
            i += 2;
        } else {
            out.push(anchor);
            i += 1;
        }
    }
    Ok(out)
}

/// L-shaped grid path between two cells (rows first, then columns),
/// inclusive of both endpoints.
fn grid_path(grid: &GridMap, from: CellId, to: CellId) -> Result<Vec<CellId>> {
    let (fr, fc) = grid.to_row_col(from)?;
    let (tr, tc) = grid.to_row_col(to)?;
    let mut path = Vec::new();
    let mut r = fr;
    let mut c = fc;
    path.push(grid.from_row_col(r, c)?);
    while r != tr {
        r = if r < tr { r + 1 } else { r - 1 };
        path.push(grid.from_row_col(r, c)?);
    }
    while c != tc {
        c = if c < tc { c + 1 } else { c - 1 };
        path.push(grid.from_row_col(r, c)?);
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_valid_world() {
        let world = build(&CommuterConfig {
            days: 10,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(world.grid.num_cells(), 400);
        assert_eq!(world.trajectories.len(), 10);
        assert_eq!(world.trajectories[0].len(), 48);
        world.chain.transition().validate_stochastic().unwrap();
    }

    #[test]
    fn reproducible_by_seed() {
        let cfg = CommuterConfig {
            days: 5,
            ..Default::default()
        };
        let a = build(&cfg).unwrap();
        let b = build(&cfg).unwrap();
        assert_eq!(a.trajectories, b.trajectories);
    }

    #[test]
    fn commuting_pattern_dominates_the_chain() {
        let world = build(&CommuterConfig {
            days: 40,
            ..Default::default()
        })
        .unwrap();
        // Self-transitions at anchors should be strong (dwelling), i.e. the
        // chain has a significant mobility pattern in Fig. 13's sense.
        let t = world.chain.transition();
        let mut max_self: f64 = 0.0;
        for i in 0..world.grid.num_cells() {
            max_self = max_self.max(t.get(i, i));
        }
        assert!(
            max_self > 0.5,
            "expected sticky anchors, max self-prob {max_self}"
        );
    }

    #[test]
    fn trajectories_move_between_distant_cells() {
        let world = build(&CommuterConfig {
            days: 3,
            ..Default::default()
        })
        .unwrap();
        for day in &world.trajectories {
            let first = day[0];
            let max_d = day
                .iter()
                .map(|&c| world.grid.distance_km(first, c).unwrap())
                .fold(0.0f64, f64::max);
            assert!(max_d > 10.0, "commute should cross the map, max {max_d} km");
        }
    }

    #[test]
    fn transitions_are_local_no_teleports() {
        let world = build(&CommuterConfig {
            days: 5,
            ..Default::default()
        })
        .unwrap();
        for day in &world.trajectories {
            for w in day.windows(2) {
                let d = world.grid.distance_km(w[0], w[1]).unwrap();
                assert!(
                    d <= world.grid.cell_size_km() * 1.5 + 1e-9,
                    "teleport of {d} km between consecutive steps"
                );
            }
        }
    }

    #[test]
    fn degenerate_config_is_rejected() {
        assert!(build(&CommuterConfig {
            days: 0,
            ..Default::default()
        })
        .is_err());
        assert!(build(&CommuterConfig {
            steps_per_day: 2,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn grid_path_is_connected_and_inclusive() {
        let grid = GridMap::new(6, 6, 1.0).unwrap();
        let path = grid_path(&grid, CellId(0), CellId(35)).unwrap();
        assert_eq!(path.first(), Some(&CellId(0)));
        assert_eq!(path.last(), Some(&CellId(35)));
        for w in path.windows(2) {
            let d = grid.distance_km(w[0], w[1]).unwrap();
            assert!((d - 1.0).abs() < 1e-9, "non-adjacent path step");
        }
    }
}
