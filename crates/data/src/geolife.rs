//! Parser and discretizer for the real GeoLife GPS dataset (Zheng et al.,
//! "GeoLife: a collaborative social networking service among user, location
//! and trajectory", IEEE Data Eng. Bull. 2010) — the paper's real-world
//! evaluation data (§V.A).
//!
//! The dataset ships one `.plt` file per trip:
//!
//! ```text
//! Geolife trajectory
//! WGS 84
//! Altitude is in Feet
//! Reserved 3
//! 0,2,255,My Track,0,0,2,8421376
//! 0
//! 39.984702,116.318417,0,492,39744.1201851852,2008-10-23,02:53:04
//! …
//! ```
//!
//! Six header lines, then `lat,lon,0,altitude_ft,days_since_1899,date,time`
//! records. [`parse_plt`] extracts validated [`GpsPoint`]s;
//! [`discretize`] maps them onto a grid with a fixed resampling interval
//! (the paper's timestamps are model steps, so GPS streams are resampled to
//! one state per interval); [`build_world`] trains the Markov model from
//! many trips exactly as §V.A does with R's `markovchain`.

use crate::{DataError, Result, World};
use priste_geo::{CellId, GeoBounds, GpsPoint, GridMap};
use priste_markov::train_mle;

/// Number of header lines in a `.plt` file.
const PLT_HEADER_LINES: usize = 6;

/// Parses the contents of one `.plt` file into GPS fixes.
///
/// # Errors
/// [`DataError::PltParse`] with the offending line number on malformed
/// records; header lines are skipped without inspection (their content
/// varies across the dataset).
pub fn parse_plt(content: &str) -> Result<Vec<GpsPoint>> {
    let mut points = Vec::new();
    for (idx, line) in content.lines().enumerate() {
        if idx < PLT_HEADER_LINES {
            continue;
        }
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() < 5 {
            return Err(DataError::PltParse {
                line: line_no,
                message: format!("expected ≥5 comma-separated fields, got {}", fields.len()),
            });
        }
        let lat: f64 = fields[0].trim().parse().map_err(|_| DataError::PltParse {
            line: line_no,
            message: format!("bad latitude {:?}", fields[0]),
        })?;
        let lon: f64 = fields[1].trim().parse().map_err(|_| DataError::PltParse {
            line: line_no,
            message: format!("bad longitude {:?}", fields[1]),
        })?;
        let days: f64 = fields[4].trim().parse().map_err(|_| DataError::PltParse {
            line: line_no,
            message: format!("bad timestamp {:?}", fields[4]),
        })?;
        let point = GpsPoint::new(lat, lon, days * 86_400.0).map_err(|e| DataError::PltParse {
            line: line_no,
            message: e.to_string(),
        })?;
        points.push(point);
    }
    Ok(points)
}

/// Reads and parses a `.plt` file from disk.
///
/// # Errors
/// I/O and parse failures.
pub fn parse_plt_file(path: &std::path::Path) -> Result<Vec<GpsPoint>> {
    let content = std::fs::read_to_string(path)?;
    parse_plt(&content)
}

/// Discretizes a GPS stream onto a grid: fixes are bucketed into
/// consecutive windows of `interval_s` seconds and each window contributes
/// the cell of its last in-bounds fix. Out-of-bounds fixes and empty
/// windows are skipped (gaps split the trip into separate trajectory
/// segments so spurious long-range "transitions" never enter training).
pub fn discretize(
    points: &[GpsPoint],
    bounds: &GeoBounds,
    grid: &GridMap,
    interval_s: f64,
) -> Vec<Vec<CellId>> {
    assert!(interval_s > 0.0, "resampling interval must be positive");
    let mut segments: Vec<Vec<CellId>> = Vec::new();
    let mut current: Vec<CellId> = Vec::new();
    let mut window_start: Option<f64> = None;
    let mut window_cell: Option<CellId> = None;

    for p in points {
        let cell = bounds.to_cell(p, grid);
        match window_start {
            None => {
                window_start = Some(p.timestamp_s);
                window_cell = cell;
            }
            Some(start) => {
                let elapsed = p.timestamp_s - start;
                if elapsed < interval_s {
                    if cell.is_some() {
                        window_cell = cell;
                    }
                } else {
                    // Close the finished window.
                    match window_cell.take() {
                        Some(c) => current.push(c),
                        None => {
                            if current.len() >= 2 {
                                segments.push(std::mem::take(&mut current));
                            } else {
                                current.clear();
                            }
                        }
                    }
                    // Gaps longer than one interval also split the segment.
                    if elapsed >= 2.0 * interval_s && current.len() >= 2 {
                        segments.push(std::mem::take(&mut current));
                    } else if elapsed >= 2.0 * interval_s {
                        current.clear();
                    }
                    window_start = Some(p.timestamp_s);
                    window_cell = cell;
                }
            }
        }
    }
    if let Some(c) = window_cell {
        current.push(c);
    }
    if current.len() >= 2 {
        segments.push(current);
    }
    segments
}

/// Builds a world from many trips: discretize each, pool the segments, and
/// train the transition matrix by MLE with light smoothing (unvisited rows
/// fall back to uniform so the matrix stays stochastic).
///
/// # Errors
/// [`DataError::InsufficientData`] if no segment survives discretization.
pub fn build_world(
    trips: &[Vec<GpsPoint>],
    bounds: &GeoBounds,
    grid: GridMap,
    interval_s: f64,
    smoothing_alpha: f64,
) -> Result<World> {
    let mut segments: Vec<Vec<CellId>> = Vec::new();
    for trip in trips {
        segments.extend(discretize(trip, bounds, &grid, interval_s));
    }
    if segments.is_empty() {
        return Err(DataError::InsufficientData {
            message: "no trajectory segments survived discretization".into(),
        });
    }
    let chain = train_mle(grid.num_cells(), &segments, smoothing_alpha)?;
    Ok(World {
        grid,
        chain,
        trajectories: segments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plt() -> String {
        // Two fixes 5 minutes apart inside Beijing, one outside the box.
        "Geolife trajectory\n\
         WGS 84\n\
         Altitude is in Feet\n\
         Reserved 3\n\
         0,2,255,My Track,0,0,2,8421376\n\
         0\n\
         39.984702,116.318417,0,492,39744.1201851852,2008-10-23,02:53:04\n\
         39.984683,116.31845,0,492,39744.1202546296,2008-10-23,02:53:10\n\
         55.0,10.0,0,0,39744.13,2008-10-23,03:07:12\n"
            .to_string()
    }

    #[test]
    fn parses_records_and_skips_header() {
        let points = parse_plt(&sample_plt()).unwrap();
        assert_eq!(points.len(), 3);
        assert!((points[0].lat - 39.984702).abs() < 1e-9);
        assert!((points[0].lon - 116.318417).abs() < 1e-9);
        // Timestamps convert from fractional days to seconds.
        let dt = points[1].timestamp_s - points[0].timestamp_s;
        assert!(
            (dt - 6.0).abs() < 0.5,
            "expected ~6s between fixes, got {dt}"
        );
    }

    #[test]
    fn malformed_lines_are_rejected_with_position() {
        let mut content = sample_plt();
        content.push_str("not,a,valid,record,xx\n");
        let err = parse_plt(&content).unwrap_err();
        match err {
            DataError::PltParse { line, .. } => assert_eq!(line, 10),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn coordinate_validation_is_enforced() {
        let content = "h\nh\nh\nh\nh\nh\n95.0,116.0,0,0,39744.0,2008-10-23,00:00:00\n";
        assert!(matches!(
            parse_plt(content),
            Err(DataError::PltParse { line: 7, .. })
        ));
    }

    #[test]
    fn discretize_buckets_and_drops_out_of_bounds() {
        let bounds = GeoBounds::beijing();
        let grid = GridMap::new(10, 10, 1.0).unwrap();
        // Three fixes: two in one window, one 10 minutes later; plus an
        // out-of-box fix that must not produce a cell.
        let mk = |lat: f64, lon: f64, t: f64| GpsPoint::new(lat, lon, t).unwrap();
        let points = vec![
            mk(39.9, 116.3, 0.0),
            mk(39.9, 116.31, 60.0),
            mk(39.91, 116.32, 330.0),
            mk(39.91, 116.33, 630.0),
        ];
        let segments = discretize(&points, &bounds, &grid, 300.0);
        assert_eq!(segments.len(), 1);
        assert!(segments[0].len() >= 2, "got {segments:?}");
    }

    #[test]
    fn long_gaps_split_segments() {
        let bounds = GeoBounds::beijing();
        let grid = GridMap::new(10, 10, 1.0).unwrap();
        let mk = |t: f64| GpsPoint::new(39.9, 116.3, t).unwrap();
        // Two clusters separated by three hours.
        let mut points: Vec<GpsPoint> = (0..5).map(|k| mk(k as f64 * 300.0)).collect();
        points.extend((0..5).map(|k| mk(11_000.0 + k as f64 * 300.0)));
        let segments = discretize(&points, &bounds, &grid, 300.0);
        assert!(segments.len() >= 2, "gap should split: {segments:?}");
    }

    #[test]
    fn build_world_trains_a_stochastic_chain() {
        let bounds = GeoBounds::beijing();
        let grid = GridMap::new(5, 5, 1.0).unwrap();
        let mk = |lat: f64, lon: f64, t: f64| GpsPoint::new(lat, lon, t).unwrap();
        // A slow west-to-east sweep across the box.
        let trip: Vec<GpsPoint> = (0..40)
            .map(|k| mk(39.9, 116.12 + 0.013 * k as f64, k as f64 * 300.0))
            .collect();
        let world = build_world(&[trip], &bounds, grid, 300.0, 0.01).unwrap();
        world.chain.transition().validate_stochastic().unwrap();
        assert!(!world.trajectories.is_empty());
    }

    #[test]
    fn build_world_requires_data() {
        let bounds = GeoBounds::beijing();
        let grid = GridMap::new(5, 5, 1.0).unwrap();
        assert!(matches!(
            build_world(&[], &bounds, grid, 300.0, 0.0),
            Err(DataError::InsufficientData { .. })
        ));
    }
}
