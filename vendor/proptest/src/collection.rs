//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Generates a `Vec` whose elements come from `element` and whose length
/// falls in `size` (a fixed `usize` or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`fn@vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..=self.size.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = case_rng("collection::len", 0);
        assert_eq!(vec(0usize..3, 5).generate(&mut rng).len(), 5);
        for _ in 0..50 {
            let v = vec(0.0f64..1.0, 2..=4).generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
        }
    }
}
