//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy yielding `true`/`false` with equal probability.
#[derive(Clone, Copy, Debug)]
pub struct Any;

/// Uniformly random booleans (`proptest::bool::ANY`).
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}
