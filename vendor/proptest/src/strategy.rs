//! The [`Strategy`] trait and its combinators.
//!
//! A strategy is simply "a way to generate a value from an RNG". Unlike
//! upstream proptest there is no value tree and no shrinking; `generate`
//! returns the final value directly.

use crate::test_runner::TestRng;
use std::fmt::Display;
use std::ops::{Range, RangeInclusive};

use rand::Rng;

/// How many times a `prop_filter` resamples before giving up.
const FILTER_MAX_ATTEMPTS: u32 = 1000;

/// A generator of test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values for which `pred` is false, resampling up to a bounded
    /// number of attempts. `reason` is reported if the filter starves.
    fn prop_filter<F>(self, reason: impl Display, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.to_string(),
            pred,
        }
    }

    /// Chains into a dependent strategy produced by `f`.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// `&str` is a regex-shaped strategy producing matching `String`s, mirroring
/// upstream proptest (see the private `string` module for the supported subset).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_MAX_ATTEMPTS {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter starved after {FILTER_MAX_ATTEMPTS} attempts: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::case_rng;

    #[test]
    fn ranges_and_combinators_compose() {
        let mut rng = case_rng("strategy::smoke", 0);
        let s = (0usize..10)
            .prop_map(|x| x * 2)
            .prop_filter("even below 10", |&x| x < 10)
            .prop_flat_map(|x| (Just(x), 0usize..=x));
        for _ in 0..100 {
            let (x, y) = s.generate(&mut rng);
            assert!(x < 10 && x % 2 == 0 && y <= x);
        }
    }

    #[test]
    fn boxed_strategies_unify_types() {
        let mut rng = case_rng("strategy::boxed", 0);
        let branches: Vec<BoxedStrategy<usize>> = vec![
            Just(3usize).boxed(),
            (10usize..20).prop_map(|x| x + 1).boxed(),
        ];
        for s in &branches {
            let v = s.generate(&mut rng);
            assert!(v == 3 || (11..=20).contains(&v));
        }
    }
}
