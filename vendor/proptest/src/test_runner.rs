//! Test configuration and deterministic per-case RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG handed to strategies. An alias so strategies and user code can use
/// plain `rand` APIs on it.
pub type TestRng = StdRng;

/// Configuration accepted by `#![proptest_config(..)]`.
///
/// Only `cases` is honored by this shim. `PROPTEST_CASES` in the environment
/// overrides it downward, which keeps the full suite fast in CI without
/// editing the tests.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }.capped()
    }

    fn capped(mut self) -> Self {
        if let Some(cap) = env_cases() {
            self.cases = self.cases.min(cap);
        }
        self
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }.capped()
    }
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// Derives a deterministic RNG for one case of one property test, from the
/// fully-qualified test name and the case index. Stable across runs and
/// platforms, so failures reproduce.
pub fn case_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the name, then mix in the case index.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}
