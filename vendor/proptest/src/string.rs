//! Regex-shaped string strategies.
//!
//! Upstream proptest treats any `&str` as a regex and generates matching
//! strings. This shim supports the pattern subset the workspace's fuzz tests
//! use — a single unit with an optional `{min,max}` repetition, where the
//! unit is:
//!
//! - `\PC` — any non-control Unicode scalar,
//! - `.` — any non-newline scalar,
//! - `[...]` — a character class of literals and `a-z` ranges,
//! - otherwise the pattern is taken as a literal string.

use crate::test_runner::TestRng;
use rand::Rng;

/// Generates one string matching `pattern`.
pub(crate) fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let (unit, min, max) = parse(pattern);
    match unit {
        Unit::Literal(s) => s,
        unit => {
            let len = if min == max {
                min
            } else {
                rng.gen_range(min..=max)
            };
            (0..len).map(|_| unit.sample(rng)).collect()
        }
    }
}

enum Unit {
    /// `\PC`: any non-control scalar.
    NonControl,
    /// `.`: any scalar except `\n`.
    AnyNonNewline,
    /// `[...]`: explicit alternatives.
    Class(Vec<char>),
    /// No repetition operator found: the pattern itself.
    Literal(String),
}

impl Unit {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Unit::Class(chars) => chars[rng.gen_range(0..chars.len())],
            Unit::NonControl | Unit::AnyNonNewline => loop {
                // Bias toward ASCII so parser-reachable prefixes are common,
                // but keep genuine multi-byte scalars in the mix.
                let c = if rng.gen_bool(0.8) {
                    char::from(rng.gen_range(0x20u8..0x7F))
                } else {
                    match char::from_u32(rng.gen_range(0u32..0x11_0000)) {
                        Some(c) => c,
                        None => continue, // surrogate gap
                    }
                };
                let excluded = match self {
                    Unit::NonControl => c.is_control(),
                    _ => c == '\n',
                };
                if !excluded {
                    return c;
                }
            },
            Unit::Literal(_) => unreachable!("literals are returned whole"),
        }
    }
}

fn parse(pattern: &str) -> (Unit, usize, usize) {
    // Recognize the unit by its prefix first, *then* look at what trails it:
    // `{` and `}` are ordinary characters inside `[...]` (the workspace's own
    // dsl_fuzz pattern contains them), so splitting on the first `{` in the
    // whole pattern would mis-parse a class.
    let (unit, rest) = if let Some(body_len) = class_body_len(pattern) {
        (
            Unit::Class(parse_class(&pattern[1..1 + body_len])),
            &pattern[body_len + 2..],
        )
    } else if let Some(rest) = pattern
        .strip_prefix(r"\PC")
        .or(pattern.strip_prefix(r"\p{C}"))
    {
        (Unit::NonControl, rest)
    } else if let Some(rest) = pattern.strip_prefix('.') {
        (Unit::AnyNonNewline, rest)
    } else {
        return (Unit::Literal(pattern.to_string()), 1, 1);
    };
    let (min, max) = match parse_repetition(rest) {
        Some(bounds) => bounds,
        None => panic!(
            "unsupported string-strategy pattern {pattern:?}; this offline proptest shim \
             understands `\\PC`, `.`, or `[class]`, optionally followed by `{{n}}` or \
             `{{min,max}}`, or a plain literal"
        ),
    };
    assert!(min <= max, "bad repetition in pattern {pattern:?}");
    (unit, min, max)
}

/// If `pattern` starts with a character class, returns the byte length of the
/// class body (between `[` and its closing unescaped `]`).
fn class_body_len(pattern: &str) -> Option<usize> {
    let body = pattern.strip_prefix('[')?;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' => escaped = true,
            ']' => return Some(i),
            _ => {}
        }
    }
    None
}

/// Parses the text after a unit: empty (one occurrence), `{n}`, or `{min,max}`.
fn parse_repetition(rest: &str) -> Option<(usize, usize)> {
    if rest.is_empty() {
        return Some((1, 1));
    }
    let reps = rest.strip_prefix('{')?.strip_suffix('}')?;
    match reps.split_once(',') {
        Some((lo, hi)) => Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?)),
        None => {
            let n = reps.trim().parse().ok()?;
            Some((n, n))
        }
    }
}

fn parse_class(body: &str) -> Vec<char> {
    let chars: Vec<char> = body.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if chars[i] == '\\' && i + 1 < chars.len() {
            out.push(chars[i + 1]);
            i += 2;
        } else if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i], chars[i + 2]);
            assert!(lo <= hi, "bad range {lo}-{hi} in character class");
            out.extend((lo..=hi).filter_map(|c| char::from_u32(c as u32)));
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty character class");
    out
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::case_rng;

    #[test]
    fn class_with_range_and_literals() {
        let mut rng = case_rng("string::class", 0);
        for _ in 0..200 {
            let s = "[ab0-3x]{1,5}".generate(&mut rng);
            assert!((1..=5).contains(&s.chars().count()));
            assert!(
                s.chars().all(|c| "ab0123x".contains(c)),
                "bad char in {s:?}"
            );
        }
    }

    #[test]
    fn non_control_never_emits_control_chars() {
        let mut rng = case_rng("string::pc", 0);
        for _ in 0..200 {
            let s = r"\PC{0,64}".generate(&mut rng);
            assert!(s.chars().count() <= 64);
            assert!(s.chars().all(|c| !c.is_control()), "control char in {s:?}");
        }
    }

    /// Regression: the dsl_fuzz pattern has `{` and `}` *inside* the class;
    /// it must fuzz over the class alphabet, not collapse to a literal.
    #[test]
    fn class_containing_braces_still_fuzzes() {
        let mut rng = case_rng("string::braces", 0);
        let pattern = "[PRESNCEATR(){}:,=0-9 ]{0,48}";
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..100 {
            let s = pattern.generate(&mut rng);
            assert!(s.chars().count() <= 48);
            assert!(
                s.chars().all(|c| "PRESNCATR(){}:,=0123456789 ".contains(c)),
                "bad char in {s:?}"
            );
            distinct.insert(s);
        }
        assert!(
            distinct.len() > 50,
            "not fuzzing: {} distinct",
            distinct.len()
        );
    }

    #[test]
    fn unicode_category_alias_with_repetition() {
        let mut rng = case_rng("string::pc_alias", 0);
        let s = r"\p{C}{5,5}".generate(&mut rng);
        assert_eq!(s.chars().count(), 5);
        assert!(s.chars().all(|c| !c.is_control()));
    }

    #[test]
    fn plain_literal_passes_through() {
        let mut rng = case_rng("string::lit", 0);
        assert_eq!("PRESENCE".generate(&mut rng), "PRESENCE");
    }
}
