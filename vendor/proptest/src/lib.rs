//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, providing the subset the PriSTE test suites use:
//!
//! - the [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//!   `prop_flat_map` / `boxed`,
//! - range, tuple, [`strategy::Just`], `collection::vec` and [`mod@bool`]
//!   strategies,
//! - the [`proptest!`] macro with `#![proptest_config(..)]` support,
//! - [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from upstream, deliberately accepted for an offline build:
//! no shrinking (a failing case panics with the sampled inputs available via
//! the deterministic per-test RNG), no persisted failure files, and no
//! `any::<T>()` reflection. Each `#[test]` inside [`proptest!`] derives its
//! RNG seed from the fully-qualified test name plus the case index, so
//! failures reproduce exactly across runs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
mod string;
pub mod test_runner;

/// Declares property tests.
///
/// Accepts an optional leading `#![proptest_config(expr)]`, then any number
/// of functions of the form `#[test] fn name(pat in strategy, ...) { body }`.
/// Each function is rewritten to a zero-argument `#[test]` that samples its
/// strategies `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __name = concat!(module_path!(), "::", stringify!($name));
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::case_rng(__name, __case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (panics on failure; this shim
/// does no shrinking, so it is equivalent to `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (equivalent to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (equivalent to `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
