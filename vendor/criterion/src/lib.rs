//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! Implements the API surface the `priste_bench` benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — with
//! a simple median-of-samples wall-clock timer instead of criterion's full
//! statistical machinery. Results print as one line per benchmark:
//!
//! ```text
//! group/name/param        time: [median 1.234 ms over 10 samples]
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub use std::hint::black_box;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLE_SIZE: usize = 10;

/// Entry point handed to benchmark functions by `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, DEFAULT_SAMPLE_SIZE, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples (criterion requires ≥ 10; we accept
    /// anything ≥ 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Lets later samples run shorter; accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let mut bencher = Bencher::with_target(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&label);
        self
    }

    /// Ends the group (prints nothing extra; provided for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark (`name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a display label; lets `bench_function` accept either a
/// `&str` or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The display label for the benchmark.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    fn with_target(target: usize) -> Self {
        Bencher {
            samples: Vec::new(),
            target,
        }
    }

    /// Times `routine`: one warm-up call, then timed samples until either
    /// the configured sample count (`sample_size`, default 10) is collected
    /// or a ~3 s budget is spent, whichever comes first. The closure's
    /// return value is passed through [`black_box`] so it is not optimized
    /// away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let budget = Duration::from_secs(3);
        black_box(routine());
        let began = Instant::now();
        loop {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if self.samples.len() >= self.target || began.elapsed() > budget {
                break;
            }
        }
    }

    fn report(&mut self, label: &str) {
        let mut samples = std::mem::take(&mut self.samples);
        samples.sort();
        if samples.is_empty() {
            println!("{label:<40} time: [no samples]");
            return;
        }
        let median = samples[samples.len() / 2];
        let truncated = if samples.len() < self.target {
            " (time-budget capped)"
        } else {
            ""
        };
        println!(
            "{label:<40} time: [median {:?} over {} sample(s){truncated}]",
            median,
            samples.len(),
        );
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher::with_target(sample_size);
    f(&mut bencher);
    bencher.report(label);
}

/// Defines a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $cfg;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
