//! Concrete generators. Only [`StdRng`] is provided; it is the single
//! generator used throughout the workspace.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator.
///
/// Small, fast, and passes BigCrush; plenty for tests, benches, and the
/// simulation workloads in this repo. Not cryptographically secure, and not
/// stream-compatible with the upstream `rand::rngs::StdRng` (which nothing
/// here requires).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = Self::rotl(self.s[3], 45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state is a fixed point of xoshiro; nudge it.
        if s.iter().all(|&w| w == 0) {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}
