//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides exactly the API surface the PriSTE workspace uses:
//!
//! - [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! - [`rngs::StdRng`] (a deterministic xoshiro256++ generator),
//! - `gen::<f64>()`, `gen_range(..)` over integer/float ranges, `gen_bool(p)`.
//!
//! Determinism contract: `StdRng::seed_from_u64(s)` produces an identical
//! stream on every platform and every run, which is what the test suites and
//! seeded examples rely on. The streams are *not* bit-compatible with the real
//! `rand` crate — nothing in this workspace depends on the upstream streams.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source. Object-safe; `Rng` is blanket-implemented
/// on top of it so `&mut dyn RngCore` gets the high-level methods too.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (byte array).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 so
    /// that nearby seeds yield uncorrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (uniform in `[0, 1)` for floats, uniform over all values for ints).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait SampleStandard: Sized {
    /// Samples one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Lemire-style unbiased-enough bounded sampling via 128-bit multiply-shift.
// The residual bias is < 2^-64 per draw, irrelevant for tests and benches.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let u = f64::sample_standard(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let u = f64::sample_standard(rng) as $t;
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let x = rng.gen_range(-1.5f64..1.5);
            assert!((-1.5..1.5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all buckets should be hit: {seen:?}"
        );
    }

    #[test]
    fn dyn_rngcore_gets_rng_methods() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = Rng::gen::<f64>(dyn_rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 27];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
