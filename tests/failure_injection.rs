//! Failure-injection and adversarial-condition tests: the framework must
//! degrade with clear errors (or safe fallbacks), never silently.

use priste::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn world() -> (GridMap, MarkovModel) {
    priste::core::test_support::gaussian_world(3, 1.0)
}

/// A mechanism source that fails after a configurable number of steps —
/// models an upstream fault (e.g. a posterior service going away).
struct FailingSource {
    inner: PlmSource,
    fail_after: usize,
    calls: usize,
}

impl MechanismSource for FailingSource {
    fn base_mechanism(&mut self, t: usize) -> priste::core::Result<Arc<Box<dyn Lppm>>> {
        self.calls += 1;
        if self.calls > self.fail_after {
            return Err(priste::core::CoreError::InvalidConfig {
                message: format!("injected fault at t={t}"),
            });
        }
        self.inner.base_mechanism(t)
    }

    fn on_release(&mut self, t: usize, observed: CellId, col: &Vector) -> priste::core::Result<()> {
        self.inner.on_release(t, observed, col)
    }

    fn base_budget(&self) -> f64 {
        0.5
    }
}

#[test]
fn source_faults_surface_as_errors_not_silent_releases() {
    let (grid, chain) = world();
    let events = vec![parse_event("PRESENCE(S={1:3}, T={2:3})", 9).unwrap()];
    let source = FailingSource {
        inner: PlmSource::new(grid.clone(), 0.5).unwrap(),
        fail_after: 2,
        calls: 0,
    };
    let mut priste = Priste::new(
        &events,
        Homogeneous::new(chain),
        source,
        grid,
        PristeConfig::with_epsilon(1.0),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    assert!(priste.release(CellId(0), &mut rng).is_ok());
    assert!(priste.release(CellId(1), &mut rng).is_ok());
    let err = priste.release(CellId(2), &mut rng).unwrap_err();
    assert!(err.to_string().contains("injected fault"), "{err}");
    // The framework did not advance past the failed step.
    assert_eq!(priste.released(), 2);
}

#[test]
fn invalid_configurations_are_rejected_up_front() {
    let (grid, chain) = world();
    let events = vec![parse_event("PRESENCE(S={1:3}, T={2:3})", 9).unwrap()];
    for config in [
        PristeConfig {
            epsilon: -1.0,
            ..Default::default()
        },
        PristeConfig {
            decay: 0.0,
            ..Default::default()
        },
        PristeConfig {
            decay: 1.5,
            ..Default::default()
        },
        PristeConfig {
            max_attempts: 0,
            ..Default::default()
        },
    ] {
        let source = PlmSource::new(grid.clone(), 0.5).unwrap();
        assert!(Priste::new(
            &events,
            Homogeneous::new(chain.clone()),
            source,
            grid.clone(),
            config
        )
        .is_err());
    }
}

#[test]
fn event_domain_mismatch_fails_at_construction() {
    let (grid, chain) = world();
    // Event over a 16-cell domain against a 9-cell world.
    let events = vec![parse_event("PRESENCE(S={1:4}, T={2:3})", 16).unwrap()];
    let source = PlmSource::new(grid.clone(), 0.5).unwrap();
    assert!(Priste::new(
        &events,
        Homogeneous::new(chain),
        source,
        grid,
        PristeConfig::default()
    )
    .is_err());
}

#[test]
fn deadline_zero_forces_conservative_fallbacks_but_never_unsoundness() {
    // A deadline no check can meet: everything falls back to uniform
    // releases (budget 0) — maximum conservatism, zero leakage.
    let (grid, chain) = world();
    let event = parse_event("PRESENCE(S={1:3}, T={2:3})", 9).unwrap();
    let events = vec![event.clone()];
    let mut config = PristeConfig::with_epsilon(0.5);
    config.qp_deadline = Some(std::time::Duration::from_nanos(1));
    config.max_attempts = 3;
    let source = PlmSource::new(grid.clone(), 0.5).unwrap();
    let mut priste = Priste::new(
        &events,
        Homogeneous::new(chain.clone()),
        source,
        grid.clone(),
        config,
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let traj = chain.sample_trajectory(CellId(4), 5, &mut rng).unwrap();
    let mut adversary =
        BayesianAdversary::new(&event, Homogeneous::new(chain), Vector::uniform(9)).unwrap();
    for &loc in &traj {
        let rec = priste.release(loc, &mut rng).unwrap();
        assert_eq!(
            rec.final_budget, 0.0,
            "nothing should certify under a 1ns deadline"
        );
        assert!(rec.conservative_hits > 0);
        let uniform = UniformMechanism::new(9);
        let inf = adversary
            .observe(&uniform.emission_column(rec.observed))
            .unwrap();
        assert!(
            (inf.odds_lift - 1.0).abs() < 1e-9,
            "uniform releases leak nothing"
        );
    }
}

#[test]
fn reducible_chain_with_unreachable_event_region_is_degenerate_not_wrong() {
    // A chain that never leaves its half of the map: an event on the other
    // half has prior 0 for point priors there — quantification reports
    // degeneracy rather than fabricating a ratio.
    let m = Matrix::from_rows(&[
        vec![0.5, 0.5, 0.0, 0.0],
        vec![0.5, 0.5, 0.0, 0.0],
        vec![0.0, 0.0, 0.5, 0.5],
        vec![0.0, 0.0, 0.5, 0.5],
    ])
    .unwrap();
    let chain = MarkovModel::new(m).unwrap();
    let event = parse_event("PRESENCE(S={3:4}, T={2:3})", 4).unwrap();
    // Prior concentrated on the unreachable component.
    let pi = Vector::from(vec![0.5, 0.5, 0.0, 0.0]);
    assert!(FixedPiQuantifier::new(&event, Homogeneous::new(chain), pi).is_err());
}

#[test]
fn delta_source_survives_surprising_observations() {
    // Force observations that the posterior considered unlikely (true
    // location far from the posterior mode): the posterior update must stay
    // a valid distribution and never panic.
    let (grid, chain) = world();
    let events = vec![parse_event("PRESENCE(S={1:3}, T={2:3})", 9).unwrap()];
    let source = DeltaLocSource::new(
        grid.clone(),
        0.5, // aggressive restriction
        0.8,
        chain.clone(),
        Vector::uniform(9),
    )
    .unwrap();
    let mut priste = Priste::new(
        &events,
        Homogeneous::new(chain),
        source,
        grid,
        PristeConfig::with_epsilon(1.0),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    // Teleporting true locations (corner to corner) stress the tracker.
    for &loc in &[CellId(0), CellId(8), CellId(0), CellId(8), CellId(2)] {
        priste.release(loc, &mut rng).unwrap();
        priste.source().posterior().validate_distribution().unwrap();
    }
}
