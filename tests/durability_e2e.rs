//! Kill-and-restart durability suite: the recovered `BudgetLedger` must
//! never under-count spend, recovery must be byte-deterministic, and a
//! continued stream must still certify at the target ε*.
//!
//! Scenario: an enforcing commuter stream (GeoLife-sim world) journaling
//! to a tempdir with `snapshot_every: 0`, so everything after the opening
//! snapshot lives in the WAL — dropping the service mid-stream is a crash,
//! and recovery exercises the full deterministic-replay path.

use priste::obs::json::Json;
use priste::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const TARGET: f64 = 0.8;

fn unique_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "priste-durability-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The enforcing commuter scenario over a durable directory. WAL-only
/// persistence (`snapshot_every: 0`): checkpoints happen only when a test
/// asks for one.
fn commuter_pipeline(dir: &Path) -> Pipeline {
    observed_commuter_pipeline(dir, None)
}

/// Same scenario, optionally with a metrics registry attached.
fn observed_commuter_pipeline(dir: &Path, registry: Option<&Registry>) -> Pipeline {
    let world = geolife_sim::build(&geolife_sim::CommuterConfig {
        rows: 4,
        cols: 4,
        seed: 5,
        ..Default::default()
    })
    .unwrap();
    let mut builder = Pipeline::on_world(&world)
        .event_spec("PRESENCE(S={1:4}, T={2:4})")
        .planar_laplace(2.0)
        .target_epsilon(TARGET)
        .service_config(OnlineConfig {
            num_shards: 2,
            budget: 40.0,
            ..OnlineConfig::default()
        })
        .durable(dir)
        .durable_options(DurableOptions {
            fsync: false,
            snapshot_every: 0,
        });
    if let Some(registry) = registry {
        builder = builder.observe(registry);
    }
    builder.build().unwrap()
}

/// Streams `steps` enforced releases for each of `users` users (registering
/// ids the service does not already know) and returns the worst realized
/// loss observed across every committed window.
fn drive(
    svc: &mut SessionManager<SharedProvider>,
    pipeline: &Pipeline,
    users: u64,
    steps: usize,
    seed: u64,
) -> f64 {
    let chain = pipeline.chain().expect("commuter world has a chain");
    let m = pipeline.num_cells();
    let mut rng = StdRng::seed_from_u64(seed);
    for u in 0..users {
        if svc.session(UserId(u)).is_none() {
            svc.add_user(UserId(u), Vector::uniform(m)).unwrap();
            svc.attach_event(UserId(u), 0).unwrap();
        }
    }
    let trajectories: Vec<Vec<CellId>> = (0..users)
        .map(|_| {
            chain
                .sample_trajectory_from(&Vector::uniform(m), steps, &mut rng)
                .unwrap()
        })
        .collect();
    let mut worst = 0.0f64;
    for t in 0..steps {
        for (u, traj) in trajectories.iter().enumerate() {
            let rel = svc.release(UserId(u as u64), traj[t], &mut rng).unwrap();
            assert!(
                rel.report.worst_loss.is_finite(),
                "planar-Laplace columns are strictly positive, loss must be finite"
            );
            worst = worst.max(rel.report.worst_loss);
        }
    }
    worst
}

/// Per-user ledger spend, in user-id order.
fn spends(svc: &SessionManager<SharedProvider>) -> Vec<(u64, f64)> {
    svc.users()
        .into_iter()
        .map(|id| (id.0, svc.session(id).unwrap().ledger().spent()))
        .collect()
}

#[test]
fn kill_and_restart_recovers_exact_committed_spend() {
    let dir = unique_dir("restart");
    let pipeline = commuter_pipeline(&dir);
    let mut svc = pipeline.serve_enforcing().unwrap();
    let worst = drive(&mut svc, &pipeline, 4, 6, 11);
    assert!(worst <= TARGET + 1e-9, "enforcing stream leaked: {worst}");
    let committed = spends(&svc);
    assert!(committed.iter().all(|&(_, s)| s > 0.0));
    let digest = svc.state_digest();
    drop(svc); // crash: no shutdown checkpoint — only the WAL survives

    // Read-only recovery reproduces the exact committed state...
    let recovered = pipeline.recover_service().unwrap();
    assert_eq!(recovered.state_digest(), digest);
    assert_eq!(spends(&recovered), committed);
    // ...and is byte-deterministic: a second recover from the same
    // directory yields the same bytes.
    let again = pipeline.recover_service().unwrap();
    assert_eq!(again.state_digest(), digest);

    // A reopened service continues from the recovered spend and the
    // continued stream still certifies at ε*.
    let mut reopened = commuter_pipeline(&dir).serve_enforcing().unwrap();
    assert_eq!(reopened.state_digest(), digest);
    assert_eq!(reopened.num_users(), 4);
    for u in 0..4 {
        // The recovered windows expired during the first run; protect a
        // fresh event so the continued stream accrues spend again.
        reopened.attach_event(UserId(u), 0).unwrap();
    }
    let worst = drive(&mut reopened, &pipeline, 4, 4, 13);
    assert!(worst <= TARGET + 1e-9, "continued stream leaked: {worst}");
    for ((u, before), (v, after)) in committed.iter().zip(spends(&reopened)) {
        assert_eq!(*u, v);
        assert!(after > *before, "spend must keep accumulating");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_final_wal_record_rounds_spend_up() {
    let dir = unique_dir("torn");
    let pipeline = commuter_pipeline(&dir);
    let mut svc = pipeline.serve_enforcing().unwrap();
    drive(&mut svc, &pipeline, 4, 6, 17);
    let committed = spends(&svc);
    drop(svc);

    // Tear the final record of the largest WAL segment: keep everything
    // but its last five bytes, as if the process died mid-`write`.
    let mut wals: Vec<(u64, PathBuf)> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"))
        })
        .map(|p| (std::fs::metadata(&p).unwrap().len(), p))
        .collect();
    wals.sort();
    let (len, torn) = wals.pop().unwrap();
    assert!(len > 64, "the stream must have journaled real records");
    let bytes = std::fs::read(&torn).unwrap();
    std::fs::write(&torn, &bytes[..bytes.len() - 5]).unwrap();

    // Conservative rounding: every recovered ledger covers its committed
    // spend, and the user owning the torn record is force-exhausted.
    let recovered = pipeline.recover_service().unwrap();
    let after = spends(&recovered);
    assert_eq!(after.len(), committed.len());
    for ((u, before), (v, now)) in committed.iter().zip(&after) {
        assert_eq!(u, v);
        assert!(
            *now >= *before,
            "user {u} under-counted: {now} < {before} after a torn WAL tail"
        );
    }
    assert!(
        after.iter().any(|&(_, s)| s.is_infinite()),
        "the torn record's owner must be exhausted"
    );
    // Torn-tail recovery is just as deterministic as the clean path.
    assert_eq!(
        pipeline.recover_service().unwrap().state_digest(),
        recovered.state_digest()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn exported_metrics_agree_with_service_stats_and_recovery_telemetry() {
    let dir = unique_dir("metrics");
    let registry = Registry::new();
    let pipeline = observed_commuter_pipeline(&dir, Some(&registry));
    let mut svc = pipeline.serve_enforcing().unwrap();
    drive(&mut svc, &pipeline, 4, 6, 31);

    // The exported counters and the `ServiceStats` shim read the same
    // cells — one source of truth.
    let stats = svc.stats();
    let doc = priste::obs::json::parse(&registry.render_json()).unwrap();
    let counters = doc.get("counters").unwrap();
    let counter = |name: &str| counters.get(name).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(
        counter("online_observations_total"),
        stats.observations as u64
    );
    assert_eq!(
        counter("online_verdicts_certified_total"),
        stats.certified as u64
    );
    assert_eq!(
        counter("online_verdicts_violated_total"),
        stats.violated as u64
    );
    assert_eq!(counter("online_suppressed_total"), stats.suppressed as u64);
    assert_eq!(
        counter("online_windows_evicted_total"),
        stats.evicted_windows as u64
    );
    // The durable substrate journaled real bytes and timed each append.
    assert!(counter("durable_wal_bytes_total") > 0);
    let appends = doc
        .get("histograms")
        .unwrap()
        .get("durable_wal_append_seconds")
        .and_then(|h| h.get("count"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(appends > 0, "WAL appends must be timed");
    drop(svc); // crash

    // Tear the largest WAL segment's tail, then recover under a fresh
    // registry: the recovery telemetry must land in the export.
    let mut wals: Vec<(u64, PathBuf)> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"))
        })
        .map(|p| (std::fs::metadata(&p).unwrap().len(), p))
        .collect();
    wals.sort();
    let (_, torn) = wals.pop().unwrap();
    let bytes = std::fs::read(&torn).unwrap();
    std::fs::write(&torn, &bytes[..bytes.len() - 5]).unwrap();

    let rec_registry = Registry::new();
    let pipeline = observed_commuter_pipeline(&dir, Some(&rec_registry));
    let recovered = pipeline.recover_service().unwrap();
    let info = recovered.recovery_info().expect("recovery telemetry");
    assert!(info.torn_records >= 1, "the torn tail must be counted");
    assert!(info.replayed_records > 0);
    let doc = priste::obs::json::parse(&rec_registry.render_json()).unwrap();
    let gauges = doc.get("gauges").unwrap();
    assert!(
        gauges
            .get("online_recovery_duration_seconds")
            .and_then(Json::as_f64)
            .unwrap()
            >= 0.0
    );
    assert_eq!(
        gauges
            .get("online_recovery_replayed_records")
            .and_then(Json::as_f64),
        Some(info.replayed_records as f64)
    );
    let counters = doc.get("counters").unwrap();
    assert_eq!(
        counters
            .get("online_recovery_torn_records_total")
            .and_then(Json::as_u64),
        Some(info.torn_records)
    );
    // The restored service counters are visible through the new registry.
    assert_eq!(
        counters
            .get("online_observations_total")
            .and_then(Json::as_u64),
        Some(recovered.stats().observations as u64)
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_then_tail_replay_agree_with_memory() {
    // Mixed recovery: part of the state comes from a mid-stream snapshot,
    // the rest from WAL-tail replay on top of it.
    let dir = unique_dir("mixed");
    let pipeline = commuter_pipeline(&dir);
    let mut svc = pipeline.serve_enforcing().unwrap();
    drive(&mut svc, &pipeline, 3, 4, 23);
    svc.checkpoint().unwrap();
    drive(&mut svc, &pipeline, 3, 3, 29);
    let digest = svc.state_digest();
    drop(svc);
    assert_eq!(pipeline.recover_service().unwrap().state_digest(), digest);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Strategy: a batch of strictly positive emission columns over `m` cells
/// assigned to users `0..3`.
fn observations(m: usize) -> impl Strategy<Value = Vec<(u64, Vec<f64>)>> {
    proptest::collection::vec((0u64..3, proptest::collection::vec(0.05f64..1.0, m)), 1..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// recover ∘ (snapshot + replay) is the identity on arbitrary
    /// committed session states: whatever mix of observations lands in
    /// the snapshot versus the WAL tail, the recovered bytes equal the
    /// pre-crash bytes.
    #[test]
    fn recovery_is_identity_on_committed_states(
        ops in observations(4),
        snapshot_every in 0usize..6,
    ) {
        let dir = unique_dir("prop");
        let grid = GridMap::new(2, 2, 1.0).unwrap();
        let chain = gaussian_kernel_chain(&grid, 1.0).unwrap();
        let pipeline = Pipeline::on(grid)
            .mobility(chain)
            .event_spec("PRESENCE(S={1:2}, T={2:3})")
            .service_config(OnlineConfig { num_shards: 2, ..OnlineConfig::default() })
            .durable(&dir)
            .durable_options(DurableOptions { fsync: false, snapshot_every })
            .build()
            .unwrap();
        let mut svc = pipeline.serve().unwrap();
        for u in 0..3u64 {
            svc.add_user(UserId(u), Vector::uniform(4)).unwrap();
            svc.attach_event(UserId(u), 0).unwrap();
        }
        for (u, col) in ops {
            svc.ingest(UserId(u), Vector::from(col)).unwrap();
        }
        let digest = svc.state_digest();
        drop(svc);
        prop_assert_eq!(pipeline.recover_service().unwrap().state_digest(), digest);
        prop_assert_eq!(pipeline.recover_service().unwrap().state_digest(), digest);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
