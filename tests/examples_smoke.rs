//! Smoke tests for the runnable targets: the `priste_cli` binary and the
//! `examples/`.
//!
//! Compilation of all five examples is already gated by `cargo test` itself
//! (cargo builds example targets as part of the test profile, and each is
//! declared in `Cargo.toml`); these tests additionally prove the seeded entry
//! points *run to completion*.

use std::process::Command;

/// Runs the CLI binary (built for us by cargo, path injected via
/// `CARGO_BIN_EXE_*`) and returns (status-ok, stdout, stderr).
fn run_cli(args: &[&str]) -> (bool, String, String) {
    let (code, stdout, stderr) = run_cli_code(args);
    (code == Some(0), stdout, stderr)
}

/// Like [`run_cli`] but exposes the raw exit code (the CLI distinguishes
/// usage errors, exit 2, from runtime failures, exit 1).
fn run_cli_code(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_priste_cli"))
        .args(args)
        .output()
        .expect("spawn priste_cli");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_world_summary_runs() {
    let (ok, stdout, stderr) = run_cli(&["world", "--side", "4", "--seed", "1"]);
    assert!(ok, "world failed: {stderr}");
    assert!(!stdout.trim().is_empty(), "world printed nothing");
}

#[test]
fn cli_protect_runs_end_to_end() {
    let (ok, stdout, stderr) = run_cli(&[
        "protect",
        "--event",
        "PRESENCE(S={1:4}, T={2:4})",
        "--side",
        "4",
        "--steps",
        "6",
        "--seed",
        "7",
    ]);
    assert!(ok, "protect failed: {stderr}");
    assert!(!stdout.trim().is_empty(), "protect printed nothing");
}

#[test]
fn cli_rejects_garbage_with_usage() {
    let (code, _stdout, stderr) = run_cli_code(&["frobnicate"]);
    assert_eq!(code, Some(2), "unknown command is a usage error");
    assert!(stderr.contains("usage:"), "no usage in: {stderr}");
}

#[test]
fn cli_missing_command_prints_usage_for_all_six_subcommands() {
    let (code, _stdout, stderr) = run_cli_code(&[]);
    assert_eq!(code, Some(2), "missing command is a usage error");
    for sub in [
        "world",
        "protect",
        "quantify",
        "check",
        "stream",
        "calibrate",
    ] {
        assert!(
            stderr.contains(&format!("priste-cli {sub}")),
            "usage must mention `{sub}`: {stderr}"
        );
    }
}

#[test]
fn cli_unknown_flag_exits_2_not_a_bare_error() {
    let (code, _stdout, stderr) = run_cli_code(&["stream", "--frobnicate", "1"]);
    assert_eq!(code, Some(2), "unknown flag must exit 2: {stderr}");
    assert!(
        stderr.contains("unknown flag --frobnicate for `stream`"),
        "stderr must name the flag and subcommand: {stderr}"
    );
    assert!(stderr.contains("usage:"), "no usage in: {stderr}");
}

#[test]
fn cli_help_prints_usage_on_stdout_and_succeeds() {
    let (code, stdout, _stderr) = run_cli_code(&["help"]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("usage:"), "help must print usage: {stdout}");
    assert!(stdout.contains("priste-cli calibrate"));
}

#[test]
fn cli_is_deterministic_under_a_fixed_seed() {
    let args = [
        "quantify",
        "--event",
        "PRESENCE(S={1:4}, T={2:4})",
        "--side",
        "4",
        "--steps",
        "5",
        "--seed",
        "3",
    ];
    let (ok1, out1, err1) = run_cli(&args);
    let (ok2, out2, _) = run_cli(&args);
    assert!(ok1 && ok2, "quantify failed: {err1}");
    assert_eq!(out1, out2, "same seed must reproduce the same releases");
}

#[test]
fn cli_stream_runs_and_reports_all_users() {
    let (ok, stdout, stderr) = run_cli(&[
        "stream", "--users", "10", "--steps", "6", "--side", "4", "--seed", "5",
    ]);
    assert!(ok, "stream failed: {stderr}");
    // Header + one line per user + totals.
    assert_eq!(stdout.lines().count(), 12, "unexpected output: {stdout}");
    assert!(stdout.starts_with("user,observations,worst_loss"));
    assert!(stdout.contains("total,10 users,60 observations"));
    assert!(
        stderr.contains("throughput:"),
        "throughput goes to stderr: {stderr}"
    );
}

#[test]
fn cli_stream_is_deterministic_under_a_fixed_seed() {
    let args = [
        "stream", "--users", "8", "--steps", "5", "--side", "4", "--seed", "11",
    ];
    let (ok1, out1, err1) = run_cli(&args);
    let (ok2, out2, _) = run_cli(&args);
    assert!(ok1 && ok2, "stream failed: {err1}");
    assert_eq!(out1, out2, "same seed must reproduce the same verdicts");
    // A different seed must actually change the feed.
    let mut reseeded = args;
    reseeded[reseeded.len() - 1] = "12";
    let (ok3, out3, _) = run_cli(&reseeded);
    assert!(ok3);
    assert_ne!(out1, out3, "different seeds should differ");
}

#[test]
fn cli_stream_stdout_is_byte_identical_with_metrics_on() {
    let path =
        std::env::temp_dir().join(format!("priste-smoke-metrics-{}.json", std::process::id()));
    let path_s = path.to_str().unwrap();
    let base = [
        "stream", "--users", "8", "--steps", "5", "--side", "4", "--seed", "11",
    ];
    let (ok1, plain, err1) = run_cli(&base);
    assert!(ok1, "plain stream failed: {err1}");
    let mut with_metrics = base.to_vec();
    with_metrics.extend(["--metrics-json", path_s, "--trace"]);
    let (ok2, observed, err2) = run_cli(&with_metrics);
    assert!(ok2, "observed stream failed: {err2}");
    assert_eq!(
        plain, observed,
        "metrics/tracing must never change a byte of stdout"
    );
    // The gauge lines and the dump confirmation go to stderr instead.
    assert!(err2.contains("metrics: step=1 "), "no gauge lines: {err2}");
    assert!(err2.contains("trace: "), "no span events: {err2}");
    assert!(
        err2.contains("metrics: registry snapshot written to"),
        "no dump note: {err2}"
    );
    // The dump is valid `priste-metrics/1` JSON agreeing with stdout.
    let doc = priste::obs::json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(|j| j.as_str()),
        Some(priste::obs::JSON_SCHEMA)
    );
    assert_eq!(
        doc.get("counters")
            .unwrap()
            .get("online_observations_total")
            .and_then(|j| j.as_u64()),
        Some(40),
        "8 users x 5 steps"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn cli_metrics_schema_command_prints_the_table() {
    let (ok, stdout, stderr) = run_cli(&["metrics"]);
    assert!(ok, "metrics failed: {stderr}");
    assert!(stdout.contains("priste-metrics/1"), "{stdout}");
    assert!(stdout.contains("online_observations_total,counter,"));
    assert!(stdout.contains("durable_wal_fsync_seconds,histogram,"));
    assert!(stdout.contains("guard_epsilon_spent,histogram,"));
}

#[test]
fn cli_stream_exits_2_on_bad_input() {
    for bad in [
        vec!["stream", "--users", "0"],
        vec!["stream", "--kind", "martian"],
        vec!["stream", "--event", "NOPE()", "--side", "4"],
        vec!["stream", "--epsilon", "-1", "--side", "4"],
        vec!["stream", "--users", "not-a-number"],
        vec!["stream", "--mode", "maybe", "--side", "4"],
    ] {
        let (code, _stdout, stderr) = run_cli_code(&bad);
        assert_eq!(code, Some(2), "{bad:?} should be a usage error");
        assert!(stderr.contains("usage:"), "no usage in: {stderr}");
    }
}

#[test]
fn cli_stream_enforce_mode_reports_suppressions_column() {
    let (ok, stdout, stderr) = run_cli(&[
        "stream",
        "--users",
        "4",
        "--steps",
        "4",
        "--side",
        "4",
        "--mode",
        "enforce",
        "--epsilon",
        "0.8",
        "--alpha",
        "2",
        "--seed",
        "9",
    ]);
    assert!(ok, "enforce stream failed: {stderr}");
    assert!(stdout.starts_with("user,observations,worst_loss,suppressed"));
    assert!(stdout.contains("total,4 users,16 observations"));
    assert!(stdout.contains("suppressed"), "totals: {stdout}");
}

/// The acceptance demo: on the commuter scenario the uncalibrated
/// planar-Laplace release FAILS the target ε* while the calibrated one
/// certifies it — deterministically.
#[test]
fn cli_calibrate_demo_uncalibrated_fails_and_calibrated_certifies() {
    let args = [
        "calibrate",
        "--kind",
        "commuter",
        "--side",
        "5",
        "--horizon",
        "3",
        "--steps",
        "6",
        "--target",
        "0.8",
        "--alpha",
        "2",
        "--seed",
        "3",
    ];
    let (ok, stdout, stderr) = run_cli(&args);
    assert!(ok, "calibrate failed: {stderr}");
    assert!(
        stdout.contains("FAILS ε* = 0.8"),
        "uncalibrated demo must fail the target: {stdout}"
    );
    assert!(
        stdout.contains("→ certified"),
        "calibrated demo must certify: {stdout}"
    );
    assert!(
        stdout.contains("t,budget,capacity,slack,verdict"),
        "plan table missing: {stdout}"
    );
    assert!(
        stdout.contains("planner,certified,epsilon,mean_budget,utility"),
        "comparison table missing: {stdout}"
    );
    assert!(
        stdout.contains("uniform-split,"),
        "baseline missing: {stdout}"
    );
    let (ok2, stdout2, _) = run_cli(&args);
    assert!(ok2);
    assert_eq!(stdout, stdout2, "calibrate must be seed-deterministic");
}

/// Golden regression for the `calibrate` plan tables: the full stdout of
/// the commuter demo under each `--planner` value is pinned byte-for-byte
/// against `tests/fixtures/` (the run is seeded and every float prints
/// with fixed precision, so any drift — planner behavior, table format,
/// summary lines — fails here instead of rotting silently).
#[test]
fn cli_calibrate_planner_tables_match_the_golden_fixtures() {
    for (planner, golden) in [
        (
            "uniform",
            include_str!("fixtures/calibrate_plan_uniform.stdout"),
        ),
        (
            "greedy",
            include_str!("fixtures/calibrate_plan_greedy.stdout"),
        ),
        (
            "knapsack",
            include_str!("fixtures/calibrate_plan_knapsack.stdout"),
        ),
    ] {
        let (ok, stdout, stderr) = run_cli(&[
            "calibrate",
            "--kind",
            "commuter",
            "--side",
            "5",
            "--horizon",
            "3",
            "--steps",
            "6",
            "--target",
            "0.8",
            "--alpha",
            "2",
            "--seed",
            "3",
            "--planner",
            planner,
        ]);
        assert!(ok, "calibrate --planner {planner} failed: {stderr}");
        assert_eq!(
            stdout, golden,
            "--planner {planner} output drifted from the golden fixture \
             (tests/fixtures/calibrate_plan_{planner}.stdout)"
        );
    }
}

/// The knapsack acceptance numbers, pinned at the CLI level too: the
/// comparison table must show the knapsack plan strictly ahead of greedy
/// on utility while both certify all steps and the uniform split fails.
#[test]
fn cli_calibrate_comparison_table_shows_the_utility_gap() {
    let golden = include_str!("fixtures/calibrate_plan_greedy.stdout");
    assert!(golden.contains("uniform-split,0/3,-,"));
    assert!(golden.contains("greedy,3/3,0.7279,0.0729,-112.0000"));
    assert!(golden.contains("knapsack,3/3,0.7547,0.0729,-85.3333"));
}

/// An unknown `--planner` value is a usage error: exit 2, message naming
/// the value, usage text appended.
#[test]
fn cli_calibrate_unknown_planner_exits_2() {
    let (code, _stdout, stderr) = run_cli_code(&["calibrate", "--side", "3", "--planner", "qp"]);
    assert_eq!(code, Some(2), "unknown planner must exit 2: {stderr}");
    assert!(
        stderr.contains("--planner must be uniform, greedy or knapsack"),
        "stderr must name the constraint: {stderr}"
    );
    assert!(stderr.contains("usage:"), "no usage in: {stderr}");
}

/// `stream --durable-dir` journals to the directory; a separate `recover`
/// invocation — a different process, i.e. a real restart — reads the same
/// state back and prints a deterministic digest.
#[test]
fn cli_stream_durable_recover_is_deterministic_across_processes() {
    let dir = std::env::temp_dir().join(format!("priste-smoke-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_s = dir.to_str().unwrap();
    let (ok, _stdout, stderr) = run_cli(&[
        "stream",
        "--users",
        "4",
        "--steps",
        "4",
        "--side",
        "4",
        "--seed",
        "9",
        "--durable-dir",
        dir_s,
    ]);
    assert!(ok, "durable stream failed: {stderr}");
    assert!(stderr.contains("durable: journaling"), "{stderr}");

    let recover = |args: &[&str]| run_cli(args);
    let (ok, first, stderr) = recover(&["recover", "--side", "4", "--durable-dir", dir_s]);
    assert!(ok, "recover failed: {stderr}");
    assert!(first.contains("state digest:"), "{first}");
    let (ok, second, _) = recover(&["recover", "--side", "4", "--durable-dir", dir_s]);
    assert!(ok);
    assert_eq!(first, second, "recovery must be byte-deterministic");

    // A mismatched scenario is refused (exit 1, fingerprint named).
    let (code, _stdout, stderr) = run_cli_code(&["recover", "--side", "5", "--durable-dir", dir_s]);
    assert_eq!(code, Some(1), "fingerprint mismatch must exit 1: {stderr}");
    assert!(stderr.contains("fingerprint"), "{stderr}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `examples/durable_service.rs` — the crash-and-recover walkthrough —
/// must run to completion and report an identical post-recovery digest.
#[test]
fn durable_service_example_runs_to_completion() {
    let out = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", "durable_service"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn cargo run --example durable_service");
    assert!(
        out.status.success(),
        "durable_service failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("identical"), "{stdout}");
    assert!(stdout.contains("forgot nothing"), "{stdout}");
}

/// `examples/quickstart.rs` (seeded with `StdRng::seed_from_u64(42)`) must
/// run to completion. Spawned through the same cargo that is running the
/// tests; the dev-profile example artifact is already built, so this is a
/// cache hit, not a second build.
#[test]
fn quickstart_example_runs_to_completion() {
    let out = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", "quickstart"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn cargo run --example quickstart");
    assert!(
        out.status.success(),
        "quickstart failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("OK"),
        "quickstart did not reach its final OK line: {stdout}"
    );
}
