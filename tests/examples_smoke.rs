//! Smoke tests for the runnable targets: the `priste_cli` binary and the
//! `examples/`.
//!
//! Compilation of all five examples is already gated by `cargo test` itself
//! (cargo builds example targets as part of the test profile, and each is
//! declared in `Cargo.toml`); these tests additionally prove the seeded entry
//! points *run to completion*.

use std::process::Command;

/// Runs the CLI binary (built for us by cargo, path injected via
/// `CARGO_BIN_EXE_*`) and returns (status-ok, stdout, stderr).
fn run_cli(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_priste_cli"))
        .args(args)
        .output()
        .expect("spawn priste_cli");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_world_summary_runs() {
    let (ok, stdout, stderr) = run_cli(&["world", "--side", "4", "--seed", "1"]);
    assert!(ok, "world failed: {stderr}");
    assert!(!stdout.trim().is_empty(), "world printed nothing");
}

#[test]
fn cli_protect_runs_end_to_end() {
    let (ok, stdout, stderr) = run_cli(&[
        "protect",
        "--event",
        "PRESENCE(S={1:4}, T={2:4})",
        "--side",
        "4",
        "--steps",
        "6",
        "--seed",
        "7",
    ]);
    assert!(ok, "protect failed: {stderr}");
    assert!(!stdout.trim().is_empty(), "protect printed nothing");
}

#[test]
fn cli_rejects_garbage_with_usage() {
    let (ok, _stdout, stderr) = run_cli(&["frobnicate"]);
    assert!(!ok, "garbage subcommand should fail");
    assert!(stderr.contains("usage:"), "no usage in: {stderr}");
}

#[test]
fn cli_is_deterministic_under_a_fixed_seed() {
    let args = [
        "quantify",
        "--event",
        "PRESENCE(S={1:4}, T={2:4})",
        "--side",
        "4",
        "--steps",
        "5",
        "--seed",
        "3",
    ];
    let (ok1, out1, err1) = run_cli(&args);
    let (ok2, out2, _) = run_cli(&args);
    assert!(ok1 && ok2, "quantify failed: {err1}");
    assert_eq!(out1, out2, "same seed must reproduce the same releases");
}

#[test]
fn cli_stream_runs_and_reports_all_users() {
    let (ok, stdout, stderr) = run_cli(&[
        "stream", "--users", "10", "--steps", "6", "--side", "4", "--seed", "5",
    ]);
    assert!(ok, "stream failed: {stderr}");
    // Header + one line per user + totals.
    assert_eq!(stdout.lines().count(), 12, "unexpected output: {stdout}");
    assert!(stdout.starts_with("user,observations,worst_loss"));
    assert!(stdout.contains("total,10 users,60 observations"));
    assert!(
        stderr.contains("throughput:"),
        "throughput goes to stderr: {stderr}"
    );
}

#[test]
fn cli_stream_is_deterministic_under_a_fixed_seed() {
    let args = [
        "stream", "--users", "8", "--steps", "5", "--side", "4", "--seed", "11",
    ];
    let (ok1, out1, err1) = run_cli(&args);
    let (ok2, out2, _) = run_cli(&args);
    assert!(ok1 && ok2, "stream failed: {err1}");
    assert_eq!(out1, out2, "same seed must reproduce the same verdicts");
    // A different seed must actually change the feed.
    let mut reseeded = args;
    reseeded[reseeded.len() - 1] = "12";
    let (ok3, out3, _) = run_cli(&reseeded);
    assert!(ok3);
    assert_ne!(out1, out3, "different seeds should differ");
}

#[test]
fn cli_stream_exits_nonzero_on_bad_input() {
    for bad in [
        vec!["stream", "--users", "0"],
        vec!["stream", "--kind", "martian"],
        vec!["stream", "--event", "NOPE()", "--side", "4"],
        vec!["stream", "--epsilon", "-1", "--side", "4"],
        vec!["stream", "--users", "not-a-number"],
    ] {
        let (ok, _stdout, stderr) = run_cli(&bad);
        assert!(!ok, "{bad:?} should fail");
        assert!(stderr.contains("usage:"), "no usage in: {stderr}");
    }
}

/// `examples/quickstart.rs` (seeded with `StdRng::seed_from_u64(42)`) must
/// run to completion. Spawned through the same cargo that is running the
/// tests; the dev-profile example artifact is already built, so this is a
/// cache hit, not a second build.
#[test]
fn quickstart_example_runs_to_completion() {
    let out = Command::new(env!("CARGO"))
        .args(["run", "--quiet", "--example", "quickstart"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("spawn cargo run --example quickstart");
    assert!(
        out.status.success(),
        "quickstart failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("OK"),
        "quickstart did not reach its final OK line: {stdout}"
    );
}
