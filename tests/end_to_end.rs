//! Cross-crate integration tests: the full PriSTE pipeline from world
//! construction through release to post-hoc verification, for both
//! framework instantiations.

use priste::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn world() -> (GridMap, MarkovModel) {
    priste::core::test_support::gaussian_world(4, 1.0)
}

/// Re-derives the emission column a release was produced under.
fn released_column(grid: &GridMap, rec: &ReleaseRecord) -> Vector {
    let mech: Box<dyn Lppm> = if rec.final_budget == 0.0 {
        Box::new(UniformMechanism::new(grid.num_cells()))
    } else {
        Box::new(PlanarLaplace::new(grid.clone(), rec.final_budget).unwrap())
    };
    mech.emission_column(rec.observed)
}

#[test]
fn algorithm2_guarantees_hold_for_many_adversarial_priors() {
    let (grid, chain) = world();
    let event = parse_event("PRESENCE(S={1:4}, T={2:4})", grid.num_cells()).unwrap();
    let events = vec![event.clone()];
    let epsilon = 0.7;
    let source = PlmSource::new(grid.clone(), 0.6).unwrap();
    let mut priste = Priste::new(
        &events,
        Homogeneous::new(chain.clone()),
        source,
        grid.clone(),
        PristeConfig::with_epsilon(epsilon),
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(123);
    let traj = chain.sample_trajectory(CellId(5), 7, &mut rng).unwrap();
    let mut columns = Vec::new();
    for &loc in &traj {
        let rec = priste.release(loc, &mut rng).unwrap();
        columns.push(released_column(&grid, &rec));
    }

    // Verify against a battery of adversarial priors: uniform, several
    // random simplex points, and near-point-masses (smoothed so the prior
    // is non-degenerate).
    let mut priors = vec![Vector::uniform(16)];
    let mut prior_rng = StdRng::seed_from_u64(321);
    for _ in 0..8 {
        let raw: Vec<f64> = (0..16)
            .map(|_| rand::Rng::gen::<f64>(&mut prior_rng) + 1e-3)
            .collect();
        let mut v = Vector::from(raw);
        v.normalize_mut().unwrap();
        priors.push(v);
    }
    for i in 0..16 {
        let mut v = Vector::filled(16, 0.002 / 15.0);
        v[i] = 0.998;
        priors.push(v);
    }

    for pi in priors {
        let Ok(mut q) = FixedPiQuantifier::new(&event, Homogeneous::new(chain.clone()), pi.clone())
        else {
            continue; // degenerate prior for this event — nothing to bound
        };
        for col in &columns {
            let step = q.observe(col).unwrap();
            assert!(
                step.privacy_loss <= epsilon + 1e-6,
                "π {:?} t={}: loss {} > ε",
                pi.as_slice(),
                step.t,
                step.privacy_loss
            );
        }
    }
}

#[test]
fn algorithm3_releases_stay_within_the_location_set_and_hold_epsilon() {
    let (grid, chain) = world();
    let event = parse_event("PRESENCE(S={1:4}, T={2:4})", grid.num_cells()).unwrap();
    let events = vec![event.clone()];
    let epsilon = 0.8;
    let delta = 0.3;
    let source =
        DeltaLocSource::new(grid.clone(), delta, 0.8, chain.clone(), Vector::uniform(16)).unwrap();
    let mut priste = Priste::new(
        &events,
        Homogeneous::new(chain.clone()),
        source,
        grid.clone(),
        PristeConfig::with_epsilon(epsilon),
    )
    .unwrap();

    let mut rng = StdRng::seed_from_u64(5);
    let traj = chain.sample_trajectory(CellId(0), 6, &mut rng).unwrap();
    for &loc in &traj {
        let rec = priste.release(loc, &mut rng).unwrap();
        assert!(rec.observed.index() < 16);
        assert!(rec.final_budget <= 0.8);
    }
    // The posterior remains a valid distribution throughout.
    priste.source().posterior().validate_distribution().unwrap();
}

#[test]
fn multi_event_protection_binds_the_tighter_event() {
    let (grid, chain) = world();
    let near = parse_event("PRESENCE(S={1:4}, T={2:3})", 16).unwrap();
    let far = parse_event("PRESENCE(S={13:16}, T={5:6})", 16).unwrap();
    let both = vec![near.clone(), far.clone()];
    let single = vec![near.clone()];
    let mut budgets_both = Vec::new();
    let mut budgets_single = Vec::new();
    for (events, budgets) in [(&both, &mut budgets_both), (&single, &mut budgets_single)] {
        let source = PlmSource::new(grid.clone(), 0.5).unwrap();
        let mut priste = Priste::new(
            events,
            Homogeneous::new(chain.clone()),
            source,
            grid.clone(),
            PristeConfig::with_epsilon(0.3),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let traj = chain.sample_trajectory(CellId(5), 7, &mut rng).unwrap();
        for &loc in &traj {
            budgets.push(priste.release(loc, &mut rng).unwrap().final_budget);
        }
    }
    let sum = |v: &[f64]| v.iter().sum::<f64>();
    assert!(
        sum(&budgets_both) <= sum(&budgets_single) + 1e-9,
        "protecting two events cannot be cheaper than one: {budgets_both:?} vs {budgets_single:?}"
    );
}

#[test]
fn dsl_specified_pattern_flows_through_the_framework() {
    let (grid, chain) = world();
    let event = parse_event("PATTERN(S=[{1:4},{5:8},{9:12}], T={2:4})", 16).unwrap();
    assert_eq!(event.window_len(), 3);
    let events = vec![event];
    let source = PlmSource::new(grid.clone(), 0.4).unwrap();
    let mut priste = Priste::new(
        &events,
        Homogeneous::new(chain.clone()),
        source,
        grid.clone(),
        PristeConfig::with_epsilon(1.0),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    let traj = chain.sample_trajectory(CellId(10), 6, &mut rng).unwrap();
    for &loc in &traj {
        priste.release(loc, &mut rng).unwrap();
    }
    assert_eq!(priste.released(), 6);
}

#[test]
fn geolife_sim_world_supports_full_pipeline() {
    let world = geolife_sim::build(&geolife_sim::CommuterConfig {
        rows: 6,
        cols: 6,
        cell_size_km: 2.0,
        days: 8,
        steps_per_day: 16,
        seed: 3,
        ..Default::default()
    })
    .unwrap();
    let event = parse_event("PRESENCE(S={1:6}, T={3:5})", 36).unwrap();
    let events = vec![event];
    let source = PlmSource::new(world.grid.clone(), 0.5).unwrap();
    let mut priste = Priste::new(
        &events,
        Homogeneous::new(world.chain.clone()),
        source,
        world.grid.clone(),
        PristeConfig::with_epsilon(1.0),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    for &loc in world.trajectories[0].iter().take(10) {
        priste.release(loc, &mut rng).unwrap();
    }
    assert_eq!(priste.released(), 10);
}

#[test]
fn quantification_pipeline_matches_brute_force_on_released_stream() {
    // End-to-end agreement: run the framework, then confirm the committed
    // stream's joint probabilities against naive enumeration.
    let grid = GridMap::new(2, 2, 1.0).unwrap();
    let chain = gaussian_kernel_chain(&grid, 1.0).unwrap();
    let event = parse_event("PRESENCE(S={1:2}, T={2:3})", 4).unwrap();
    let events = vec![event.clone()];
    let source = PlmSource::new(grid.clone(), 0.7).unwrap();
    let mut priste = Priste::new(
        &events,
        Homogeneous::new(chain.clone()),
        source,
        grid.clone(),
        PristeConfig::with_epsilon(1.5),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let traj = chain.sample_trajectory(CellId(0), 5, &mut rng).unwrap();
    let mut columns = Vec::new();
    for &loc in &traj {
        let rec = priste.release(loc, &mut rng).unwrap();
        columns.push(released_column(&grid, &rec));
    }

    let provider = Homogeneous::new(chain);
    let pi = Vector::uniform(4);
    let mut builder = TheoremBuilder::new(&event, provider.clone()).unwrap();
    for (t, col) in columns.iter().enumerate() {
        let inputs = builder.candidate(col).unwrap();
        let fast = pi.dot(&inputs.b).unwrap() * inputs.bc_log_scale.exp();
        let slow = naive::joint(&event, &&provider, &pi, &columns[..=t], 1 << 20).unwrap();
        assert!(
            (fast - slow).abs() <= 1e-10 * slow.max(1e-30),
            "t={}: {fast} vs {slow}",
            t + 1
        );
        builder.commit(col.clone()).unwrap();
    }
}
