//! API-surface guard: pins the facade's public contract so it cannot rot
//! silently.
//!
//! Three layers of pinning:
//! 1. every `prelude` symbol is imported *by name* (a removal or rename is
//!    a compile error here before it is a downstream breakage);
//! 2. the [`Pipeline`]/[`PipelineBuilder`] method set is pinned by taking
//!    each method as a typed function value;
//! 3. the concurrency contract — `SessionManager`, `Session`, `Pipeline`
//!    (and the error type) are `Send + Sync` — is asserted at compile
//!    time.

// Layer 1: every prelude symbol, by name. `self as _` would not catch a
// rename; this list does.
#[rustfmt::skip]
#[allow(unused_imports)]
use priste::prelude::{
    // facade
    Audit, AuditSource, Pipeline, PipelineBuilder, PristeError, SharedProvider,
    // calibrate
    plan_greedy, plan_knapsack, plan_uniform_split, BudgetPlan, CalibratedMechanism,
    CalibratedRelease, Decision, GuardConfig, MeanEpsilon, MechanismCache, OnExhaustion,
    PlanarLaplaceError, PlannedStep, PlannerConfig, PlmQualityLoss, UtilityModel,
    // core
    runner, DeltaLocSource, MechanismSource, PlmSource, Priste, PristeConfig, ReleaseRecord,
    // data
    geolife, geolife_sim, stats, synthetic, World,
    // event
    parse_event, EventExpr, Pattern, Predicate, Presence, StEvent,
    // geo
    CellId, GeoBounds, GpsPoint, GridMap, Region,
    // linalg
    Matrix, Vector,
    // lppm
    DeltaLocationSet, ExponentialMechanism, Lppm, PlanarLaplace, RandomizedResponse,
    UniformMechanism,
    // markov
    gaussian_kernel_chain, stationary_distribution, train_mle, Homogeneous, MarkovModel,
    TimeVarying, TransitionProvider,
    // online
    EnforcedRelease, OnlineConfig, OnlineError, ServiceStats, SessionManager, UserId,
    UserReport, Verdict, WindowReport,
    // qp
    ConstraintSet, SolverConfig, TheoremChecker, TheoremVerdict,
    // quantify
    forward_backward, naive, BayesianAdversary, FixedPiQuantifier, IncrementalTwoWorld,
    StreamStep, TheoremBuilder, TwoWorldEngine,
};
use priste::online::Session;
use priste::quantify::{attack::Inference, TheoremInputs};
use rand::RngCore;

fn assert_send_sync<T: Send + Sync>() {}
fn assert_send<T: Send>() {}

/// The hot service types must stay thread-safe: the parallel batched
/// ingest/release paths and any caller sharing a pipeline across workers
/// depend on it.
#[test]
fn service_and_pipeline_are_send_sync() {
    assert_send_sync::<SessionManager<SharedProvider>>();
    assert_send_sync::<Session<SharedProvider>>();
    assert_send_sync::<Pipeline>();
    assert_send_sync::<PipelineBuilder>();
    assert_send_sync::<PristeError>();
    assert_send_sync::<CalibratedMechanism<SharedProvider>>();
    assert_send_sync::<IncrementalTwoWorld<SharedProvider>>();
    assert_send_sync::<Box<dyn Lppm>>();
    assert_send::<Audit>();
}

/// Pins the `Pipeline`/`PipelineBuilder` method set. Removing or re-typing
/// any front-door method fails compilation here.
#[test]
#[allow(clippy::type_complexity)]
fn pipeline_method_set_is_pinned() {
    // Constructors.
    let _: fn(GridMap) -> PipelineBuilder = Pipeline::on;
    let _: fn(&World) -> PipelineBuilder = Pipeline::on_world;

    // Builder setters (fluent: each consumes and returns the builder).
    let _: fn(PipelineBuilder, MarkovModel) -> PipelineBuilder = PipelineBuilder::mobility;
    let _: fn(PipelineBuilder, Vec<MarkovModel>) -> PipelineBuilder =
        PipelineBuilder::mobility_schedule;
    let _: fn(PipelineBuilder, Homogeneous) -> PipelineBuilder =
        PipelineBuilder::mobility_provider::<Homogeneous>;
    let _: fn(PipelineBuilder, StEvent) -> PipelineBuilder = PipelineBuilder::event;
    let _: fn(PipelineBuilder, Vec<StEvent>) -> PipelineBuilder =
        PipelineBuilder::events::<Vec<StEvent>>;
    let _: fn(PipelineBuilder, &str) -> PipelineBuilder = PipelineBuilder::event_spec;
    let _: fn(PipelineBuilder, UniformMechanism) -> PipelineBuilder =
        PipelineBuilder::mechanism::<UniformMechanism>;
    let _: fn(PipelineBuilder, f64) -> PipelineBuilder = PipelineBuilder::planar_laplace;
    let _: fn(PipelineBuilder, f64) -> PipelineBuilder = PipelineBuilder::delta_location;
    let _: fn(PipelineBuilder, f64) -> PipelineBuilder = PipelineBuilder::target_epsilon;
    let _: fn(PipelineBuilder, Vector) -> PipelineBuilder = PipelineBuilder::initial;
    let _: fn(PipelineBuilder, PristeConfig) -> PipelineBuilder = PipelineBuilder::audit_config;
    let _: fn(PipelineBuilder, OnlineConfig) -> PipelineBuilder = PipelineBuilder::service_config;
    let _: fn(PipelineBuilder, GuardConfig) -> PipelineBuilder = PipelineBuilder::guard;
    let _: fn(PipelineBuilder, PlannerConfig) -> PipelineBuilder = PipelineBuilder::planner;
    let _: fn(PipelineBuilder) -> Result<Pipeline, PristeError> = PipelineBuilder::build;

    // Builder one-shot terminals.
    let _: fn(PipelineBuilder) -> Result<Audit, PristeError> = PipelineBuilder::audit;
    let _: fn(PipelineBuilder) -> Result<SessionManager<SharedProvider>, PristeError> =
        PipelineBuilder::serve;
    let _: fn(PipelineBuilder) -> Result<SessionManager<SharedProvider>, PristeError> =
        PipelineBuilder::serve_enforcing;
    let _: fn(PipelineBuilder) -> Result<CalibratedMechanism<SharedProvider>, PristeError> =
        PipelineBuilder::enforce;

    // Pipeline derivations (reusable: take &self).
    let _: fn(&Pipeline) -> Result<Audit, PristeError> = Pipeline::audit;
    let _: fn(&Pipeline) -> Result<SessionManager<SharedProvider>, PristeError> = Pipeline::serve;
    let _: fn(&Pipeline) -> Result<SessionManager<SharedProvider>, PristeError> =
        Pipeline::serve_enforcing;
    let _: fn(&Pipeline) -> Result<CalibratedMechanism<SharedProvider>, PristeError> =
        Pipeline::enforce;
    let _: fn(&Pipeline) -> Result<IncrementalTwoWorld<SharedProvider>, PristeError> =
        Pipeline::quantifier;
    let _: fn(&Pipeline) -> Result<Vec<IncrementalTwoWorld<SharedProvider>>, PristeError> =
        Pipeline::quantifiers;
    let _: fn(&Pipeline) -> Result<BayesianAdversary<SharedProvider>, PristeError> =
        Pipeline::adversary;
    let _: fn(&Pipeline) -> Result<(TheoremBuilder<SharedProvider>, TheoremChecker), PristeError> =
        Pipeline::checker;
    let _: fn(&Pipeline, usize) -> Result<BudgetPlan, PristeError> = Pipeline::plan_greedy;
    let _: fn(&Pipeline, usize) -> Result<BudgetPlan, PristeError> = Pipeline::plan_uniform_split;
    let _: fn(&Pipeline, usize) -> Result<BudgetPlan, PristeError> = Pipeline::plan_knapsack;
    let _: fn(&Pipeline, usize, &dyn UtilityModel) -> Result<BudgetPlan, PristeError> =
        Pipeline::plan_knapsack_with;
    let _: fn(
        &Pipeline,
        usize,
        &dyn UtilityModel,
    ) -> Result<(BudgetPlan, BudgetPlan, BudgetPlan), PristeError> = Pipeline::plan_all;
    let _: fn(&Pipeline) -> Result<Box<dyn Lppm>, PristeError> = Pipeline::mechanism_instance;

    // Pipeline accessors.
    let _: fn(&Pipeline) -> &GridMap = Pipeline::grid;
    let _: fn(&Pipeline) -> usize = Pipeline::num_cells;
    let _: fn(&Pipeline) -> Option<&MarkovModel> = Pipeline::chain;
    let _: fn(&Pipeline) -> SharedProvider = Pipeline::provider;
    let _: fn(&Pipeline) -> &[StEvent] = Pipeline::events;
    let _: fn(&Pipeline) -> f64 = Pipeline::target_epsilon;
    let _: fn(&Pipeline) -> &Vector = Pipeline::initial;
}

/// Pins the parallel batched service entry points the benches and the CLI
/// are built on.
#[test]
#[allow(clippy::type_complexity)]
fn parallel_service_methods_are_pinned() {
    type Mgr = SessionManager<SharedProvider>;
    let _: fn(&mut Mgr, &[(UserId, Vector)]) -> Result<Vec<UserReport>, OnlineError> =
        Mgr::ingest_batch;
    let _: fn(&mut Mgr, &[(UserId, Vector)], usize) -> Result<Vec<UserReport>, OnlineError> =
        Mgr::ingest_batch_parallel;
    let _: fn(
        &mut Mgr,
        &[(UserId, CellId)],
        u64,
        usize,
    ) -> Result<Vec<EnforcedRelease>, OnlineError> = Mgr::release_batch;
    let _: fn(&mut Mgr, UserId, CellId, &mut dyn RngCore) -> Result<EnforcedRelease, OnlineError> =
        Mgr::release;
}

/// Every fallible facade API returns `PristeError`, and the ten layer
/// errors convert into it with intact source chains.
#[test]
fn priste_error_wraps_every_layer() {
    use std::error::Error;
    fn depth(mut e: &dyn Error) -> usize {
        let mut d = 0;
        while let Some(next) = e.source() {
            e = next;
            d += 1;
        }
        d
    }
    let layered: Vec<PristeError> = vec![
        priste::linalg::LinalgError::Empty { op: "dot" }.into(),
        priste::geo::GeoError::EmptyGrid.into(),
        priste::markov::MarkovError::NoTrainingData.into(),
        priste::event::EventError::EmptyRegion.into(),
        priste::lppm::LppmError::InvalidBudget { value: 0.0 }.into(),
        priste::quantify::QuantifyError::ZeroLikelihood { t: 1 }.into(),
        priste::calibrate::CalibrateError::InvalidConfig {
            message: "c".into(),
        }
        .into(),
        priste::data::DataError::InsufficientData {
            message: "d".into(),
        }
        .into(),
        priste::core::CoreError::NoEvents.into(),
        priste::online::OnlineError::NotEnforcing.into(),
    ];
    assert_eq!(layered.len(), 10, "one variant per member crate");
    for e in &layered {
        assert!(depth(e) >= 1, "facade error must chain its cause: {e}");
    }

    // Deep chain: markov wraps linalg, facade wraps markov.
    let deep: PristeError = priste::markov::MarkovError::InvalidTransition(
        priste::linalg::LinalgError::NotStochastic { row: 2, sum: 1.3 },
    )
    .into();
    assert_eq!(depth(&deep), 2, "source() chain must reach the root cause");
}

/// Used-to-compile sanity: unused-import lint must not silently allow the
/// prelude import block above to rot (one symbol is exercised per family).
#[test]
fn prelude_symbols_are_usable() {
    let grid = GridMap::new(2, 2, 1.0).unwrap();
    let chain = gaussian_kernel_chain(&grid, 1.0).unwrap();
    let pipeline = Pipeline::on(grid)
        .mobility(chain)
        .event_spec("PRESENCE(S={1:2}, T={2:2})")
        .planar_laplace(1.0)
        .target_epsilon(1.0)
        .build()
        .unwrap();
    assert_eq!(pipeline.num_cells(), 4);
    assert_eq!(pipeline.events().len(), 1);
    let _: &Vector = pipeline.initial();
    let _unused: (Option<Inference>, Option<TheoremInputs>) = (None, None);
}
