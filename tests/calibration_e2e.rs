//! End-to-end acceptance for `priste-calibrate` on the commuter scenario:
//! the uncalibrated planar-Laplace release **fails** the target ε* while
//! the calibrated mechanism **certifies** it — plus the offline planner's
//! guarantees and the enforcing-mode service wiring, all library-level and
//! seed-deterministic (the CLI-level twin lives in `examples_smoke.rs`).

use priste::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 3;
const TARGET: f64 = 0.8;
const ALPHA: f64 = 2.0;

/// A small commuter world (GeoLife-sim): 5×5 grid, trained mobility chain.
fn commuter_world() -> (GridMap, MarkovModel) {
    let world = geolife_sim::build(&geolife_sim::CommuterConfig {
        rows: 5,
        cols: 5,
        seed: SEED,
        ..Default::default()
    })
    .unwrap();
    (world.grid, world.chain)
}

fn protected_event(m: usize) -> StEvent {
    parse_event(&format!("PRESENCE(S={{1:{}}}, T={{2:3}})", m / 4), m).unwrap()
}

#[test]
fn uncalibrated_fails_while_calibrated_certifies_on_the_commuter_scenario() {
    let (grid, chain) = commuter_world();
    let m = grid.num_cells();
    let event = protected_event(m);
    let provider = Homogeneous::new(chain.clone());
    let pi = Vector::uniform(m);
    let steps = 6usize;

    let mut rng = StdRng::seed_from_u64(SEED);
    let trajectory = chain.sample_trajectory_from(&pi, steps, &mut rng).unwrap();

    // Uncalibrated: the plain α-PLM stream violates the target.
    let plm = PlanarLaplace::new(grid.clone(), ALPHA).unwrap();
    let mut world = IncrementalTwoWorld::new(event.clone(), provider.clone(), pi.clone()).unwrap();
    let mut release_rng = StdRng::seed_from_u64(SEED + 1);
    let mut uncalibrated_worst = 0.0f64;
    for &loc in &trajectory {
        let obs = plm.perturb(loc, &mut release_rng);
        let step = world.observe(&plm.emission_column(obs)).unwrap();
        uncalibrated_worst = uncalibrated_worst.max(step.privacy_loss);
    }
    assert!(
        uncalibrated_worst > TARGET,
        "the demo needs a genuine violation: uncalibrated worst loss \
         {uncalibrated_worst} vs target {TARGET}"
    );

    // Calibrated: the guard certifies every committed prefix.
    let mut calibrated = CalibratedMechanism::new(
        Box::new(PlanarLaplace::new(grid, ALPHA).unwrap()),
        std::slice::from_ref(&event),
        provider.clone(),
        pi.clone(),
        GuardConfig {
            target_epsilon: TARGET,
            ..GuardConfig::default()
        },
    )
    .unwrap();
    let mut release_rng = StdRng::seed_from_u64(SEED + 1);
    let mut calibrated_worst = 0.0f64;
    let mut committed = Vec::new();
    for &loc in &trajectory {
        let rel = calibrated.release(loc, &mut release_rng).unwrap();
        assert!(rel.decision.certified());
        calibrated_worst = calibrated_worst.max(rel.loss);
        committed.push(rel);
    }
    assert!(
        calibrated_worst <= TARGET + 1e-9,
        "calibrated worst loss {calibrated_worst} must certify the target"
    );

    // Offline re-certification of the realized stream at ε*.
    let reference = PlanarLaplace::new(commuter_world().0, ALPHA).unwrap();
    let mut builder = TheoremBuilder::new(&event, provider).unwrap();
    for rel in &committed {
        let column = match &rel.decision {
            Decision::Released {
                observed, budget, ..
            } => {
                if *budget == ALPHA {
                    reference.emission_column(*observed)
                } else {
                    reference
                        .with_budget(*budget)
                        .unwrap()
                        .emission_column(*observed)
                }
            }
            Decision::Suppressed => Vector::filled(reference.num_cells(), {
                1.0 / reference.num_cells() as f64
            }),
        };
        let inputs = builder.candidate(&column).unwrap();
        let loss = inputs.privacy_loss(&pi).unwrap();
        assert!(
            loss <= TARGET + 1e-6,
            "t={}: offline replay loss {loss} exceeds the target",
            rel.t
        );
        builder.commit(column).unwrap();
    }
}

#[test]
fn greedy_plan_certifies_the_target_where_uniform_split_wastes_it() {
    let (grid, chain) = commuter_world();
    let m = grid.num_cells();
    let event = protected_event(m);
    let cfg = PlannerConfig::default();
    let horizon = 3usize;

    let greedy = plan_greedy(
        Box::new(PlanarLaplace::new(grid.clone(), ALPHA).unwrap()),
        &event,
        Homogeneous::new(chain.clone()),
        horizon,
        TARGET,
        &cfg,
    )
    .unwrap();
    assert!(greedy.all_certified(), "greedy plan: {greedy:?}");
    let certified = greedy.certified_epsilon().unwrap();
    assert!(
        certified <= TARGET + cfg.tolerance,
        "plan certifies ε = {certified} > target {TARGET}"
    );
    assert_eq!(greedy.steps.len(), horizon);

    let uniform = plan_uniform_split(
        Box::new(PlanarLaplace::new(grid, ALPHA).unwrap()),
        &event,
        Homogeneous::new(chain),
        horizon,
        TARGET,
        &cfg,
    )
    .unwrap();
    // On the strongly-correlated commuter chain the naive ε*/T split is
    // either uncertified or pays with far smaller slack headroom — the
    // planner must at minimum never do worse on certification.
    assert!(
        greedy.certified_steps() >= uniform.certified_steps(),
        "greedy {greedy:?} vs uniform {uniform:?}"
    );
}

/// The knapsack acceptance demo: on the commuter scenario the
/// utility-aware planner certifies at ε* and achieves *strictly* higher
/// total utility (negated expected planar-Laplace error) than both the
/// greedy-forward plan and the uniform split — the redistribution the
/// ROADMAP's knapsack item asked for.
#[test]
fn knapsack_plan_beats_greedy_and_uniform_on_utility() {
    let (grid, chain) = commuter_world();
    let m = grid.num_cells();
    let event = protected_event(m);
    let cfg = PlannerConfig::default();
    let horizon = 3usize;
    let model = PlanarLaplaceError;

    let greedy = plan_greedy(
        Box::new(PlanarLaplace::new(grid.clone(), ALPHA).unwrap()),
        &event,
        Homogeneous::new(chain.clone()),
        horizon,
        TARGET,
        &cfg,
    )
    .unwrap();
    let uniform = plan_uniform_split(
        Box::new(PlanarLaplace::new(grid.clone(), ALPHA).unwrap()),
        &event,
        Homogeneous::new(chain.clone()),
        horizon,
        TARGET,
        &cfg,
    )
    .unwrap();
    let knapsack = plan_knapsack(
        Box::new(PlanarLaplace::new(grid, ALPHA).unwrap()),
        &event,
        Homogeneous::new(chain),
        horizon,
        TARGET,
        &cfg,
        &model,
    )
    .unwrap();

    assert!(knapsack.all_certified(), "knapsack plan: {knapsack:?}");
    let certified = knapsack.certified_epsilon().unwrap();
    assert!(
        certified <= TARGET + cfg.tolerance,
        "knapsack certifies ε = {certified} > target {TARGET}"
    );

    // Utility of a plan that fails to certify is −∞: an uncertified
    // allocation "achieves" nothing at ε*.
    let certified_utility = |plan: &BudgetPlan| {
        if plan.all_certified() {
            plan.total_utility(&model)
        } else {
            f64::NEG_INFINITY
        }
    };
    let (ku, gu, uu) = (
        certified_utility(&knapsack),
        certified_utility(&greedy),
        certified_utility(&uniform),
    );
    assert!(
        ku > gu && ku > uu,
        "knapsack utility {ku} must strictly beat greedy {gu} and uniform {uu}\n\
         knapsack: {knapsack:?}\ngreedy: {greedy:?}"
    );
}

#[test]
fn enforcing_service_matches_the_guard_guarantee() {
    let (grid, chain) = commuter_world();
    let m = grid.num_cells();
    let provider = std::sync::Arc::new(Homogeneous::new(chain.clone()));
    let mut service = SessionManager::new(
        std::sync::Arc::clone(&provider),
        OnlineConfig {
            epsilon: TARGET,
            ..OnlineConfig::default()
        },
    )
    .unwrap();
    let tpl = service.register_template(protected_event(m)).unwrap();
    service.add_user(UserId(1), Vector::uniform(m)).unwrap();
    service.attach_event(UserId(1), tpl).unwrap();
    service
        .enable_enforcement(
            Box::new(PlanarLaplace::new(grid, ALPHA).unwrap()),
            GuardConfig {
                target_epsilon: TARGET,
                ..GuardConfig::default()
            },
        )
        .unwrap();

    let mut rng = StdRng::seed_from_u64(SEED);
    let trajectory = chain
        .sample_trajectory_from(&Vector::uniform(m), 6, &mut rng)
        .unwrap();
    for &loc in &trajectory {
        let rel = service.release(UserId(1), loc, &mut rng).unwrap();
        assert!(
            rel.report.worst_loss <= TARGET + 1e-9,
            "enforced release leaked {} > {TARGET}",
            rel.report.worst_loss
        );
    }
    assert_eq!(service.session(UserId(1)).unwrap().observed(), 6);
}
