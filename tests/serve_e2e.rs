//! End-to-end test of the shipped binary: `priste-cli serve` as a real
//! OS process on an ephemeral port, driven over raw TCP and by the
//! `loadgen` subcommand, then drained with a real SIGTERM.
//!
//! The crate-level tests in `crates/serve/tests/http_e2e.rs` cover the
//! server library in-process; this test covers everything only the binary
//! path exercises — flag plumbing, the stderr port-discovery line, signal
//! handling, the drain summary, the exit code, and the `--out` benchmark
//! artifact.

use priste::obs::json::{parse, Json};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("priste-serve-e2e-{tag}-{}", std::process::id()))
}

/// One request over a fresh connection, `connection: close`, body read to
/// EOF. Returns `(status, body)`.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nhost: e2e\r\nconnection: close\r\n\
         content-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn serve_binary_serves_loadgen_and_drains_on_sigterm() {
    let durable = temp_path("durable");
    let snapshot = temp_path("metrics.json");
    let artifact = temp_path("bench.json");
    let _ = std::fs::remove_dir_all(&durable);
    let _ = std::fs::remove_file(&snapshot);
    let _ = std::fs::remove_file(&artifact);

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_priste_cli"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--side",
            "4",
            "--mode",
            "enforce",
            "--epsilon",
            "0.8",
            "--alpha",
            "2",
            "--seed",
            "9",
            "--durable-dir",
            durable.to_str().unwrap(),
            "--metrics-json",
            snapshot.to_str().unwrap(),
        ])
        .stderr(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn priste-cli serve");

    // The daemon announces its bound (ephemeral) port on stderr.
    let mut stderr = BufReader::new(daemon.stderr.take().expect("stderr piped"));
    let mut line = String::new();
    let addr = loop {
        line.clear();
        assert!(
            stderr.read_line(&mut line).expect("read stderr") > 0,
            "daemon exited before announcing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("serve: listening on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("address token")
                .to_string();
        }
    };

    // The observability plane is up before any application traffic.
    let (status, body) = http(&addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, _) = http(&addr, "GET", "/readyz", "");
    assert_eq!(status, 200);

    // Application traffic through the JSON protocol; user 3 is
    // auto-registered on first contact.
    let (status, body) = http(&addr, "POST", "/v1/ingest", r#"{"user": 3, "observed": 5}"#);
    assert_eq!(status, 200, "{body}");
    let (status, body) = http(
        &addr,
        "POST",
        "/v1/release",
        r#"{"user": 3, "true_location": 7}"#,
    );
    assert_eq!(status, 200, "{body}");
    let (status, body) = http(&addr, "GET", "/v1/users/3/spend", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"spent\""), "{body}");

    // The loadgen subcommand drives the daemon closed-loop and writes the
    // BENCH-compatible artifact.
    let loadgen = Command::new(env!("CARGO_BIN_EXE_priste_cli"))
        .args([
            "loadgen",
            "--addr",
            &addr,
            "--requests",
            "80",
            "--connections",
            "2",
            "--users",
            "5",
            "--out",
            artifact.to_str().unwrap(),
        ])
        .output()
        .expect("run loadgen");
    let stdout = String::from_utf8_lossy(&loadgen.stdout);
    assert!(
        loadgen.status.success(),
        "loadgen failed: {stdout}{}",
        String::from_utf8_lossy(&loadgen.stderr)
    );
    assert!(stdout.contains("loadgen: 80 requests"), "{stdout}");
    assert!(stdout.contains("latency: p50"), "{stdout}");
    let doc = parse(&std::fs::read_to_string(&artifact).expect("artifact")).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("priste-bench-serve/1")
    );
    let metrics = doc
        .get("metrics")
        .and_then(Json::as_array)
        .expect("metrics");
    let names: Vec<&str> = metrics
        .iter()
        .filter_map(|m| m.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(
        names,
        [
            "serve_p50_ms",
            "serve_p90_ms",
            "serve_p99_ms",
            "serve_throughput"
        ]
    );

    // The live Prometheus plane saw all of it.
    let (status, metrics_text) = http(&addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(
        metrics_text.contains("serve_request_seconds"),
        "{metrics_text}"
    );
    assert!(
        metrics_text.contains("priste_build_info{version="),
        "{metrics_text}"
    );

    // A real SIGTERM must drain gracefully: checkpoint, snapshot, exit 0.
    let kill = Command::new("kill")
        .args(["-TERM", &daemon.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(kill.success());
    let started = Instant::now();
    let status = loop {
        if let Some(status) = daemon.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "daemon did not drain within 30s of SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(status.success(), "drain must exit 0, got {status}");
    let mut rest = String::new();
    stderr.read_to_string(&mut rest).expect("drain summary");
    assert!(rest.contains("serve: drained"), "{rest}");

    // Drain side effects: durable checkpoint on disk, metrics snapshot
    // parseable and carrying the serve-plane series.
    assert!(
        std::fs::read_dir(&durable).expect("durable dir").count() > 0,
        "durable directory must hold the drain checkpoint"
    );
    let doc = parse(&std::fs::read_to_string(&snapshot).expect("snapshot")).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("priste-metrics/1")
    );
    let hists = doc.get("histograms").expect("histograms");
    assert!(
        hists
            .as_object()
            .expect("object")
            .keys()
            .any(|k| k.starts_with("serve_request_seconds")),
        "snapshot must include the request-latency histogram"
    );

    std::fs::remove_dir_all(&durable).ok();
    std::fs::remove_file(&snapshot).ok();
    std::fs::remove_file(&artifact).ok();
}
