//! End-to-end test of the shipped binary's cluster mode: `priste-cli
//! cluster` as a real OS process fronting real `serve` worker processes,
//! driven over raw TCP and by the `loadgen` subcommand, killed and
//! recovered with real signals.
//!
//! The crate-level tests in `crates/cluster/tests/cluster_e2e.rs` cover
//! the router library in-process; this test covers everything only the
//! binary path exercises — `--spawn` child management, the stderr
//! port-discovery lines, `--worker-addrs` fronting, SIGKILL of a worker
//! under live traffic, durable restart + `/cluster/remap` recovery with
//! no double-spend, and the drain exit codes.

use priste::cluster::jump_hash;
use priste::obs::json::{parse, Json};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("priste-cluster-e2e-{tag}-{}", std::process::id()))
}

/// One request over a fresh connection, `connection: close`. Returns
/// `(status, head, body)` — head includes the status line and headers,
/// lower-cased for header asserts.
fn http(addr: &str, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nhost: e2e\r\nconnection: close\r\n\
         content-length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_ascii_lowercase(), b.to_string()))
        .unwrap_or_default();
    (status, head, body)
}

/// Reads stderr lines until one starts with `prefix`; returns the first
/// whitespace token after it (the announced socket address).
fn scrape_addr(stderr: &mut BufReader<std::process::ChildStderr>, prefix: &str) -> String {
    let mut line = String::new();
    loop {
        line.clear();
        assert!(
            stderr.read_line(&mut line).expect("read stderr") > 0,
            "process exited before announcing {prefix:?}"
        );
        if let Some(rest) = line.trim().strip_prefix(prefix) {
            return rest
                .split_whitespace()
                .next()
                .expect("address token")
                .to_string();
        }
    }
}

fn signal_and_wait(daemon: &mut Child, sig: &str) -> std::process::ExitStatus {
    let kill = Command::new("kill")
        .args([sig, &daemon.id().to_string()])
        .status()
        .expect("send signal");
    assert!(kill.success());
    let started = Instant::now();
    loop {
        if let Some(status) = daemon.try_wait().expect("try_wait") {
            return status;
        }
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "process did not exit within 30s of {sig}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn spend_observed(router: &str, user: u64) -> u64 {
    let (status, _, body) = http(router, "GET", &format!("/v1/users/{user}/spend"), "");
    assert_eq!(status, 200, "{body}");
    parse(&body)
        .expect("spend body is JSON")
        .get("observed")
        .and_then(Json::as_u64)
        .expect("spend body has observed")
}

/// `cluster --spawn 2`: the binary owns its worker processes — ephemeral
/// ports scraped from their stderr, per-worker durable dirs under
/// `--durable-root`, loadgen driven through the router, and one SIGTERM
/// drains the whole tree with exit 0 and durable checkpoints on disk.
#[test]
fn cluster_binary_spawns_workers_serves_loadgen_and_drains_on_sigterm() {
    let root = temp_path("spawn-root");
    let snapshot = temp_path("spawn-metrics.json");
    let _ = std::fs::remove_dir_all(&root);
    let _ = std::fs::remove_file(&snapshot);

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_priste_cli"))
        .args([
            "cluster",
            "--spawn",
            "2",
            "--addr",
            "127.0.0.1:0",
            "--side",
            "4",
            "--seed",
            "9",
            "--durable-root",
            root.to_str().unwrap(),
            "--metrics-json",
            snapshot.to_str().unwrap(),
        ])
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn priste-cli cluster");
    let mut stderr = BufReader::new(daemon.stderr.take().expect("stderr piped"));
    let router = scrape_addr(&mut stderr, "cluster: routing on ");

    let (status, _, body) = http(&router, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, _, _) = http(&router, "GET", "/readyz", "");
    assert_eq!(status, 200, "both spawned workers must probe healthy");
    let (status, _, body) = http(&router, "GET", "/cluster/workers", "");
    assert_eq!(status, 200);
    assert_eq!(body.matches("\"healthy\": true").count(), 2, "{body}");

    // 500 requests through the router via the shipped load generator.
    let loadgen = Command::new(env!("CARGO_BIN_EXE_priste_cli"))
        .args([
            "loadgen",
            "--addr",
            &router,
            "--requests",
            "500",
            "--connections",
            "4",
            "--users",
            "10",
        ])
        .output()
        .expect("run loadgen");
    let stdout = String::from_utf8_lossy(&loadgen.stdout);
    assert!(
        loadgen.status.success(),
        "loadgen failed: {stdout}{}",
        String::from_utf8_lossy(&loadgen.stderr)
    );
    assert!(stdout.contains("loadgen: 500 requests"), "{stdout}");
    assert!(stdout.contains("(0 errors)"), "{stdout}");

    // The router's live metrics saw the traffic on both sides of the hop.
    let (status, _, text) = http(&router, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(text.contains("cluster_request_seconds"), "{text}");
    assert!(text.contains("cluster_upstream_request_seconds"), "{text}");
    assert!(text.contains("cluster_worker_up"), "{text}");

    // One SIGTERM drains the router and both spawned workers, exit 0.
    let status = signal_and_wait(&mut daemon, "-TERM");
    assert!(status.success(), "drain must exit 0, got {status}");
    let mut rest = String::new();
    stderr.read_to_string(&mut rest).expect("drain summary");
    assert!(rest.contains("cluster: drained"), "{rest}");

    // Drain side effects: a durable checkpoint per worker, and a metrics
    // snapshot carrying the cluster-plane series.
    for worker in ["worker-0", "worker-1"] {
        assert!(
            std::fs::read_dir(root.join(worker))
                .unwrap_or_else(|e| panic!("durable dir for {worker}: {e}"))
                .count()
                > 0,
            "{worker} must hold a drain checkpoint"
        );
    }
    let doc = parse(&std::fs::read_to_string(&snapshot).expect("snapshot")).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("priste-metrics/1")
    );
    assert!(
        doc.get("histograms")
            .and_then(|h| h.as_object())
            .is_some_and(|h| h.keys().any(|k| k.starts_with("cluster_request_seconds"))),
        "snapshot must include the router latency histogram"
    );

    std::fs::remove_dir_all(&root).ok();
    std::fs::remove_file(&snapshot).ok();
}

/// `cluster --worker-addrs`: the router fronts externally owned workers,
/// so the test can SIGKILL one mid-stream. Its users get fail-fast 503 +
/// `Retry-After` while the other shard keeps serving; restarting the
/// worker over the same durable dir and remapping the slot recovers the
/// exact committed spend — the failed request during the outage is never
/// double-applied.
#[test]
fn router_survives_worker_kill_durable_restart_and_remap_without_double_spend() {
    let dirs = [temp_path("front-a"), temp_path("front-b")];
    let worker_args = |dir: &PathBuf| {
        vec![
            "serve".to_owned(),
            "--addr".to_owned(),
            "127.0.0.1:0".to_owned(),
            "--side".to_owned(),
            "4".to_owned(),
            "--seed".to_owned(),
            "5".to_owned(),
            "--durable-dir".to_owned(),
            dir.to_str().unwrap().to_owned(),
        ]
    };
    let spawn_worker = |dir: &PathBuf| -> (Child, String) {
        let mut child = Command::new(env!("CARGO_BIN_EXE_priste_cli"))
            .args(worker_args(dir))
            .stderr(Stdio::piped())
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn worker");
        let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
        let addr = scrape_addr(&mut stderr, "serve: listening on ");
        // Keep draining the worker's stderr so it never blocks on a full pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            let _ = stderr.read_to_string(&mut sink);
        });
        (child, addr)
    };
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
    let (mut worker_a, addr_a) = spawn_worker(&dirs[0]);
    let (mut worker_b, addr_b) = spawn_worker(&dirs[1]);

    let mut daemon = Command::new(env!("CARGO_BIN_EXE_priste_cli"))
        .args([
            "cluster",
            "--worker-addrs",
            &format!("{addr_a},{addr_b}"),
            "--addr",
            "127.0.0.1:0",
            "--retry-after",
            "2",
        ])
        .stderr(Stdio::piped())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn priste-cli cluster");
    let mut stderr = BufReader::new(daemon.stderr.take().expect("stderr piped"));
    let router = scrape_addr(&mut stderr, "cluster: routing on ");

    // A user that jump-hashes onto slot 1 — the worker we will kill.
    let victim = (0..64)
        .find(|u| jump_hash(*u, 2) == 1)
        .expect("slot-1 user");
    let ingest = format!("{{\"user\": {victim}, \"observed\": 5}}");
    for _ in 0..5 {
        let (status, _, body) = http(&router, "POST", "/v1/ingest", &ingest);
        assert_eq!(status, 200, "{body}");
    }
    assert_eq!(spend_observed(&router, victim), 5);

    // Hard-kill the victim's worker: no drain, no final checkpoint — the
    // WAL is all that survives.
    let status = signal_and_wait(&mut worker_b, "-KILL");
    assert!(!status.success(), "SIGKILL must not look like a drain");

    // The victim's shard fails fast with Retry-After; the other shard and
    // the router plane keep serving.
    let (status, head, _) = http(&router, "POST", "/v1/ingest", &ingest);
    assert_eq!(status, 503, "dead shard must fail fast");
    assert!(head.contains("retry-after: 2"), "{head}");
    let other = (0..64)
        .find(|u| jump_hash(*u, 2) == 0)
        .expect("slot-0 user");
    let (status, _, body) = http(
        &router,
        "POST",
        "/v1/ingest",
        &format!("{{\"user\": {other}, \"observed\": 3}}"),
    );
    assert_eq!(status, 200, "{body}");
    let (status, _, _) = http(&router, "GET", "/healthz", "");
    assert_eq!(status, 200);

    // Restart the worker over the same durable dir (WAL replay), then
    // rebind slot 1 to its new ephemeral address.
    let (mut worker_b2, addr_b2) = spawn_worker(&dirs[1]);
    let (status, _, body) = http(
        &router,
        "POST",
        "/cluster/remap",
        &format!("{{\"slot\": 1, \"addr\": \"{addr_b2}\"}}"),
    );
    assert_eq!(status, 200, "{body}");

    // Exactly the committed spend came back: the five acknowledged ingests
    // once each, the 503'd one not at all. Traffic then continues.
    assert_eq!(spend_observed(&router, victim), 5, "no double-spend");
    let (status, _, body) = http(&router, "POST", "/v1/ingest", &ingest);
    assert_eq!(status, 200, "{body}");
    assert_eq!(spend_observed(&router, victim), 6);

    // Clean drains everywhere: router first, then both live workers.
    let status = signal_and_wait(&mut daemon, "-TERM");
    assert!(status.success(), "router drain must exit 0, got {status}");
    for worker in [&mut worker_a, &mut worker_b2] {
        let status = signal_and_wait(worker, "-TERM");
        assert!(status.success(), "worker drain must exit 0, got {status}");
    }
    for dir in &dirs {
        std::fs::remove_dir_all(dir).ok();
    }
}
