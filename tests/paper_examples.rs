//! The paper's worked examples, end to end — every number the paper prints
//! is reproduced here.

use priste::prelude::*;

/// Paper Eq. (2): the Example III.1 transition matrix.
fn example_chain() -> MarkovModel {
    MarkovModel::new(
        Matrix::from_rows(&[
            vec![0.1, 0.2, 0.7],
            vec![0.4, 0.1, 0.5],
            vec![0.0, 0.1, 0.9],
        ])
        .unwrap(),
    )
    .unwrap()
}

fn region(cells: &[usize]) -> Region {
    Region::from_cells(3, cells.iter().map(|&i| CellId(i))).unwrap()
}

#[test]
fn example_c1_prior_vector_is_reproduced() {
    // Appendix C: "Pr(PRESENCE) = π[0.28, 0.298, 0.226]ᵀ" for the presence
    // event at {s1, s2} during t ∈ {3, 4}.
    let event: StEvent = Presence::new(region(&[0, 1]), 3, 4).unwrap().into();
    let engine = TwoWorldEngine::new(&event, Homogeneous::new(example_chain())).unwrap();
    for (pi, expected) in [
        (Vector::from(vec![1.0, 0.0, 0.0]), 0.28),
        (Vector::from(vec![0.0, 1.0, 0.0]), 0.298),
        (Vector::from(vec![0.0, 0.0, 1.0]), 0.226),
    ] {
        let got = engine.prior(&pi).unwrap();
        assert!(
            (got - expected).abs() < 1e-12,
            "π {:?}: {got}",
            pi.as_slice()
        );
    }
}

#[test]
fn example_ii1_presence_boolean_expansion() {
    // Example II.1: the PRESENCE event is (u3=s1)∨(u3=s2)∨(u4=s1)∨(u4=s2).
    let event = Presence::new(region(&[0, 1]), 3, 4).unwrap();
    let expr = event.to_expr();
    assert_eq!(expr.predicates().len(), 4);
    assert_eq!(expr.time_span(), Some((3, 4)));
    // The region vector s = [1, 1, 0]ᵀ.
    assert_eq!(event.region().indicator().as_slice(), &[1.0, 1.0, 0.0]);
}

#[test]
fn example_ii2_pattern_boolean_expansion() {
    // Example II.2: ((u2=s1)∨(u2=s2)) ∧ ((u3=s2)∨(u3=s3)) with region
    // vectors s2 = [1,1,0]ᵀ and s3 = [0,1,1]ᵀ.
    let pattern = Pattern::new(vec![region(&[0, 1]), region(&[1, 2])], 2).unwrap();
    assert_eq!(
        pattern.regions()[0].indicator().as_slice(),
        &[1.0, 1.0, 0.0]
    );
    assert_eq!(
        pattern.regions()[1].indicator().as_slice(),
        &[0.0, 1.0, 1.0]
    );
    let expr = pattern.to_expr();
    assert_eq!(expr.predicates().len(), 4);
    // Trajectory s1 → s2 through the regions: true.
    assert!(pattern.eval(&[CellId(2), CellId(0), CellId(1)]).unwrap());
    // Trajectory s3 → s3: misses the first region.
    assert!(!pattern.eval(&[CellId(2), CellId(2), CellId(2)]).unwrap());
}

#[test]
fn example_b1_naive_pattern_enumeration_counts() {
    // Appendix B Example B.1's shape: a PATTERN over regions of width 2
    // for 4 timestamps has 2⁴ = 16 region-constrained trajectories (the
    // paper's Fig. 15 narrative counts 24 for its widths; the principle is
    // ∏|s_t|). Verify Algorithm 4 equals general enumeration.
    let regions = vec![
        region(&[0, 1]),
        region(&[1, 2]),
        region(&[0, 1]),
        region(&[1, 2]),
    ];
    let pattern = Pattern::new(regions, 2).unwrap();
    let event: StEvent = pattern.clone().into();
    let chain = Homogeneous::new(example_chain());
    let pi = Vector::uniform(3);
    let flat = Vector::from(vec![1.0; 3]);
    let e2 = Vector::from(vec![0.5, 0.3, 0.2]);
    let cols = vec![flat, e2.clone(), e2.clone(), e2.clone(), e2.clone()];
    let general = naive::joint(&event, &&chain, &pi, &cols, 1 << 20).unwrap();
    let fast =
        naive::pattern_joint_algorithm4(&pattern, &&chain, &pi, &cols[1..], 1 << 20).unwrap();
    assert!((general - fast).abs() < 1e-12);
}

#[test]
fn table_ii_single_location_and_trajectory_are_special_cases() {
    // Table II: a single location is PRESENCE with |S| = |T| = 1; a single
    // trajectory is PATTERN with singleton regions.
    let single: StEvent = Presence::new(region(&[1]), 2, 2).unwrap().into();
    assert!(single.eval(&[CellId(0), CellId(1)]).unwrap());
    assert!(!single.eval(&[CellId(1), CellId(0)]).unwrap());

    let traj: StEvent = Pattern::new(vec![region(&[0]), region(&[2])], 1)
        .unwrap()
        .into();
    assert!(traj.eval(&[CellId(0), CellId(2)]).unwrap());
    assert!(!traj.eval(&[CellId(0), CellId(1)]).unwrap());
}

#[test]
fn fig1a_event_is_unsatisfiable() {
    // Fig. 1(a): (u1 = s1) ∧ (u1 = s2) is always false.
    let e = EventExpr::fig1a(1, CellId(0), CellId(1));
    for s in 0..3 {
        assert!(!e.eval(&[CellId(s)]).unwrap());
    }
}

#[test]
fn lemma_iii_1_products_match_paper_equation_22() {
    // Example C.1 prints the two lifted matrices; multiply them the way
    // Lemma III.1 does and confirm against the engine.
    let event: StEvent = Presence::new(region(&[0, 1]), 3, 4).unwrap().into();
    let provider = Homogeneous::new(example_chain());
    let engine = TwoWorldEngine::new(&event, provider).unwrap();

    // M1 (block diagonal) then M2, M3 (capture) per Example C.1.
    let pi = Vector::from(vec![0.2, 0.3, 0.5]);
    let lifted_pi = pi.concat(&Vector::zeros(3));
    let mut state = lifted_pi;
    for t in 1..=3 {
        state = engine.step_at(t).apply_row(&state);
    }
    let (_, true_world) = state.split_halves();
    let expected = pi.dot(&Vector::from(vec![0.28, 0.298, 0.226])).unwrap();
    assert!((true_world.sum() - expected).abs() < 1e-12);
}

#[test]
fn dsl_round_trips_the_papers_experiment_events() {
    for spec in [
        "PRESENCE(S={1:10}, T={4:8})",
        "PRESENCE(S={1:10}, T={16:20})",
    ] {
        let ev = parse_event(spec, 400).unwrap();
        assert_eq!(ev.width(), 10);
        let rendered = priste::event::dsl::format_event(&ev);
        assert_eq!(parse_event(&rendered, 400).unwrap(), ev);
    }
}
