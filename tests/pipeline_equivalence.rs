//! Property-based equivalence: a [`Pipeline`]-constructed stack must be
//! **bit-identical** to the hand-constructed per-crate stacks on the same
//! seed — the builder is sugar, never a semantic fork.
//!
//! Covered: `.audit()` vs hand-built `Priste` (ReleaseRecord streams),
//! `.enforce()` vs hand-built `CalibratedMechanism` (CalibratedRelease
//! streams), `.serve_enforcing()` vs hand-built `SessionManager`
//! (EnforcedRelease streams), and the parallel batched ingest vs the
//! sequential path.

use priste::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

use priste::core::test_support::{gaussian_world as world, presence};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `.audit()` replays Algorithm 2 exactly: same candidates, same
    /// budgets, same releases, bit for bit.
    #[test]
    fn audit_equals_hand_constructed_priste(
        seed in 0u64..1000,
        alpha in 0.3f64..2.0,
        epsilon in 0.4f64..1.5,
    ) {
        let (grid, chain) = world(3, 1.0);
        let m = grid.num_cells();
        let event = presence(m, 3, 2, 4);
        let steps = 6;

        // Hand-constructed: per-crate entry points.
        let events = vec![event.clone()];
        let source = PlmSource::new(grid.clone(), alpha).unwrap();
        let mut by_hand = Priste::new(
            &events,
            Homogeneous::new(chain.clone()),
            source,
            grid.clone(),
            PristeConfig::with_epsilon(epsilon),
        )
        .unwrap();

        // Pipeline-constructed.
        let mut piped = Pipeline::on(grid.clone())
            .mobility(chain.clone())
            .event(event)
            .planar_laplace(alpha)
            .target_epsilon(epsilon)
            .audit()
            .unwrap();

        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let traj = chain
            .sample_trajectory_from(&Vector::uniform(m), steps, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        for &loc in &traj {
            let a: ReleaseRecord = by_hand.release(loc, &mut rng_a).unwrap();
            let b: ReleaseRecord = piped.release(loc, &mut rng_b).unwrap();
            prop_assert_eq!(a, b, "audit streams diverged");
        }
    }

    /// `.enforce()` replays the calibration guard exactly.
    #[test]
    fn enforce_equals_hand_constructed_calibrated_mechanism(
        seed in 0u64..1000,
        alpha in 1.0f64..3.0,
        target in 0.2f64..1.0,
    ) {
        let (grid, chain) = world(3, 1.0);
        let m = grid.num_cells();
        let event = presence(m, 3, 2, 4);
        let guard = GuardConfig { target_epsilon: target, ..GuardConfig::default() };

        let mut by_hand = CalibratedMechanism::new(
            Box::new(PlanarLaplace::new(grid.clone(), alpha).unwrap()),
            std::slice::from_ref(&event),
            Homogeneous::new(chain.clone()),
            Vector::uniform(m),
            guard,
        )
        .unwrap();
        let mut piped = Pipeline::on(grid.clone())
            .mobility(chain.clone())
            .event(event)
            .planar_laplace(alpha)
            .target_epsilon(target)
            .enforce()
            .unwrap();

        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let traj = chain
            .sample_trajectory_from(&Vector::uniform(m), 5, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        for &loc in &traj {
            let a: CalibratedRelease = by_hand.release(loc, &mut rng_a).unwrap();
            let b: CalibratedRelease = piped.release(loc, &mut rng_b).unwrap();
            prop_assert_eq!(a, b, "calibrated streams diverged");
        }
    }

    /// `.serve_enforcing()` equals the hand-assembled enforcing service,
    /// release by release, and the parallel batch path equals per-user
    /// sequential guard semantics (same per-shard RNG streams).
    #[test]
    fn serve_enforcing_equals_hand_constructed_manager(
        seed in 0u64..500,
        users in 3u64..12,
        target in 0.5f64..1.2,
    ) {
        let (grid, chain) = world(3, 1.0);
        let m = grid.num_cells();
        let event = presence(m, 3, 2, 4);
        let alpha = 2.0;
        let online = OnlineConfig { epsilon: target, num_shards: 4, linger: 2, budget: 1e6 };
        let guard = GuardConfig { target_epsilon: target, ..GuardConfig::default() };

        // Hand-constructed.
        let provider = Arc::new(Homogeneous::new(chain.clone()));
        let mut by_hand = SessionManager::new(
            provider as SharedProvider,
            online.clone(),
        ).unwrap();
        let tpl = by_hand.register_template(event.clone()).unwrap();
        by_hand
            .enable_enforcement(
                Box::new(PlanarLaplace::new(grid.clone(), alpha).unwrap()),
                guard,
            )
            .unwrap();

        // Pipeline-constructed.
        let mut piped = Pipeline::on(grid.clone())
            .mobility(chain.clone())
            .event(event)
            .planar_laplace(alpha)
            .target_epsilon(target)
            .service_config(online)
            .serve_enforcing()
            .unwrap();

        for svc in [&mut by_hand, &mut piped] {
            for u in 0..users {
                svc.add_user(UserId(u), Vector::uniform(m)).unwrap();
                svc.attach_event(UserId(u), tpl).unwrap();
            }
        }

        for t in 0..3u64 {
            let batch: Vec<(UserId, CellId)> = (0..users)
                .map(|u| (UserId(u), CellId(((u + t * 3) % m as u64) as usize)))
                .collect();
            let a = by_hand.release_batch(&batch, seed + t, 1).unwrap();
            let b = piped.release_batch(&batch, seed + t, 3).unwrap();
            prop_assert_eq!(a, b, "enforced streams diverged at t={}", t);
        }
        prop_assert_eq!(by_hand.stats(), piped.stats());
    }

    /// The parallel audit-mode ingest is the sequential ingest, for any
    /// thread count and shard layout.
    #[test]
    fn parallel_ingest_equals_sequential(
        seed in 0u64..500,
        users in 4u64..16,
        shards in 1usize..6,
        threads in 1usize..5,
    ) {
        let (grid, chain) = world(3, 1.0);
        let m = grid.num_cells();
        let event = presence(m, 3, 2, 4);
        let online = OnlineConfig { epsilon: 1.0, num_shards: shards, linger: 2, budget: 1e6 };
        let pipeline = Pipeline::on(grid.clone())
            .mobility(chain.clone())
            .event(event)
            .planar_laplace(0.8)
            .service_config(online)
            .build()
            .unwrap();
        let mut seq = pipeline.serve().unwrap();
        let mut par = pipeline.serve().unwrap();
        for svc in [&mut seq, &mut par] {
            for u in 0..users {
                svc.add_user(UserId(u), Vector::uniform(m)).unwrap();
                svc.attach_event(UserId(u), 0).unwrap();
            }
        }
        let plm = pipeline.mechanism_instance().unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..4 {
            let batch: Vec<(UserId, Vector)> = (0..users)
                .map(|u| {
                    let obs = plm.perturb(CellId((u % m as u64) as usize), &mut rng);
                    (UserId(u), plm.emission_column(obs))
                })
                .collect();
            let a = seq.ingest_batch(&batch).unwrap();
            let b = par.ingest_batch_parallel(&batch, threads).unwrap();
            prop_assert_eq!(a, b, "ingest reports diverged");
        }
        prop_assert_eq!(seq.stats(), par.stats());
    }
}
