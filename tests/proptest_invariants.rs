//! Property-based tests over cross-crate invariants (proptest).

use priste::prelude::*;
use proptest::prelude::*;

/// Strategy: a random row-stochastic matrix of size m.
fn stochastic_matrix(m: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(proptest::collection::vec(0.01f64..1.0, m), m).prop_map(move |rows| {
        let mut mat = Matrix::from_rows(&rows).unwrap();
        mat.normalize_rows_mut();
        mat
    })
}

/// Strategy: a random probability distribution of length m.
fn distribution(m: usize) -> impl Strategy<Value = Vector> {
    proptest::collection::vec(0.01f64..1.0, m).prop_map(|raw| {
        let mut v = Vector::from(raw);
        v.normalize_mut().unwrap();
        v
    })
}

/// Strategy: a proper (non-empty, non-full) region over m cells.
fn region(m: usize) -> impl Strategy<Value = Region> {
    proptest::collection::vec(proptest::bool::ANY, m)
        .prop_filter("region must be proper", |bits| {
            let k = bits.iter().filter(|&&b| b).count();
            k > 0 && k < bits.len()
        })
        .prop_map(move |bits| {
            Region::from_cells(
                m,
                bits.iter()
                    .enumerate()
                    .filter(|(_, &b)| b)
                    .map(|(i, _)| CellId(i)),
            )
            .unwrap()
        })
}

/// Strategy: a random PRESENCE or PATTERN event over m cells.
fn st_event(m: usize) -> impl Strategy<Value = StEvent> {
    (1usize..=3, 1usize..=3, region(m), proptest::bool::ANY).prop_flat_map(
        move |(start, len, r, is_presence)| {
            let end = start + len - 1;
            if is_presence {
                Just(StEvent::from(Presence::new(r.clone(), start, end).unwrap())).boxed()
            } else {
                proptest::collection::vec(region(m), len)
                    .prop_map(move |rs| StEvent::from(Pattern::new(rs, start).unwrap()))
                    .boxed()
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Prior(EVENT) + Prior(¬EVENT) = 1 for every chain, event and π.
    #[test]
    fn prior_and_complement_partition_unity(
        mat in stochastic_matrix(4),
        pi in distribution(4),
        ev in st_event(4),
    ) {
        let chain = Homogeneous::new(MarkovModel::new(mat).unwrap());
        let engine = TwoWorldEngine::new(&ev, chain).unwrap();
        let p = engine.prior(&pi).unwrap();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
    }

    /// Two-world prior equals naive enumeration.
    #[test]
    fn two_world_prior_is_exact(
        mat in stochastic_matrix(3),
        pi in distribution(3),
        ev in st_event(3),
    ) {
        let chain = Homogeneous::new(MarkovModel::new(mat).unwrap());
        let engine = TwoWorldEngine::new(&ev, &chain).unwrap();
        let fast = engine.prior(&pi).unwrap();
        let slow = naive::prior(&ev, &&chain, &pi, 1 << 22).unwrap();
        prop_assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow} ({ev})");
    }

    /// The joint-with-event never exceeds the total observation likelihood,
    /// and the prior read off the Theorem inputs is time-invariant.
    #[test]
    fn joint_dominance_and_prior_invariance(
        mat in stochastic_matrix(3),
        pi in distribution(3),
        ev in st_event(3),
        cols in proptest::collection::vec(
            proptest::collection::vec(0.05f64..1.0, 3), 5),
    ) {
        let chain = Homogeneous::new(MarkovModel::new(mat).unwrap());
        let mut builder = TheoremBuilder::new(&ev, chain).unwrap();
        let mut first_prior = None;
        for raw in cols {
            let col = Vector::from(raw);
            let inputs = builder.candidate(&col).unwrap();
            let jb = pi.dot(&inputs.b).unwrap();
            let jc = pi.dot(&inputs.c).unwrap();
            prop_assert!(jb <= jc + 1e-12);
            let prior = inputs.prior(&pi);
            if let Some(p0) = first_prior {
                let p0: f64 = p0;
                prop_assert!((prior - p0).abs() < 1e-9);
            }
            first_prior = Some(prior);
            builder.commit(col).unwrap();
        }
    }

    /// The Theorem IV.1 checker is invariant under joint (b, c) rescaling
    /// across 200 orders of magnitude.
    #[test]
    fn checker_scale_invariance(
        a in proptest::collection::vec(0.0f64..1.0, 4),
        b_raw in proptest::collection::vec(0.0f64..0.5, 4),
        extra in proptest::collection::vec(0.01f64..0.5, 4),
        log_gamma in -100f64..100.0,
    ) {
        let a = Vector::from(a);
        let b = Vector::from(b_raw);
        let c = b.add(&Vector::from(extra)).unwrap();
        let checker = TheoremChecker::new(0.5, SolverConfig::default());
        let v1 = checker.check(&a, &b, &c).satisfied();
        let gamma = log_gamma.exp();
        let v2 = checker.check(&a, &b.scale(gamma), &c.scale(gamma)).satisfied();
        prop_assert_eq!(v1, v2);
    }

    /// Emission rows of the Planar Laplace mechanism are distributions for
    /// any budget, and tighter budgets concentrate more mass on the truth.
    #[test]
    fn plm_rows_are_distributions_and_monotone(alpha in 0.05f64..4.0) {
        let grid = GridMap::new(3, 3, 1.0).unwrap();
        let plm = PlanarLaplace::new(grid.clone(), alpha).unwrap();
        plm.emission_matrix().validate_stochastic().unwrap();
        let tighter = PlanarLaplace::new(grid, alpha * 2.0).unwrap();
        for i in 0..9 {
            prop_assert!(
                tighter.emission_matrix().get(i, i) >= plm.emission_matrix().get(i, i) - 1e-12
            );
        }
    }

    /// δ-location sets shrink monotonically in δ and always carry ≥ 1−δ of
    /// the prior mass.
    #[test]
    fn delta_location_set_mass_invariant(
        prior in distribution(9),
        delta in 0.05f64..0.9,
    ) {
        let grid = GridMap::new(3, 3, 1.0).unwrap();
        let dls = DeltaLocationSet::new(grid, delta).unwrap();
        let set = dls.location_set(&prior).unwrap();
        let mass: f64 = set.iter().map(|c| prior[c.index()]).sum();
        prop_assert!(mass >= 1.0 - delta - 1e-12);
        // Removing the lowest-prior member must drop below the target
        // (minimality), unless the set is a single cell.
        if set.len() > 1 {
            let min_cell = set
                .iter()
                .min_by(|a, b| {
                    prior[a.index()].partial_cmp(&prior[b.index()]).unwrap()
                })
                .unwrap();
            prop_assert!(mass - prior[min_cell.index()] < 1.0 - delta + 1e-12);
        }
    }

    /// Ground-truth evaluation agrees between structured events and their
    /// Boolean expansions on random trajectories.
    #[test]
    fn event_expansion_equivalence(
        ev in st_event(4),
        traj in proptest::collection::vec(0usize..4, 6),
    ) {
        let cells: Vec<CellId> = traj.into_iter().map(CellId).collect();
        let expr = ev.to_expr();
        prop_assert_eq!(ev.eval(&cells).unwrap(), expr.eval(&cells).unwrap());
    }

    /// The event DSL round-trips every structured event.
    #[test]
    fn dsl_round_trip(ev in st_event(6)) {
        let rendered = priste::event::dsl::format_event(&ev);
        let parsed = parse_event(&rendered, 6).unwrap();
        prop_assert_eq!(parsed, ev);
    }
}
