//! The paper's motivating scenario #2: *"regularly commuting between
//! Address 1 and Address 2"* — a PATTERN secret, protected with the
//! δ-location-set instantiation (Algorithm 3).
//!
//! ```sh
//! cargo run --release --example commuting_pattern
//! ```
//!
//! The secret is a trajectory *pattern* (Fig. 1(e)): the user moves from
//! the home district through the arterial corridor to the office district
//! across consecutive timestamps. A PATTERN event is exactly the "love
//! hotel → home" shape of §II.B, and §II.C's Fig. 3(c) explains why
//! trajectory-indistinguishability mechanisms don't automatically protect
//! it. This example also contrasts Algorithm 2 (Geo-indistinguishability)
//! with Algorithm 3 (δ-location-set) on the same secret — both derived
//! from [`Pipeline`]s that differ by one `.delta_location(δ)` call.

use priste::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), PristeError> {
    // A 8×8 commuter town, 1 km cells.
    let grid = GridMap::new(8, 8, 1.0)?;
    let m = grid.num_cells();

    // Home block (bottom-left), corridor, office block (top-right).
    let block = |cells: &[(usize, usize)]| -> Result<Region, PristeError> {
        let mut r = Region::empty(m);
        for &(row, col) in cells {
            r.insert(grid.from_row_col(row, col)?)?;
        }
        Ok(r)
    };
    let home = block(&[(6, 1), (6, 2), (7, 1), (7, 2)])?;
    let corridor = block(&[(4, 3), (4, 4), (5, 3), (3, 4)])?;
    let office = block(&[(1, 5), (1, 6), (2, 5), (2, 6)])?;

    // The morning commute pattern: home at t=2, corridor at t=3, office at
    // t=4 — the AND-of-ORs of Fig. 1(e).
    let pattern: StEvent =
        Pattern::new(vec![home.clone(), corridor.clone(), office.clone()], 2)?.into();
    println!("secret: {pattern}\n");

    // Mobility trained toward commuting: strong pattern (small σ).
    let chain = gaussian_kernel_chain(&grid, 0.9)?;
    let epsilon = 0.5;
    let horizon = 8;

    // A commuter's true morning.
    let trajectory = vec![
        grid.from_row_col(7, 1)?,
        grid.from_row_col(6, 2)?,
        grid.from_row_col(4, 3)?,
        grid.from_row_col(2, 5)?,
        grid.from_row_col(1, 6)?,
        grid.from_row_col(1, 6)?,
        grid.from_row_col(1, 5)?,
        grid.from_row_col(1, 6)?,
    ];
    assert_eq!(trajectory.len(), horizon);

    // --- Algorithm 2: PriSTE with Geo-indistinguishability. ---
    let mut rng = StdRng::seed_from_u64(8);
    let mut alg2 = Pipeline::on(grid.clone())
        .mobility(chain.clone())
        .event(pattern.clone())
        .planar_laplace(1.0)
        .target_epsilon(epsilon)
        .audit()?;
    let mut budgets2 = Vec::new();
    let mut dists2 = Vec::new();
    for &loc in &trajectory {
        let rec = alg2.release(loc, &mut rng)?;
        budgets2.push(rec.final_budget);
        dists2.push(rec.euclid_km);
    }

    // --- Algorithm 3: PriSTE with δ-location-set privacy. ---
    let mut rng = StdRng::seed_from_u64(8);
    let mut alg3 = Pipeline::on(grid.clone())
        .mobility(chain.clone())
        .event(pattern)
        .planar_laplace(1.0)
        .delta_location(0.2)
        .target_epsilon(epsilon)
        .audit()?;
    let mut budgets3 = Vec::new();
    let mut dists3 = Vec::new();
    for &loc in &trajectory {
        let rec = alg3.release(loc, &mut rng)?;
        budgets3.push(rec.final_budget);
        dists3.push(rec.euclid_km);
    }

    println!("  t | Alg2 budget | Alg2 km | Alg3 (δ=0.2) budget | Alg3 km");
    println!("  --+-------------+---------+---------------------+--------");
    for t in 0..horizon {
        println!(
            "  {:>2} | {:>11.4} | {:>7.2} | {:>19.4} | {:>6.2}",
            t + 1,
            budgets2[t],
            dists2[t],
            budgets3[t],
            dists3[t]
        );
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!("\nmeans:");
    println!(
        "  Algorithm 2 (geo-ind):        budget {:.4}, distance {:.2} km",
        mean(&budgets2),
        mean(&dists2)
    );
    println!(
        "  Algorithm 3 (δ-location-set): budget {:.4}, distance {:.2} km",
        mean(&budgets3),
        mean(&dists3)
    );
    println!("\nBoth enforce ε = {epsilon} for the commuting PATTERN against any prior;");
    println!("δ-location-set trades a stricter effective budget for outputs that stay");
    println!("inside the plausible region (paper §V.B, Fig. 10 discussion).");
    Ok(())
}
