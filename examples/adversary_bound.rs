//! What the ε guarantee *means*: an exact Bayesian adversary cannot move
//! their odds about the secret by more than e^ε — no matter the trajectory,
//! no matter their prior.
//!
//! ```sh
//! cargo run --release --example adversary_bound
//! ```
//!
//! Runs many PriSTE-protected trajectories (some where the event truly
//! happened, some where it did not), lets the strongest adversary update
//! exactly, and shows (1) every odds lift within the e^ε band, and (2) the
//! adversary's MAP guesses barely beating the base rate — while against an
//! *unprotected* mechanism the same adversary's lifts blow through the
//! band. One [`Pipeline`] is built once; each run derives a fresh auditor
//! and adversary from it.

use priste::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), PristeError> {
    let grid = GridMap::new(6, 6, 1.0)?;
    let chain = gaussian_kernel_chain(&grid, 1.0)?;
    let epsilon: f64 = 0.5;
    let alpha = 1.0;
    let horizon = 8;
    let runs = 60;
    let pi = Vector::uniform(grid.num_cells());

    let pipeline = Pipeline::on(grid.clone())
        .mobility(chain.clone())
        .event_spec("PRESENCE(S={1:6}, T={3:6})")
        .planar_laplace(alpha)
        .target_epsilon(epsilon)
        .build()?;
    let event = pipeline.events()[0].clone();
    println!(
        "secret: {event}   guarantee: ε = {epsilon}   odds band: [{:.3}, {:.3}]",
        (-epsilon).exp(),
        epsilon.exp()
    );

    let mut protected_worst: f64 = 0.0;
    let mut plain_worst: f64 = 0.0;
    let mut happened = 0usize;

    for run in 0..runs {
        let mut rng = StdRng::seed_from_u64(run);
        let traj = chain.sample_trajectory_from(&pi, horizon, &mut rng)?;
        if event.eval(&traj)? {
            happened += 1;
        }

        // --- Protected: PriSTE-calibrated releases. ---
        let mut audit = pipeline.audit()?;
        let mut adversary = pipeline.adversary()?;
        for &loc in &traj {
            let rec = audit.release(loc, &mut rng)?;
            let mech: Box<dyn Lppm> = if rec.final_budget == 0.0 {
                Box::new(UniformMechanism::new(grid.num_cells()))
            } else {
                Box::new(PlanarLaplace::new(grid.clone(), rec.final_budget)?)
            };
            let inference = adversary.observe(&mech.emission_column(rec.observed))?;
            protected_worst = protected_worst.max(inference.odds_lift.ln().abs());
        }

        // --- Unprotected: the same α-PLM without calibration. ---
        let plm = pipeline.mechanism_instance()?;
        let mut rng = StdRng::seed_from_u64(run);
        let mut adversary = pipeline.adversary()?;
        for &loc in &traj {
            let obs = plm.perturb(loc, &mut rng);
            let inference = adversary.observe(&plm.emission_column(obs))?;
            plain_worst = plain_worst.max(inference.odds_lift.ln().abs());
        }
    }

    println!("\n{runs} trajectories ({happened} where the event actually happened):");
    println!(
        "  PriSTE-protected: worst |ln odds-lift| = {protected_worst:.4}  (bound ε = {epsilon})"
    );
    println!("  plain {alpha}-PLM:      worst |ln odds-lift| = {plain_worst:.4}");
    assert!(protected_worst <= epsilon + 1e-6, "guarantee violated!");
    println!(
        "\nThe exact Bayesian adversary gains at most e^{protected_worst:.3} = {:.3}x odds against",
        protected_worst.exp()
    );
    println!(
        "protected streams, versus {:.1}x against the unprotected mechanism.",
        plain_worst.exp()
    );
    Ok(())
}
