//! End-to-end GeoLife-style pipeline: train a mobility model from (real or
//! simulated) GPS data, inspect the learned pattern, and protect a
//! user-specified event on live releases — assembled through
//! [`Pipeline::on_world`].
//!
//! ```sh
//! # With the simulator (default):
//! cargo run --release --example geolife_analysis
//! # With real GeoLife trips (any number of .plt files):
//! cargo run --release --example geolife_analysis -- ~/Geolife/Data/000/Trajectory/*.plt
//! ```

use priste::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), PristeError> {
    // --- 1. Obtain a world: real .plt files if given, simulator otherwise.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let world = if args.is_empty() {
        println!("no .plt files supplied — using the commuter simulator");
        let cfg = geolife_sim::CommuterConfig {
            days: 30,
            ..Default::default()
        };
        geolife_sim::build(&cfg)?
    } else {
        println!("parsing {} .plt file(s)", args.len());
        let mut trips = Vec::new();
        for path in &args {
            trips.push(geolife::parse_plt_file(std::path::Path::new(path))?);
        }
        let grid = GridMap::new(20, 20, 2.5)?;
        geolife::build_world(&trips, &GeoBounds::beijing(), grid, 300.0, 0.05)?
    };
    println!(
        "world: {} cells ({:.1} km each), {} trajectories",
        world.grid.num_cells(),
        world.grid.cell_size_km(),
        world.trajectories.len()
    );

    // --- 2. Inspect the learned mobility pattern.
    let stationary = stationary_distribution(&world.chain, 1e-10, 200_000)?;
    let mut top: Vec<(usize, f64)> = stationary.as_slice().iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    println!("\ntop-5 stationary cells (the user's anchor places):");
    for &(cell, p) in top.iter().take(5) {
        let (r, c) = world.grid.to_row_col(CellId(cell))?;
        println!("  {} at (row {r}, col {c}): {:.3}", CellId(cell), p);
    }

    // --- 3. The secret: presence in the user's #1 anchor neighbourhood
    //         during the morning window.
    let anchor = CellId(top[0].0);
    let mut sensitive = Region::empty(world.grid.num_cells());
    sensitive.insert(anchor)?;
    for n in world.grid.neighbors4(anchor)? {
        sensitive.insert(n)?;
    }
    let event: StEvent = Presence::new(sensitive, 3, 8)?.into();
    println!("\nsecret: {event}");

    // --- 4. Release one (held-out) day through the pipeline's auditor.
    let epsilon = 1.0;
    let pipeline = Pipeline::on_world(&world)
        .event(event)
        .planar_laplace(0.5)
        .target_epsilon(epsilon)
        .build()?;
    let day = world
        .trajectories
        .last()
        .ok_or_else(|| {
            PristeError::from(priste::data::DataError::InsufficientData {
                message: "no trajectories in world".into(),
            })
        })?
        .clone();
    let horizon = day.len().min(16);
    let mut audit = pipeline.audit()?;
    let mut rng = StdRng::seed_from_u64(1);
    let mut total_budget = 0.0;
    let mut total_dist = 0.0;
    for &loc in day.iter().take(horizon) {
        let rec = audit.release(loc, &mut rng)?;
        total_budget += rec.final_budget;
        total_dist += rec.euclid_km;
    }
    println!("\nreleased {horizon} timestamps under ε = {epsilon}:");
    println!("  mean budget:   {:.4}", total_budget / horizon as f64);
    println!("  mean distance: {:.2} km", total_dist / horizon as f64);
    println!("\nThe adversary watching the released stream cannot decide whether the");
    println!("user was at their anchor place during t=3..8 with odds better than e^ε.");
    Ok(())
}
