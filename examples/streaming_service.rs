//! Streaming-service quickstart: 100 simulated users released through one
//! α-Planar-Laplace mechanism, ingested by the `priste-online` session
//! manager, which quantifies every user's event-privacy posture
//! incrementally (O(m²) per observation) and evicts windows as they expire.
//! The service — templates pre-registered, model shared via `Arc` — is
//! derived from one [`Pipeline`], and each timestep's batch is fanned out
//! over all cores with [`SessionManager::ingest_batch_parallel`].
//!
//! Run with `cargo run --example streaming_service`.

use priste::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), PristeError> {
    // One shared world: an 8×8 grid with a Gaussian-kernel mobility model.
    let grid = GridMap::new(8, 8, 1.0)?;
    let m = grid.num_cells();
    let chain = gaussian_kernel_chain(&grid, 1.0)?;

    // The pipeline: ε = 1.5 per-step verdicts, two protected-event
    // templates (attach-relative timestamps) — presence in the north-west
    // quarter during steps 2–5, and a two-step commute pattern entering
    // the first row then the second — plus the service knobs: 8 shards,
    // windows linger two steps past their event end, 30 units of
    // conservative budget per user.
    let pipeline = Pipeline::on(grid)
        .mobility(chain.clone())
        .event_spec(&format!("PRESENCE(S={{1:{}}}, T={{2:5}})", m / 4))
        .event_spec("PATTERN(S=[{1:8},{9:16}], T={2:3})")
        .planar_laplace(0.6)
        .target_epsilon(1.5)
        .service_config(OnlineConfig {
            num_shards: 8,
            linger: 2,
            budget: 30.0,
            ..OnlineConfig::default()
        })
        .build()?;
    let mut service = pipeline.serve()?;
    let (quarter, commute) = (0, 1); // template indices, in pipeline-event order

    // 100 users with seeded trajectories from the same mobility model.
    let users = 100u64;
    let steps = 12usize;
    let mut rng = StdRng::seed_from_u64(2019);
    let mut trajectories = Vec::with_capacity(users as usize);
    for u in 0..users {
        service.add_user(UserId(u), Vector::uniform(m))?;
        service.attach_event(UserId(u), if u % 3 == 0 { commute } else { quarter })?;
        trajectories.push(chain.sample_trajectory_from(&Vector::uniform(m), steps, &mut rng)?);
    }

    // The feed: every timestamp, every user perturbs their true location
    // through the shared 0.6-PLM and the service ingests the batch in
    // parallel (0 = one worker per core; output is thread-count
    // independent).
    let plm = pipeline.mechanism_instance()?;
    let mut worst = vec![0.0f64; users as usize];
    #[allow(clippy::needless_range_loop)] // column-wise access across per-user rows
    for t in 0..steps {
        let batch: Vec<(UserId, Vector)> = (0..users)
            .map(|u| {
                let observed = plm.perturb(trajectories[u as usize][t], &mut rng);
                (UserId(u), plm.emission_column(observed))
            })
            .collect();
        for report in service.ingest_batch_parallel(&batch, 0)? {
            let slot = &mut worst[report.user.0 as usize];
            *slot = slot.max(report.worst_loss);
        }
        println!(
            "t={:>2}: {:>3} active windows, {:>4} verdicts so far ({} violated)",
            t + 1,
            service.active_windows(),
            service.stats().certified + service.stats().violated,
            service.stats().violated,
        );
    }

    let stats = service.stats();
    let exhausted = (0..users)
        .filter(|&u| {
            service
                .session(UserId(u))
                .is_some_and(|s| s.ledger().exhausted())
        })
        .count();
    let finite_worst = worst
        .iter()
        .copied()
        .filter(|l| l.is_finite())
        .fold(0.0, f64::max);
    println!(
        "{} users × {} steps → {} observations; {} certified, {} violated, {} mismatched, {} windows evicted",
        users, steps, stats.observations, stats.certified, stats.violated, stats.mismatched,
        stats.evicted_windows
    );
    println!(
        "worst finite per-user realized loss: {finite_worst:.4}; {exhausted} budgets exhausted"
    );
    assert_eq!(stats.observations, users as usize * steps);
    println!("OK");
    Ok(())
}
