//! Quickstart: protect one PRESENCE event on a small synthetic world.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full PriSTE pipeline: build a world, specify a secret in the
//! paper's event notation, release a trajectory through calibrated Planar
//! Laplace, and verify the realized privacy loss post-hoc. The whole stack
//! is assembled through the one front door, [`Pipeline`].

use priste::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), PristeError> {
    // 1. A 6×6 km grid world with a moderately patterned mobility model.
    let grid = GridMap::new(6, 6, 1.0)?;
    let chain = gaussian_kernel_chain(&grid, 1.0)?;
    println!(
        "world: {} cells, Gaussian-kernel mobility (σ = 1 km)",
        grid.num_cells()
    );

    // 2. One pipeline: the secret (straight from the paper's notation —
    //    "was the user in cells s1..s6 at any time during timestamps
    //    3..5?"), the mechanism, and the target guarantee.
    let epsilon = 1.0;
    let alpha = 0.8;
    let pipeline = Pipeline::on(grid.clone())
        .mobility(chain.clone())
        .event_spec("PRESENCE(S={1:6}, T={3:5})")
        .planar_laplace(alpha)
        .target_epsilon(epsilon)
        .build()?;
    println!("secret: {}", pipeline.events()[0]);

    // 3. Derive the offline auditor (Algorithm 2: PriSTE with
    //    Geo-indistinguishability) and walk a sampled trajectory through.
    let mut audit = pipeline.audit()?;
    let mut rng = StdRng::seed_from_u64(42);
    let trajectory = chain.sample_trajectory(CellId(21), 10, &mut rng)?;
    println!("\n  t | true | released | budget | attempts | dist (km)");
    println!("  --+------+----------+--------+----------+----------");
    let mut released_columns = Vec::new();
    for &loc in &trajectory {
        let rec = audit.release(loc, &mut rng)?;
        println!(
            "  {:>2} | {:>4} | {:>8} | {:>6.3} | {:>8} | {:>8.2}",
            rec.t,
            loc.to_string(),
            rec.observed.to_string(),
            rec.final_budget,
            rec.attempts,
            rec.euclid_km,
        );
        // Remember the emission column actually used, for verification.
        let mech: Box<dyn Lppm> = if rec.final_budget == 0.0 {
            Box::new(UniformMechanism::new(grid.num_cells()))
        } else {
            Box::new(PlanarLaplace::new(grid.clone(), rec.final_budget)?)
        };
        released_columns.push(mech.emission_column(rec.observed));
    }

    // 4. Post-hoc verification through the same pipeline: under a uniform
    //    adversarial prior, the realized privacy loss must stay within ε
    //    at every timestamp.
    let mut quantifier = pipeline.quantifier()?;
    println!("\npost-hoc privacy loss (uniform prior), ε = {epsilon}:");
    let mut worst: f64 = 0.0;
    for col in &released_columns {
        let step = quantifier.observe(col)?;
        worst = worst.max(step.privacy_loss);
        println!("  t={:>2}: loss = {:.4}", step.t, step.privacy_loss);
    }
    assert!(
        worst <= epsilon + 1e-9,
        "privacy violated: {worst} > {epsilon}"
    );
    println!("\nOK: worst realized loss {worst:.4} ≤ ε = {epsilon}");
    Ok(())
}
