//! Calibrated-release quickstart: wrap a planar-Laplace mechanism in the
//! `priste-calibrate` guard so a commuter's release stream *provably*
//! satisfies ε-spatiotemporal event privacy — then compare against the
//! uncalibrated stream and the offline budget plan. Every view — the two
//! offline planners, the uncalibrated quantifier, and the calibrated guard
//! — derives from one [`Pipeline`].
//!
//! Run with `cargo run --example calibrated_release`.

use priste::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), PristeError> {
    // A 5×5 commuter world from the GeoLife-style simulator.
    let world = geolife_sim::build(&geolife_sim::CommuterConfig {
        rows: 5,
        cols: 5,
        seed: 2019,
        ..Default::default()
    })?;
    let m = world.grid.num_cells();
    let chain = world.chain.clone();

    // The secret: presence in the north-west quarter during timestamps 2–3.
    let target = 0.8;
    let alpha = 2.0;
    let pipeline = Pipeline::on_world(&world)
        .event_spec(&format!("PRESENCE(S={{1:{}}}, T={{2:3}})", m / 4))
        .planar_laplace(alpha)
        .target_epsilon(target)
        .build()?;

    // Offline: plan per-timestep budgets that certify ε* for *any* release
    // and any adversarial prior — three ways. The greedy search maximizes
    // each step's budget in order; the knapsack planner instead spends the
    // same certified ε-mass where it buys the most accuracy (here: the
    // negated expected planar-Laplace error, which is concave in ε, so
    // balanced budgets beat lopsided ones).
    let greedy = pipeline.plan_greedy(3)?;
    let uniform = pipeline.plan_uniform_split(3)?;
    let knapsack = pipeline.plan_knapsack(3)?;
    println!("offline knapsack plan (target ε* = {target}):");
    for step in &knapsack.steps {
        println!(
            "  t={} budget={:.4} capacity={:?} certified={}",
            step.t, step.budget, step.capacity, step.certified
        );
    }
    println!(
        "  greedy mean budget {:.4} vs uniform-split {:.4} ({} vs {} steps certified)",
        greedy.mean_budget(),
        uniform.mean_budget(),
        greedy.certified_steps(),
        uniform.certified_steps()
    );
    let model = PlanarLaplaceError;
    println!(
        "  utility gap ({}): knapsack {:.2} vs greedy {:.2} — same certified mass, \
         {:.0}% less expected error",
        model.name(),
        knapsack.total_utility(&model),
        greedy.total_utility(&model),
        (1.0 - knapsack.total_utility(&model) / greedy.total_utility(&model)) * 100.0
    );
    assert!(
        knapsack.all_certified() && knapsack.total_utility(&model) >= greedy.total_utility(&model),
        "the knapsack plan never does worse on its own objective"
    );

    // Online: one commuter day, uncalibrated vs calibrated.
    let steps = 8usize;
    let mut rng = StdRng::seed_from_u64(42);
    let trajectory = chain.sample_trajectory_from(&Vector::uniform(m), steps, &mut rng)?;

    let plm = pipeline.mechanism_instance()?;
    let mut audit = pipeline.quantifier()?;
    let mut plain_rng = StdRng::seed_from_u64(7);
    let mut uncalibrated_worst = 0.0f64;
    for &loc in &trajectory {
        let obs = plm.perturb(loc, &mut plain_rng);
        uncalibrated_worst =
            uncalibrated_worst.max(audit.observe(&plm.emission_column(obs))?.privacy_loss);
    }

    let mut calibrated = pipeline.enforce()?;
    let mut cal_rng = StdRng::seed_from_u64(7);
    let mut calibrated_worst = 0.0f64;
    println!("calibrated releases:");
    for &loc in &trajectory {
        let rel = calibrated.release(loc, &mut cal_rng)?;
        calibrated_worst = calibrated_worst.max(rel.loss);
        match rel.decision {
            Decision::Released {
                observed, budget, ..
            } => println!(
                "  t={} true={} released={} budget={:.4} loss={:.4} ({} attempts)",
                rel.t,
                loc.one_based(),
                observed.one_based(),
                budget,
                rel.loss,
                rel.attempts.len()
            ),
            Decision::Suppressed => println!(
                "  t={} true={} SUPPRESSED loss={:.4} ({} attempts)",
                rel.t,
                loc.one_based(),
                rel.loss,
                rel.attempts.len()
            ),
        }
    }
    println!(
        "worst realized loss: uncalibrated {uncalibrated_worst:.4} vs calibrated \
         {calibrated_worst:.4} (target {target})"
    );
    assert!(calibrated_worst <= target, "the guard's guarantee");
    println!("OK");
    Ok(())
}
