//! The paper's motivating scenario #1: *"visited hospital in the last
//! week"* — a PRESENCE secret.
//!
//! ```sh
//! cargo run --release --example hospital_presence
//! ```
//!
//! Demonstrates the paper's core claim (§II.C, Fig. 3): a mechanism can
//! satisfy a strong *location* privacy guarantee at every timestamp and
//! still leak the *event* "did the user visit the hospital district this
//! week?". We quantify the event-privacy loss of a plain Planar-Laplace
//! release (no PriSTE calibration), watch it blow past the target ε when
//! the user actually dwells near the hospital, then repeat with PriSTE and
//! watch the calibrated budgets enforce the bound. One [`Pipeline`]
//! describes the scenario; both views derive from it.

use priste::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), PristeError> {
    // A 10×10 city, 1 km cells. The hospital district is a 2×2 block.
    let grid = GridMap::new(10, 10, 1.0)?;
    let mut hospital = Region::empty(grid.num_cells());
    for (r, c) in [(4, 4), (4, 5), (5, 4), (5, 5)] {
        hospital.insert(grid.from_row_col(r, c)?)?;
    }
    println!("hospital district: {hospital}");

    // Mobility: strong local pattern. "Last week" = timestamps 2..=6 of a
    // 10-step horizon (one step ≈ a day part).
    let chain = gaussian_kernel_chain(&grid, 1.2)?;
    let event: StEvent = Presence::new(hospital.clone(), 2, 6)?.into();
    println!("secret: {event}\n");

    let epsilon = 0.5;
    let alpha = 1.0;
    let pipeline = Pipeline::on(grid.clone())
        .mobility(chain)
        .event(event)
        .planar_laplace(alpha)
        .target_epsilon(epsilon)
        .build()?;

    // A patient trajectory that dwells in the district mid-week.
    let visit_cell = grid.from_row_col(4, 4)?;
    let mut trajectory = vec![grid.from_row_col(8, 1)?, grid.from_row_col(7, 2)?];
    trajectory.extend([visit_cell, grid.from_row_col(5, 5)?, visit_cell]);
    trajectory.extend([
        grid.from_row_col(6, 3)?,
        grid.from_row_col(7, 2)?,
        grid.from_row_col(8, 1)?,
        grid.from_row_col(8, 1)?,
        grid.from_row_col(8, 1)?,
    ]);

    // --- Part 1: plain α-PLM (geo-indistinguishability only). ---
    let plm = pipeline.mechanism_instance()?;
    let mut rng = StdRng::seed_from_u64(2019);
    let mut quantifier = pipeline.quantifier()?;
    let mut worst_plain: f64 = 0.0;
    for &loc in &trajectory {
        let obs = plm.perturb(loc, &mut rng);
        let step = quantifier.observe(&plm.emission_column(obs))?;
        worst_plain = worst_plain.max(step.privacy_loss);
    }
    println!("plain {alpha}-PLM (location privacy only):");
    println!("  worst event-privacy loss over the week: {worst_plain:.3}");
    println!(
        "  target ε = {epsilon} → {}",
        if worst_plain > epsilon {
            "LEAKED"
        } else {
            "held (lucky draw)"
        }
    );

    // --- Part 2: the same mechanism inside PriSTE (Algorithm 2). ---
    let mut audit = pipeline.audit()?;
    let mut rng = StdRng::seed_from_u64(2019);
    let mut quantifier = pipeline.quantifier()?;
    let mut worst_priste: f64 = 0.0;
    println!("\nPriSTE-calibrated releases (ε = {epsilon}):");
    println!("  t | budget | loss");
    for &loc in &trajectory {
        let rec = audit.release(loc, &mut rng)?;
        let mech: Box<dyn Lppm> = if rec.final_budget == 0.0 {
            Box::new(UniformMechanism::new(grid.num_cells()))
        } else {
            Box::new(PlanarLaplace::new(grid.clone(), rec.final_budget)?)
        };
        let step = quantifier.observe(&mech.emission_column(rec.observed))?;
        worst_priste = worst_priste.max(step.privacy_loss);
        println!(
            "  {:>2} | {:>6.3} | {:.4}",
            rec.t, rec.final_budget, step.privacy_loss
        );
    }
    assert!(worst_priste <= epsilon + 1e-9);
    println!("\nOK: PriSTE kept the hospital-visit loss at {worst_priste:.4} ≤ ε = {epsilon}");
    println!("(plain PLM reached {worst_plain:.3} on the identical trajectory)");
    Ok(())
}
