//! Durable streaming service: crash a mid-stream enforcing service and
//! recover its spent ε-budget from disk.
//!
//! Without durability, a restart resets every [`BudgetLedger`] to zero
//! spend and the guard happily re-releases against budget that was already
//! consumed — an under-count, which under sequential composition is a
//! privacy violation, not an availability bug. `.durable(dir)` closes the
//! hole: every committed release is journaled to a per-shard write-ahead
//! log *before* its result is returned, snapshots compact the log
//! periodically, and reopening the same directory recovers the exact
//! committed state (deterministic WAL replay; torn final records round
//! ledger spend *up*, never down).
//!
//! Run with `cargo run --example durable_service`.
//!
//! [`BudgetLedger`]: priste::online::BudgetLedger

use priste::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), PristeError> {
    let dir = std::env::temp_dir().join(format!("priste-durable-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // The scenario: a 6×6 world, a protected presence window over steps
    // 2–5, a 1.2-PLM behind the calibration guard at ε* = 0.9 — and a
    // durable directory. The same closure reopens the identical scenario
    // later; the store fingerprints it and refuses mismatched state.
    let pipeline = || -> Result<Pipeline, PristeError> {
        let grid = GridMap::new(6, 6, 1.0)?;
        let chain = gaussian_kernel_chain(&grid, 1.0)?;
        Pipeline::on(grid)
            .mobility(chain)
            .event_spec("PRESENCE(S={1:9}, T={2:5})")
            .planar_laplace(1.2)
            .target_epsilon(0.9)
            .service_config(OnlineConfig {
                num_shards: 4,
                budget: 25.0,
                ..OnlineConfig::default()
            })
            .durable(&dir)
            .build()
    };

    // ---- First life: stream six enforced releases for ten users. --------
    let built = pipeline()?;
    let chain = built.chain().expect("mobility set above").clone();
    let m = built.num_cells();
    let mut service = built.serve_enforcing()?;
    let users = 10u64;
    let mut rng = StdRng::seed_from_u64(2019);
    let mut trajectories = Vec::new();
    for u in 0..users {
        service.add_user(UserId(u), Vector::uniform(m))?;
        service.attach_event(UserId(u), 0)?;
        trajectories.push(chain.sample_trajectory_from(&Vector::uniform(m), 6, &mut rng)?);
    }
    for t in 0..6 {
        for (u, traj) in trajectories.iter().enumerate() {
            service.release(UserId(u as u64), traj[t], &mut rng)?;
        }
    }
    let spent_before: Vec<f64> = (0..users)
        .map(|u| service.session(UserId(u)).unwrap().ledger().spent())
        .collect();
    let digest = service.state_digest();
    println!("first life: {} users, state digest {digest:016x}", users);
    println!(
        "  user 0 spent {:.4} of {:.1}",
        spent_before[0],
        service.session(UserId(0)).unwrap().ledger().budget()
    );

    // ---- Crash: drop the service without a shutdown checkpoint. ---------
    drop(service);
    println!("crash: service dropped mid-stream (no checkpoint)");

    // ---- Second life: reopen the directory; the WAL replays. ------------
    let reopened = pipeline()?.serve_enforcing()?;
    assert_eq!(reopened.state_digest(), digest, "recovery must be exact");
    println!(
        "recovered: {} users, state digest {:016x} (identical)",
        reopened.num_users(),
        reopened.state_digest()
    );
    for u in 0..users {
        let ledger = reopened.session(UserId(u)).unwrap().ledger();
        assert_eq!(ledger.spent(), spent_before[u as usize]);
    }
    println!(
        "  user 0 spent {:.4} — the restart forgot nothing",
        reopened.session(UserId(0)).unwrap().ledger().spent()
    );

    // ---- Read-only inspection without touching the journal. -------------
    let inspected = pipeline()?.recover_service()?;
    println!(
        "read-only recover: digest {:016x}, {} observations on record",
        inspected.state_digest(),
        inspected.stats().observations
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
