//! The workspace-wide error hierarchy.
//!
//! Every member crate has its own error enum; applications built on the
//! `priste` facade should not have to name a dozen different types to write
//! one `?`. [`PristeError`] wraps each of them via `From` (so `?` converts
//! automatically anywhere in a pipeline) and forwards
//! [`std::error::Error::source`], preserving the full cause chain down to
//! the layer that actually failed.

use std::fmt;

/// Any error the PriSTE workspace can produce, one layer per variant.
///
/// Construction happens through the `From` impls; the [`PristeError::Pipeline`]
/// variant is the facade's own: a [`crate::PipelineBuilder`] was asked to
/// derive a mode its configuration cannot support.
#[derive(Debug)]
#[non_exhaustive]
pub enum PristeError {
    /// Dense linear algebra (shapes, stochasticity, convergence).
    Linalg(priste_linalg::LinalgError),
    /// Grids, cells, regions, geodesy.
    Geo(priste_geo::GeoError),
    /// Mobility models (training, sampling, schedules).
    Markov(priste_markov::MarkovError),
    /// Event construction and the event DSL.
    Event(priste_event::EventError),
    /// Mechanism construction and budget scaling.
    Lppm(priste_lppm::LppmError),
    /// The two-possible-world quantification engine.
    Quantify(priste_quantify::QuantifyError),
    /// Budget planning and the calibration guard.
    Calibrate(priste_calibrate::CalibrateError),
    /// Dataset parsing and world synthesis.
    Data(priste_data::DataError),
    /// The offline PriSTE framework (Algorithms 1–3).
    Core(priste_core::CoreError),
    /// The streaming multi-user service.
    Online(priste_online::OnlineError),
    /// The durable session store (journaling, checkpointing, recovery).
    /// Durable errors raised *inside* a service call arrive wrapped as
    /// [`PristeError::Online`]; this variant is for facade APIs that talk
    /// to the store directly.
    Durable(priste_online::DurableError),
    /// The HTTP serving layer (bind/accept failures, drain finalization).
    Serve(priste_serve::ServeError),
    /// The pipeline builder itself: a mode was requested that the
    /// accumulated configuration cannot support (missing mobility model,
    /// missing mechanism, no events, …).
    Pipeline {
        /// What is missing or inconsistent.
        message: String,
    },
}

impl PristeError {
    /// Shorthand for a builder-level failure.
    pub(crate) fn pipeline(message: impl Into<String>) -> Self {
        PristeError::Pipeline {
            message: message.into(),
        }
    }
}

impl fmt::Display for PristeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PristeError::Linalg(e) => write!(f, "linear-algebra error: {e}"),
            PristeError::Geo(e) => write!(f, "geometry error: {e}"),
            PristeError::Markov(e) => write!(f, "mobility-model error: {e}"),
            PristeError::Event(e) => write!(f, "event error: {e}"),
            PristeError::Lppm(e) => write!(f, "mechanism error: {e}"),
            PristeError::Quantify(e) => write!(f, "quantification error: {e}"),
            PristeError::Calibrate(e) => write!(f, "calibration error: {e}"),
            PristeError::Data(e) => write!(f, "data error: {e}"),
            PristeError::Core(e) => write!(f, "framework error: {e}"),
            PristeError::Online(e) => write!(f, "streaming-service error: {e}"),
            PristeError::Durable(e) => write!(f, "durable-store error: {e}"),
            PristeError::Serve(e) => write!(f, "serving error: {e}"),
            PristeError::Pipeline { message } => write!(f, "pipeline error: {message}"),
        }
    }
}

impl std::error::Error for PristeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PristeError::Linalg(e) => Some(e),
            PristeError::Geo(e) => Some(e),
            PristeError::Markov(e) => Some(e),
            PristeError::Event(e) => Some(e),
            PristeError::Lppm(e) => Some(e),
            PristeError::Quantify(e) => Some(e),
            PristeError::Calibrate(e) => Some(e),
            PristeError::Data(e) => Some(e),
            PristeError::Core(e) => Some(e),
            PristeError::Online(e) => Some(e),
            PristeError::Durable(e) => Some(e),
            PristeError::Serve(e) => Some(e),
            PristeError::Pipeline { .. } => None,
        }
    }
}

macro_rules! wrap {
    ($variant:ident, $inner:ty) => {
        impl From<$inner> for PristeError {
            fn from(e: $inner) -> Self {
                PristeError::$variant(e)
            }
        }
    };
}

wrap!(Linalg, priste_linalg::LinalgError);
wrap!(Geo, priste_geo::GeoError);
wrap!(Markov, priste_markov::MarkovError);
wrap!(Event, priste_event::EventError);
wrap!(Lppm, priste_lppm::LppmError);
wrap!(Quantify, priste_quantify::QuantifyError);
wrap!(Calibrate, priste_calibrate::CalibrateError);
wrap!(Data, priste_data::DataError);
wrap!(Core, priste_core::CoreError);
wrap!(Online, priste_online::OnlineError);
wrap!(Durable, priste_online::DurableError);
wrap!(Serve, priste_serve::ServeError);

/// Convenience result alias for facade-level APIs.
pub type Result<T> = std::result::Result<T, PristeError>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn every_layer_converts_and_chains() {
        let cases: Vec<PristeError> = vec![
            priste_linalg::LinalgError::Empty { op: "sum" }.into(),
            priste_geo::GeoError::EmptyGrid.into(),
            priste_markov::MarkovError::NoTrainingData.into(),
            priste_event::EventError::EmptyRegion.into(),
            priste_lppm::LppmError::InvalidBudget { value: -1.0 }.into(),
            priste_quantify::QuantifyError::ZeroLikelihood { t: 3 }.into(),
            priste_calibrate::CalibrateError::InvalidConfig {
                message: "x".into(),
            }
            .into(),
            priste_data::DataError::InsufficientData {
                message: "y".into(),
            }
            .into(),
            priste_core::CoreError::NoEvents.into(),
            priste_online::OnlineError::NotEnforcing.into(),
            priste_online::DurableError::NoSnapshot {
                dir: std::path::PathBuf::from("/tmp/d"),
            }
            .into(),
            priste_serve::ServeError::Online(priste_online::OnlineError::NotEnforcing).into(),
        ];
        for e in &cases {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_some(), "layer errors must chain: {e}");
        }
        let builder = PristeError::pipeline("missing mobility model");
        assert!(builder.to_string().contains("missing mobility model"));
        assert!(builder.source().is_none());
    }

    #[test]
    fn source_chain_reaches_the_root_cause() {
        // online → quantify → linalg: three layers deep.
        let root = priste_linalg::LinalgError::NotDistribution { sum: 0.4 };
        let mid = priste_quantify::QuantifyError::InvalidInitial(root);
        let e: PristeError = priste_online::OnlineError::Quantify(mid).into();
        let mut depth = 0;
        let mut cur: &dyn Error = &e;
        while let Some(next) = cur.source() {
            cur = next;
            depth += 1;
        }
        assert_eq!(depth, 3, "expected online → quantify → linalg chain");
        assert!(cur.to_string().contains("0.4"));
    }
}
