//! The workspace's front door: one fluent builder, three derived modes.
//!
//! Historically each entry point was wired by hand: the offline auditor
//! ([`Priste`]) wanted an event slice, a provider, a [`MechanismSource`]
//! and a [`PristeConfig`]; the streaming service
//! ([`SessionManager`]) wanted a shared provider and an [`OnlineConfig`];
//! the enforcing guard ([`CalibratedMechanism`]) wanted a boxed mechanism,
//! a `π` and a [`GuardConfig`]. [`Pipeline`] collapses the three into one
//! description of the scenario — world, mobility, secrets, mechanism,
//! target ε — from which every mode is derived:
//!
//! ```
//! use priste::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let grid = GridMap::new(5, 5, 1.0)?;
//! let chain = gaussian_kernel_chain(&grid, 1.0)?;
//! let pipeline = Pipeline::on(grid.clone())
//!     .mobility(chain.clone())
//!     .event_spec("PRESENCE(S={1:5}, T={2:4})")
//!     .mechanism(PlanarLaplace::new(grid, 0.5)?)
//!     .target_epsilon(1.0)
//!     .build()?;
//!
//! let mut audit = pipeline.audit()?;      // offline quantifier (Algorithm 2)
//! let mut rng = StdRng::seed_from_u64(7);
//! let release = audit.release(CellId(12), &mut rng)?;
//! assert!(release.final_budget <= 0.5);
//!
//! let service = pipeline.serve()?;        // streaming multi-user service
//! assert_eq!(service.templates().len(), 1);
//!
//! let guard = pipeline.enforce()?;        // calibrated release guard
//! assert_eq!(guard.config().target_epsilon, 1.0);
//! # Ok::<(), priste::PristeError>(())
//! ```
//!
//! The pipeline shares one mobility model across every derived mode (an
//! [`Arc`]-backed [`SharedProvider`]), so a `Pipeline` — and everything it
//! derives — is `Send + Sync` and can be handed to worker threads.
//!
//! Past one process, the same scenario scales horizontally: per-user
//! accounting is independent across users, so N [`serve_http`]-style
//! daemons (each over its own durable directory) behind a
//! [`crate::cluster`] router — which jump-consistent-hashes user ids
//! onto workers — serve the same protocol with the same guarantees. See
//! the `cluster` crate docs for the topology and the shard-handoff
//! runbook.
//!
//! [`serve_http`]: Pipeline::serve_http

use crate::error::{PristeError, Result};
use priste_calibrate::{
    plan_greedy, plan_knapsack, plan_knapsack_with_probes, plan_uniform_split, BudgetPlan,
    CalibratedMechanism, GuardConfig, PlanarLaplaceError, PlannerConfig, UtilityModel,
};
use priste_core::{DeltaLocSource, MechanismSource, PlmSource, Priste, PristeConfig};
use priste_data::World;
use priste_event::{dsl::parse_event, StEvent};
use priste_geo::GridMap;
use priste_linalg::Vector;
use priste_lppm::{Lppm, PlanarLaplace};
use priste_markov::{Homogeneous, MarkovModel, TimeVarying, TransitionProvider};
use priste_obs::Registry;
use priste_online::{DurableOptions, OnlineConfig, SessionManager};
use priste_qp::TheoremChecker;
use priste_quantify::{attack::BayesianAdversary, IncrementalTwoWorld, TheoremBuilder};
use priste_serve::{Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// The pipeline's canonical mobility handle: one model, shared by every
/// session, window and worker thread.
pub type SharedProvider = Arc<dyn TransitionProvider + Send + Sync>;

/// The mechanism source type audits run on (boxed so the α-PLM and
/// δ-location-set instantiations share one [`Audit`] type).
pub type AuditSource = Box<dyn MechanismSource + Send>;

/// The offline auditor derived by [`Pipeline::audit`].
pub type Audit = Priste<SharedProvider, AuditSource>;

/// How the pipeline obtains its mechanism: a concrete prototype, or an
/// α-Planar-Laplace built against the pipeline's own grid on demand.
enum MechanismSpec {
    /// Build `PlanarLaplace::new(grid, alpha)` when a mode needs it.
    Alpha(f64),
    /// A caller-supplied prototype; fresh instances are re-derived at the
    /// prototype's own budget via [`Lppm::with_budget`].
    Custom(Box<dyn Lppm>),
}

impl MechanismSpec {
    fn instantiate(&self, grid: &GridMap) -> Result<Box<dyn Lppm>> {
        match self {
            MechanismSpec::Alpha(alpha) => Ok(Box::new(PlanarLaplace::new(grid.clone(), *alpha)?)),
            MechanismSpec::Custom(proto) => Ok(proto.with_budget(proto.budget())?),
        }
    }

    fn base_budget(&self) -> f64 {
        match self {
            MechanismSpec::Alpha(alpha) => *alpha,
            MechanismSpec::Custom(proto) => proto.budget(),
        }
    }
}

impl std::fmt::Debug for MechanismSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MechanismSpec::Alpha(alpha) => write!(f, "Alpha({alpha})"),
            MechanismSpec::Custom(proto) => f
                .debug_struct("Custom")
                .field("budget", &proto.budget())
                .field("num_cells", &proto.num_cells())
                .finish(),
        }
    }
}

/// Fluent configuration for a [`Pipeline`]. Start from [`Pipeline::on`],
/// chain setters, finish with [`PipelineBuilder::build`] — or jump straight
/// to a mode ([`PipelineBuilder::audit`], [`PipelineBuilder::serve`],
/// [`PipelineBuilder::enforce`]), which builds implicitly.
///
/// Setters never fail; fallible inputs (an unparsable event spec) are
/// recorded and surfaced by `build()`, keeping chains uninterrupted.
pub struct PipelineBuilder {
    grid: GridMap,
    chain: Option<MarkovModel>,
    schedule: Option<Vec<MarkovModel>>,
    sparse: bool,
    provider: Option<SharedProvider>,
    events: Vec<StEvent>,
    mechanism: Option<MechanismSpec>,
    delta: Option<f64>,
    epsilon: f64,
    pi: Option<Vector>,
    audit_config: Option<PristeConfig>,
    service_config: Option<OnlineConfig>,
    guard_config: Option<GuardConfig>,
    planner_config: Option<PlannerConfig>,
    durable_dir: Option<PathBuf>,
    durable_options: DurableOptions,
    registry: Option<Registry>,
    deferred: Option<PristeError>,
}

impl PipelineBuilder {
    /// The mobility model: a time-homogeneous chain (the paper's primary
    /// setting). Also retained as the concrete [`MarkovModel`] that
    /// δ-location-set audits need.
    pub fn mobility(mut self, chain: MarkovModel) -> Self {
        self.chain = Some(chain);
        self
    }

    /// A time-varying mobility schedule (footnote 3): step `t → t+1` uses
    /// `schedule[min(t−1, len−1)]`.
    pub fn mobility_schedule(mut self, schedule: Vec<MarkovModel>) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Converts the mobility model(s) to their density-optimal backend at
    /// build time ([`MarkovModel::with_auto_backend`]): chains whose
    /// transition matrix is at or below the
    /// [`SPARSE_DENSITY_CUTOVER`](priste_markov::SPARSE_DENSITY_CUTOVER)
    /// density run on the CSR backend, so every derived mode — audit,
    /// serve, enforce, the cluster — pays `O(nnz)` per observation instead
    /// of `O(m²)`. Dense-enough chains are left dense; chains built sparse
    /// (e.g. by [`priste_markov::gaussian_kernel_chain_sparse`]) are
    /// already sparse-backed and need no knob. Applies to
    /// [`Self::mobility`] and every model of [`Self::mobility_schedule`];
    /// pre-built [`Self::mobility_provider`]s are used as supplied.
    pub fn sparse_mobility(mut self) -> Self {
        self.sparse = true;
        self
    }

    /// An arbitrary pre-built transition provider (most general; loses the
    /// concrete chain, so δ-location-set audits need [`Self::mobility`]).
    pub fn mobility_provider<P>(mut self, provider: P) -> Self
    where
        P: TransitionProvider + Send + Sync + 'static,
    {
        self.provider = Some(Arc::new(provider));
        self
    }

    /// Adds one protected event.
    pub fn event(mut self, event: StEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Adds protected events in bulk.
    pub fn events<I: IntoIterator<Item = StEvent>>(mut self, events: I) -> Self {
        self.events.extend(events);
        self
    }

    /// Adds one protected event in the paper's notation, parsed against the
    /// pipeline's grid — e.g. `"PRESENCE(S={1:10}, T={4:8})"`. Parse
    /// failures surface from [`PipelineBuilder::build`].
    pub fn event_spec(mut self, spec: &str) -> Self {
        match parse_event(spec, self.grid.num_cells()) {
            Ok(event) => self.events.push(event),
            Err(e) if self.deferred.is_none() => self.deferred = Some(e.into()),
            Err(_) => {}
        }
        self
    }

    /// The location-privacy mechanism every mode converts or audits.
    pub fn mechanism<L: Lppm + 'static>(mut self, lppm: L) -> Self {
        self.mechanism = Some(MechanismSpec::Custom(Box::new(lppm)));
        self
    }

    /// Shorthand for an α-Planar-Laplace mechanism over the pipeline's own
    /// grid (built on demand, so no construction error here).
    pub fn planar_laplace(mut self, alpha: f64) -> Self {
        self.mechanism = Some(MechanismSpec::Alpha(alpha));
        self
    }

    /// Switches [`Pipeline::audit`] to the δ-location-set instantiation
    /// (Algorithm 3): mechanisms rebuilt per step from the adversarial
    /// posterior at the given δ.
    pub fn delta_location(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// The ε of ε-spatiotemporal event privacy every mode targets: the
    /// audit's certification level, the service's verdict threshold, and
    /// the guard's `target_epsilon`.
    pub fn target_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// The adversary's initial distribution `π` (uniform when omitted).
    pub fn initial(mut self, pi: Vector) -> Self {
        self.pi = Some(pi);
        self
    }

    /// Advanced audit knobs (QP work budget, decay, attempt caps). The
    /// pipeline's [`Self::target_epsilon`] overrides the config's own ε.
    pub fn audit_config(mut self, config: PristeConfig) -> Self {
        self.audit_config = Some(config);
        self
    }

    /// Advanced service knobs (shards, linger, ledger budget). The
    /// pipeline's [`Self::target_epsilon`] overrides the config's own ε.
    pub fn service_config(mut self, config: OnlineConfig) -> Self {
        self.service_config = Some(config);
        self
    }

    /// Advanced guard knobs (backoff, floor, exhaustion policy). The
    /// pipeline's [`Self::target_epsilon`] overrides the config's own
    /// target.
    pub fn guard(mut self, config: GuardConfig) -> Self {
        self.guard_config = Some(config);
        self
    }

    /// Advanced planner knobs for [`Pipeline::plan_greedy`] /
    /// [`Pipeline::plan_uniform_split`].
    pub fn planner(mut self, config: PlannerConfig) -> Self {
        self.planner_config = Some(config);
        self
    }

    /// Makes every service derived by [`Pipeline::serve`] /
    /// [`Pipeline::serve_enforcing`] **durable**: session state is
    /// journaled to `dir` (snapshot + per-shard WAL) and a service opened
    /// over a directory that already holds state recovers it instead of
    /// starting from zero spend. See the `priste_online::durable` module
    /// docs for the file layout and recovery guarantees.
    pub fn durable(mut self, dir: impl Into<PathBuf>) -> Self {
        self.durable_dir = Some(dir.into());
        self
    }

    /// Advanced durability knobs (fsync policy, snapshot compaction
    /// cadence) for [`PipelineBuilder::durable`].
    pub fn durable_options(mut self, opts: DurableOptions) -> Self {
        self.durable_options = opts;
        self
    }

    /// Attaches a metrics [`Registry`] (from `priste_obs`): every derived
    /// mode exports its counters/histograms into it — the service's
    /// `online_*` stats and batch latencies, the guard's `guard_*` release
    /// accounting, the durable substrate's `durable_*` WAL/snapshot
    /// timings, and `calibrate_plan_*` planner metrics. Registries are
    /// cheap `Arc`-backed handles; the same one can be shared with other
    /// pipelines or rendered at any time (`render_prometheus` /
    /// `render_json`).
    pub fn observe(mut self, registry: &Registry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// Validates the accumulated configuration into an immutable,
    /// shareable [`Pipeline`].
    ///
    /// # Errors
    /// [`PristeError::Pipeline`] when no mobility model was supplied or ε
    /// is not positive and finite; deferred setter errors (event-spec
    /// parses); validation errors from the per-mode configs.
    pub fn build(self) -> Result<Pipeline> {
        if let Some(deferred) = self.deferred {
            return Err(deferred);
        }
        if !(self.epsilon > 0.0 && self.epsilon.is_finite()) {
            return Err(PristeError::pipeline(format!(
                "target_epsilon must be positive and finite, got {}",
                self.epsilon
            )));
        }
        let chain = if self.sparse {
            self.chain.map(MarkovModel::with_auto_backend)
        } else {
            self.chain
        };
        let schedule = if self.sparse {
            self.schedule
                .map(|s| s.into_iter().map(MarkovModel::with_auto_backend).collect())
        } else {
            self.schedule
        };
        let provider: SharedProvider = if let Some(provider) = self.provider {
            provider
        } else if let Some(schedule) = schedule {
            Arc::new(TimeVarying::new(schedule)?)
        } else if let Some(chain) = chain.clone() {
            Arc::new(Homogeneous::new(chain))
        } else {
            return Err(PristeError::pipeline(
                "a mobility model is required: call .mobility(chain), \
                 .mobility_schedule(models) or .mobility_provider(p)",
            ));
        };
        let m = self.grid.num_cells();
        if provider.num_states() != m {
            return Err(PristeError::pipeline(format!(
                "mobility model has {} states but the grid has {m} cells",
                provider.num_states()
            )));
        }
        for event in &self.events {
            if event.num_cells() != m {
                return Err(PristeError::pipeline(format!(
                    "event {event} is defined over {} cells but the grid has {m}",
                    event.num_cells()
                )));
            }
        }
        let pi = match self.pi {
            Some(pi) => {
                pi.validate_distribution()?;
                if pi.len() != m {
                    return Err(PristeError::pipeline(format!(
                        "initial distribution has length {} but the grid has {m} cells",
                        pi.len()
                    )));
                }
                pi
            }
            None => Vector::uniform(m),
        };

        let mut audit_config = self.audit_config.unwrap_or_default();
        audit_config.epsilon = self.epsilon;
        audit_config.validate()?;
        let mut service_config = self.service_config.unwrap_or_default();
        service_config.epsilon = self.epsilon;
        service_config.validate()?;
        let mut guard_config = self.guard_config.unwrap_or_default();
        guard_config.target_epsilon = self.epsilon;
        guard_config.validate()?;
        let planner_config = self.planner_config.unwrap_or_default();
        planner_config.validate()?;
        if let Some(delta) = self.delta {
            if !(delta > 0.0 && delta < 1.0) {
                return Err(PristeError::pipeline(format!(
                    "delta must lie in (0, 1), got {delta}"
                )));
            }
        }

        Ok(Pipeline {
            grid: self.grid,
            chain,
            provider,
            events: self.events,
            mechanism: self.mechanism,
            delta: self.delta,
            epsilon: self.epsilon,
            pi,
            audit_config,
            service_config,
            guard_config,
            planner_config,
            durable_dir: self.durable_dir,
            durable_options: self.durable_options,
            registry: self.registry,
        })
    }

    /// Builds and derives the offline auditor in one call.
    ///
    /// # Errors
    /// See [`PipelineBuilder::build`] and [`Pipeline::audit`].
    pub fn audit(self) -> Result<Audit> {
        self.build()?.audit()
    }

    /// Builds and derives the streaming service in one call.
    ///
    /// # Errors
    /// See [`PipelineBuilder::build`] and [`Pipeline::serve`].
    pub fn serve(self) -> Result<SessionManager<SharedProvider>> {
        self.build()?.serve()
    }

    /// Builds and derives the enforcing streaming service in one call.
    ///
    /// # Errors
    /// See [`PipelineBuilder::build`] and [`Pipeline::serve_enforcing`].
    pub fn serve_enforcing(self) -> Result<SessionManager<SharedProvider>> {
        self.build()?.serve_enforcing()
    }

    /// Builds and derives the calibrated guard in one call.
    ///
    /// # Errors
    /// See [`PipelineBuilder::build`] and [`Pipeline::enforce`].
    pub fn enforce(self) -> Result<CalibratedMechanism<SharedProvider>> {
        self.build()?.enforce()
    }
}

/// A validated scenario description — world, mobility, protected events,
/// mechanism, target ε — from which every operating mode of the workspace
/// is derived. Cheap to share (`Send + Sync`; the mobility model is behind
/// an [`Arc`]) and reusable: each derivation call yields a fresh,
/// independent stack.
pub struct Pipeline {
    grid: GridMap,
    chain: Option<MarkovModel>,
    provider: SharedProvider,
    events: Vec<StEvent>,
    mechanism: Option<MechanismSpec>,
    delta: Option<f64>,
    epsilon: f64,
    pi: Vector,
    audit_config: PristeConfig,
    service_config: OnlineConfig,
    guard_config: GuardConfig,
    planner_config: PlannerConfig,
    durable_dir: Option<PathBuf>,
    durable_options: DurableOptions,
    registry: Option<Registry>,
}

impl std::fmt::Debug for PipelineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineBuilder")
            .field("num_cells", &self.grid.num_cells())
            .field("events", &self.events.len())
            .field("mechanism", &self.mechanism)
            .field("target_epsilon", &self.epsilon)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("num_cells", &self.grid.num_cells())
            .field("events", &self.events.len())
            .field("mechanism", &self.mechanism)
            .field("delta", &self.delta)
            .field("target_epsilon", &self.epsilon)
            .finish_non_exhaustive()
    }
}

impl Pipeline {
    /// Opens a pipeline over a spatial world (the grid the mechanism and
    /// the mobility model share).
    pub fn on(grid: GridMap) -> PipelineBuilder {
        PipelineBuilder {
            grid,
            chain: None,
            schedule: None,
            sparse: false,
            provider: None,
            events: Vec::new(),
            mechanism: None,
            delta: None,
            epsilon: 1.0,
            pi: None,
            audit_config: None,
            service_config: None,
            guard_config: None,
            planner_config: None,
            durable_dir: None,
            durable_options: DurableOptions::default(),
            registry: None,
            deferred: None,
        }
    }

    /// Opens a pipeline over a [`World`] (grid + trained chain), e.g. from
    /// the GeoLife parser or the commuter simulator.
    pub fn on_world(world: &World) -> PipelineBuilder {
        Pipeline::on(world.grid.clone()).mobility(world.chain.clone())
    }

    // ---- Accessors -------------------------------------------------------

    /// The spatial grid.
    pub fn grid(&self) -> &GridMap {
        &self.grid
    }

    /// State-domain size `m`.
    pub fn num_cells(&self) -> usize {
        self.grid.num_cells()
    }

    /// The concrete mobility chain, when one was supplied via
    /// [`PipelineBuilder::mobility`].
    pub fn chain(&self) -> Option<&MarkovModel> {
        self.chain.as_ref()
    }

    /// The shared transition provider every derived mode runs on.
    pub fn provider(&self) -> SharedProvider {
        Arc::clone(&self.provider)
    }

    /// The protected events.
    pub fn events(&self) -> &[StEvent] {
        &self.events
    }

    /// The target ε of ε-spatiotemporal event privacy.
    pub fn target_epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The adversary's initial distribution `π`.
    pub fn initial(&self) -> &Vector {
        &self.pi
    }

    /// The attached metrics registry, when one was supplied via
    /// [`PipelineBuilder::observe`]. Render it at any time with
    /// [`Registry::render_prometheus`] or [`Registry::render_json`].
    pub fn metrics_registry(&self) -> Option<&Registry> {
        self.registry.as_ref()
    }

    /// A fresh instance of the pipeline's mechanism (e.g. to drive a
    /// client-side feed whose releases the service merely audits).
    ///
    /// # Errors
    /// [`PristeError::Pipeline`] when no mechanism was configured;
    /// mechanism construction failures.
    pub fn mechanism_instance(&self) -> Result<Box<dyn Lppm>> {
        self.mechanism
            .as_ref()
            .ok_or_else(|| {
                PristeError::pipeline(
                    "a mechanism is required: call .mechanism(lppm) or .planar_laplace(alpha)",
                )
            })?
            .instantiate(&self.grid)
    }

    // ---- The three modes -------------------------------------------------

    /// Derives the **offline auditor**: the PriSTE framework of Algorithms
    /// 1–3, releasing one trajectory under the target ε. Uses the
    /// δ-location-set instantiation when [`PipelineBuilder::delta_location`]
    /// was set, the α-PLM instantiation otherwise.
    ///
    /// # Errors
    /// [`PristeError::Pipeline`] when events or the mechanism are missing,
    /// or when a δ-location audit lacks a concrete chain or was given a
    /// sparse-backed one; layer errors.
    pub fn audit(&self) -> Result<Audit> {
        let mechanism = self.require_mechanism()?;
        let source: AuditSource = if let Some(delta) = self.delta {
            let chain = self.chain.clone().ok_or_else(|| {
                PristeError::pipeline(
                    "a delta-location audit needs a concrete chain: call .mobility(chain)",
                )
            })?;
            if chain.is_sparse() {
                return Err(PristeError::pipeline(
                    "delta-location audits rebuild mechanisms from the dense transition \
                     matrix; supply a dense chain or drop .sparse_mobility()",
                ));
            }
            Box::new(DeltaLocSource::new(
                self.grid.clone(),
                delta,
                mechanism.base_budget(),
                chain,
                self.pi.clone(),
            )?)
        } else {
            Box::new(PlmSource::from_mechanism(
                mechanism.instantiate(&self.grid)?,
            ))
        };
        Ok(Priste::new(
            &self.events,
            self.provider(),
            source,
            self.grid.clone(),
            self.audit_config.clone(),
        )?)
    }

    /// Derives the **streaming service**: a [`SessionManager`] sharing the
    /// pipeline's mobility model, with every pipeline event pre-registered
    /// as an attachable template (in [`Pipeline::events`] order).
    ///
    /// With [`PipelineBuilder::durable`] configured, the service opens over
    /// the durable directory: existing state (spent budget included) is
    /// recovered, a fresh directory starts empty, and every committed
    /// mutation is journaled from then on.
    ///
    /// # Errors
    /// Service-configuration and template-registration failures; durable
    /// recovery or I/O failures when a durable directory is configured.
    pub fn serve(&self) -> Result<SessionManager<SharedProvider>> {
        let mut service = if let Some(dir) = &self.durable_dir {
            SessionManager::open_durable(
                self.provider(),
                self.service_config.clone(),
                self.events.clone(),
                dir,
                self.durable_options,
            )?
        } else {
            let mut service = SessionManager::new(self.provider(), self.service_config.clone())?;
            for event in &self.events {
                service.register_template(event.clone())?;
            }
            service
        };
        if let Some(registry) = &self.registry {
            service.observe(registry);
        }
        Ok(service)
    }

    /// Read-only recovery of the durable service state: rebuilds a
    /// [`SessionManager`] from the snapshot + WAL in the pipeline's durable
    /// directory *without* attaching a store, so inspecting state (e.g. the
    /// `priste recover` subcommand) neither journals nor checkpoints.
    /// Recovering twice from the same directory yields byte-identical
    /// state ([`SessionManager::state_digest`]).
    ///
    /// # Errors
    /// [`PristeError::Pipeline`] when no durable directory was configured;
    /// [`PristeError::Online`] wrapping the durable failure otherwise
    /// (missing snapshot, fingerprint mismatch, corruption).
    pub fn recover_service(&self) -> Result<SessionManager<SharedProvider>> {
        let dir = self.durable_dir.as_ref().ok_or_else(|| {
            PristeError::pipeline(
                "recovery needs a durable directory: call .durable(dir) on the builder",
            )
        })?;
        let mut service = SessionManager::recover(
            self.provider(),
            self.service_config.clone(),
            self.events.clone(),
            dir,
        )?;
        if let Some(registry) = &self.registry {
            service.observe(registry);
        }
        Ok(service)
    }

    /// Derives the **enforcing streaming service**: [`Pipeline::serve`]
    /// plus the pipeline's mechanism installed behind the calibration
    /// guard, so every [`SessionManager::release`] certifies (or
    /// suppresses) before anything ships.
    ///
    /// # Errors
    /// See [`Pipeline::serve`]; mechanism/guard validation failures.
    pub fn serve_enforcing(&self) -> Result<SessionManager<SharedProvider>> {
        let mut service = self.serve()?;
        service.enable_enforcement(self.mechanism_instance()?, self.guard_config.clone())?;
        Ok(service)
    }

    /// Derives the audit-mode streaming service and mounts it as an HTTP
    /// daemon on `addr` (port `0` picks an ephemeral port — read it back
    /// from [`Server::local_addr`]).
    ///
    /// The daemon serves the JSON protocol (`/v1/ingest`, `/v1/release`,
    /// `/v1/users/:id/spend`, `/v1/config`) plus the observability plane
    /// (`/metrics`, `/healthz`, `/readyz`) on the pipeline's metrics
    /// registry — or a fresh one when [`PipelineBuilder::observe`] was
    /// never called, so `/metrics` always works. The pipeline's mechanism
    /// (when configured) turns `"observed"` cells into emission columns
    /// server-side.
    ///
    /// # Errors
    /// See [`Pipeline::serve`]; [`PristeError::Serve`] when the bind
    /// fails.
    pub fn serve_http(&self, addr: &str, config: ServerConfig) -> Result<Server<SharedProvider>> {
        let service = self.serve()?;
        self.start_server(service, addr, config)
    }

    /// [`Pipeline::serve_http`] with the enforcing service behind it, so
    /// `POST /v1/release` performs guarded, certified releases.
    ///
    /// # Errors
    /// See [`Pipeline::serve_enforcing`]; [`PristeError::Serve`] when the
    /// bind fails.
    pub fn serve_http_enforcing(
        &self,
        addr: &str,
        config: ServerConfig,
    ) -> Result<Server<SharedProvider>> {
        let service = self.serve_enforcing()?;
        self.start_server(service, addr, config)
    }

    fn start_server(
        &self,
        mut service: SessionManager<SharedProvider>,
        addr: &str,
        config: ServerConfig,
    ) -> Result<Server<SharedProvider>> {
        let registry = match &self.registry {
            Some(registry) => registry.clone(),
            None => {
                // No observe() on the builder: give the daemon its own
                // registry anyway, so the /metrics plane is never empty.
                let registry = Registry::new();
                service.observe(&registry);
                registry
            }
        };
        let column_source = self.mechanism_instance().ok();
        Ok(Server::start(
            service,
            column_source,
            registry,
            config,
            addr,
        )?)
    }

    /// Derives the **calibrated guard**: the pipeline's mechanism wrapped
    /// so its release stream provably satisfies the target ε for every
    /// pipeline event under `π`.
    ///
    /// # Errors
    /// [`PristeError::Pipeline`] when events or the mechanism are missing;
    /// guard-construction failures.
    pub fn enforce(&self) -> Result<CalibratedMechanism<SharedProvider>> {
        self.require_events()?;
        let mut mech = CalibratedMechanism::new(
            self.mechanism_instance()?,
            &self.events,
            self.provider(),
            self.pi.clone(),
            self.guard_config.clone(),
        )?;
        if let Some(registry) = &self.registry {
            mech.observe_into(registry);
        }
        Ok(mech)
    }

    // ---- Supporting derivations -----------------------------------------

    /// A streaming quantifier for the first pipeline event under `π` — the
    /// diagnostic that shows what an *uncalibrated* release stream leaks.
    ///
    /// # Errors
    /// [`PristeError::Pipeline`] with no events; quantifier construction
    /// failures (degenerate priors).
    pub fn quantifier(&self) -> Result<IncrementalTwoWorld<SharedProvider>> {
        let event = self.first_event()?;
        Ok(IncrementalTwoWorld::new(
            event.clone(),
            self.provider(),
            self.pi.clone(),
        )?)
    }

    /// One streaming quantifier per pipeline event, in order.
    ///
    /// # Errors
    /// See [`Pipeline::quantifier`].
    pub fn quantifiers(&self) -> Result<Vec<IncrementalTwoWorld<SharedProvider>>> {
        self.require_events()?;
        self.events
            .iter()
            .map(|ev| {
                IncrementalTwoWorld::new(ev.clone(), self.provider(), self.pi.clone())
                    .map_err(Into::into)
            })
            .collect()
    }

    /// An exact Bayesian adversary for the first pipeline event — the
    /// operational meaning of the ε guarantee (odds lifts in `[e^{−ε},
    /// e^{ε}]`).
    ///
    /// # Errors
    /// See [`Pipeline::quantifier`].
    pub fn adversary(&self) -> Result<BayesianAdversary<SharedProvider>> {
        let event = self.first_event()?;
        Ok(BayesianAdversary::new(
            event,
            self.provider(),
            self.pi.clone(),
        )?)
    }

    /// A Theorem IV.1 checking pair for the first pipeline event: the
    /// incremental coefficient builder plus the any-π QP checker at the
    /// target ε.
    ///
    /// # Errors
    /// See [`Pipeline::quantifier`].
    pub fn checker(&self) -> Result<(TheoremBuilder<SharedProvider>, TheoremChecker)> {
        let event = self.first_event()?;
        let builder = TheoremBuilder::new(event, self.provider())?;
        let checker = TheoremChecker::new(self.epsilon, self.audit_config.solver_config());
        Ok((builder, checker))
    }

    /// The greedy-forward offline budget plan for the first pipeline event
    /// over `horizon` steps at the target ε.
    ///
    /// # Errors
    /// [`PristeError::Pipeline`] when events or the mechanism are missing;
    /// planner failures.
    pub fn plan_greedy(&self, horizon: usize) -> Result<BudgetPlan> {
        let event = self.first_event()?;
        let t0 = Instant::now();
        let plan = plan_greedy(
            self.mechanism_instance()?,
            event,
            self.provider(),
            horizon,
            self.epsilon,
            &self.planner_config,
        )?;
        self.record_plan("greedy", t0, &plan);
        Ok(plan)
    }

    /// The uniform ε*/T baseline plan for the first pipeline event.
    ///
    /// # Errors
    /// See [`Pipeline::plan_greedy`].
    pub fn plan_uniform_split(&self, horizon: usize) -> Result<BudgetPlan> {
        let event = self.first_event()?;
        let t0 = Instant::now();
        let plan = plan_uniform_split(
            self.mechanism_instance()?,
            event,
            self.provider(),
            horizon,
            self.epsilon,
            &self.planner_config,
        )?;
        self.record_plan("uniform", t0, &plan);
        Ok(plan)
    }

    /// The utility-aware knapsack plan for the first pipeline event under
    /// the default [`PlanarLaplaceError`] objective (negated expected
    /// planar-Laplace error, the natural accuracy measure for a PLM
    /// deployment). Use [`Pipeline::plan_knapsack_with`] to plug any other
    /// [`UtilityModel`].
    ///
    /// # Errors
    /// See [`Pipeline::plan_greedy`].
    pub fn plan_knapsack(&self, horizon: usize) -> Result<BudgetPlan> {
        self.plan_knapsack_with(horizon, &PlanarLaplaceError)
    }

    /// [`Pipeline::plan_knapsack`] under a caller-chosen utility model.
    ///
    /// # Errors
    /// See [`Pipeline::plan_greedy`].
    pub fn plan_knapsack_with(
        &self,
        horizon: usize,
        model: &dyn UtilityModel,
    ) -> Result<BudgetPlan> {
        let event = self.first_event()?;
        let t0 = Instant::now();
        let plan = plan_knapsack(
            self.mechanism_instance()?,
            event,
            self.provider(),
            horizon,
            self.epsilon,
            &self.planner_config,
            model,
        )?;
        self.record_plan("knapsack", t0, &plan);
        Ok(plan)
    }

    /// All three plans over one horizon — `(uniform, greedy, knapsack)` —
    /// with the probe work shared: the knapsack allocation reuses the
    /// uniform and greedy plans as its phase-1 probes instead of
    /// recomputing them, so a three-way comparison costs three oracle
    /// walks, not five.
    ///
    /// # Errors
    /// See [`Pipeline::plan_greedy`].
    pub fn plan_all(
        &self,
        horizon: usize,
        model: &dyn UtilityModel,
    ) -> Result<(BudgetPlan, BudgetPlan, BudgetPlan)> {
        let uniform = self.plan_uniform_split(horizon)?;
        let greedy = self.plan_greedy(horizon)?;
        let t0 = Instant::now();
        let knapsack = plan_knapsack_with_probes(
            self.mechanism_instance()?,
            self.first_event()?,
            self.provider(),
            horizon,
            self.epsilon,
            &self.planner_config,
            model,
            &greedy,
            &uniform,
        )?;
        self.record_plan("knapsack", t0, &knapsack);
        Ok((uniform, greedy, knapsack))
    }

    // ---- Internals -------------------------------------------------------

    /// Publishes one planner run into the attached registry: wall time
    /// into `calibrate_plan_seconds{planner=…}` and the total ladder rungs
    /// the oracle walked into
    /// `calibrate_plan_oracle_walks_total{planner=…}`.
    fn record_plan(&self, planner: &str, started: Instant, plan: &BudgetPlan) {
        let Some(registry) = &self.registry else {
            return;
        };
        registry
            .histogram(&format!("calibrate_plan_seconds{{planner=\"{planner}\"}}"))
            .observe(started.elapsed().as_secs_f64());
        let rungs: u64 = plan.steps.iter().map(|s| s.rungs as u64).sum();
        registry
            .counter(&format!(
                "calibrate_plan_oracle_walks_total{{planner=\"{planner}\"}}"
            ))
            .add(rungs);
    }

    fn require_events(&self) -> Result<()> {
        if self.events.is_empty() {
            return Err(PristeError::pipeline(
                "at least one protected event is required: call .event(..) or .event_spec(..)",
            ));
        }
        Ok(())
    }

    fn first_event(&self) -> Result<&StEvent> {
        self.events.first().ok_or_else(|| {
            PristeError::pipeline(
                "at least one protected event is required: call .event(..) or .event_spec(..)",
            )
        })
    }

    fn require_mechanism(&self) -> Result<&MechanismSpec> {
        self.require_events()?;
        self.mechanism.as_ref().ok_or_else(|| {
            PristeError::pipeline(
                "a mechanism is required: call .mechanism(lppm) or .planar_laplace(alpha)",
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use priste_geo::CellId;
    use priste_markov::gaussian_kernel_chain;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small() -> (GridMap, MarkovModel) {
        let grid = GridMap::new(3, 3, 1.0).unwrap();
        let chain = gaussian_kernel_chain(&grid, 1.0).unwrap();
        (grid, chain)
    }

    fn built(epsilon: f64) -> Pipeline {
        let (grid, chain) = small();
        Pipeline::on(grid)
            .mobility(chain)
            .event_spec("PRESENCE(S={1:3}, T={2:3})")
            .planar_laplace(0.8)
            .target_epsilon(epsilon)
            .build()
            .unwrap()
    }

    #[test]
    fn all_three_modes_derive_from_one_pipeline() {
        let pipeline = built(1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut audit = pipeline.audit().unwrap();
        let rec = audit.release(CellId(4), &mut rng).unwrap();
        assert_eq!(rec.t, 1);

        let service = pipeline.serve().unwrap();
        assert_eq!(service.templates().len(), 1);
        assert!(!service.enforcing());
        let enforcing = pipeline.serve_enforcing().unwrap();
        assert!(enforcing.enforcing());

        let mut guard = pipeline.enforce().unwrap();
        let rel = guard.release(CellId(4), &mut rng).unwrap();
        assert!(rel.loss <= 1.0 + 1e-9);
    }

    #[test]
    fn epsilon_propagates_to_every_mode_config() {
        let pipeline = built(0.7);
        assert_eq!(pipeline.target_epsilon(), 0.7);
        assert_eq!(pipeline.serve().unwrap().config().epsilon, 0.7);
        assert_eq!(pipeline.enforce().unwrap().config().target_epsilon, 0.7);
    }

    #[test]
    fn missing_mobility_is_a_pipeline_error() {
        let (grid, _) = small();
        let err = Pipeline::on(grid).build().unwrap_err();
        assert!(matches!(err, PristeError::Pipeline { .. }), "{err}");
        assert!(err.to_string().contains("mobility"));
    }

    #[test]
    fn missing_mechanism_and_events_are_reported_lazily() {
        let (grid, chain) = small();
        let pipeline = Pipeline::on(grid).mobility(chain).build().unwrap();
        let err = pipeline.audit().unwrap_err();
        assert!(err.to_string().contains("event"), "{err}");
        let err = match pipeline.mechanism_instance() {
            Ok(_) => panic!("no mechanism configured, so this must fail"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("mechanism"), "{err}");
    }

    #[test]
    fn bad_event_spec_surfaces_at_build() {
        let (grid, chain) = small();
        let err = Pipeline::on(grid)
            .mobility(chain)
            .event_spec("NOPE()")
            .build()
            .unwrap_err();
        assert!(matches!(err, PristeError::Event(_)), "{err}");
    }

    #[test]
    fn domain_mismatches_are_rejected_at_build() {
        let (grid, _) = small();
        let other = GridMap::new(2, 2, 1.0).unwrap();
        let chain4 = gaussian_kernel_chain(&other, 1.0).unwrap();
        let err = Pipeline::on(grid).mobility(chain4).build().unwrap_err();
        assert!(err.to_string().contains("states"), "{err}");
    }

    #[test]
    fn sparse_mobility_converts_banded_chains_and_serves() {
        // σ = 0.5 km on a 20×20 grid of 1 km cells: ≤ 81-cell kernel patches
        // on 400 cells sit below the cutover density, so CSR is kept.
        let grid = GridMap::new(20, 20, 1.0).unwrap();
        let chain = priste_markov::gaussian_kernel_chain_sparse(&grid, 0.5).unwrap();
        let pipeline = Pipeline::on(grid)
            .mobility(chain)
            .sparse_mobility()
            .event_spec("PRESENCE(S={1:3}, T={2:3})")
            .planar_laplace(0.8)
            .build()
            .unwrap();
        assert!(pipeline.chain().unwrap().is_sparse());
        let mut service = pipeline.serve().unwrap();
        let user = priste_online::UserId(1);
        service
            .add_user(user, Vector::uniform(pipeline.num_cells()))
            .unwrap();
        service.attach_event(user, 0).unwrap();
        let mechanism = pipeline.mechanism_instance().unwrap();
        let report = service
            .ingest(user, mechanism.emission_column(CellId(7)))
            .unwrap();
        assert_eq!(report.user, user);
    }

    #[test]
    fn sparse_mobility_leaves_dense_chains_dense() {
        // σ = 1000 approaches uniform: density 1.0, far above the cutover,
        // so auto-backend keeps the dense representation.
        let (grid, _) = small();
        let chain = gaussian_kernel_chain(&grid, 1000.0).unwrap();
        let pipeline = Pipeline::on(grid)
            .mobility(chain)
            .sparse_mobility()
            .build()
            .unwrap();
        assert!(!pipeline.chain().unwrap().is_sparse());
    }

    #[test]
    fn delta_location_audit_rejects_sparse_chains() {
        let grid = GridMap::new(20, 20, 1.0).unwrap();
        let chain = priste_markov::gaussian_kernel_chain_sparse(&grid, 0.5).unwrap();
        let err = Pipeline::on(grid)
            .mobility(chain)
            .event_spec("PRESENCE(S={1:3}, T={2:3})")
            .planar_laplace(1.0)
            .delta_location(0.2)
            .build()
            .unwrap()
            .audit()
            .unwrap_err();
        assert!(err.to_string().contains("dense"), "{err}");
    }

    #[test]
    fn delta_location_audit_requires_a_concrete_chain() {
        let (grid, chain) = small();
        let pipeline = Pipeline::on(grid)
            .mobility_provider(Homogeneous::new(chain))
            .event_spec("PRESENCE(S={1:3}, T={2:3})")
            .planar_laplace(1.0)
            .delta_location(0.2)
            .build()
            .unwrap();
        let err = pipeline.audit().unwrap_err();
        assert!(err.to_string().contains("chain"), "{err}");
    }

    #[test]
    fn durable_pipeline_recovers_spent_budget() {
        let dir = std::env::temp_dir().join(format!(
            "priste-pipeline-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let (grid, chain) = small();
        let build = || {
            Pipeline::on(grid.clone())
                .mobility(chain.clone())
                .event_spec("PRESENCE(S={1:3}, T={2:3})")
                .planar_laplace(0.8)
                .durable(&dir)
                .build()
                .unwrap()
        };
        let pipeline = build();
        let mut rng = StdRng::seed_from_u64(11);
        let mut svc = pipeline.serve_enforcing().unwrap();
        let user = priste_online::UserId(1);
        svc.add_user(user, Vector::uniform(9)).unwrap();
        svc.attach_event(user, 0).unwrap();
        for _ in 0..3 {
            svc.release(user, CellId(4), &mut rng).unwrap();
        }
        let spent = svc.session(user).unwrap().ledger().spent();
        assert!(spent > 0.0);
        let digest = svc.state_digest();
        drop(svc); // crash: no shutdown checkpoint, only the WAL survives

        // A fresh serve over the same directory recovers the spend...
        let reopened = build().serve_enforcing().unwrap();
        assert_eq!(reopened.session(user).unwrap().ledger().spent(), spent);
        assert_eq!(reopened.state_digest(), digest);
        // ...and a read-only recover sees the same bytes.
        let recovered = pipeline.recover_service().unwrap();
        assert_eq!(recovered.state_digest(), digest);
        assert!(recovered.durable_dir().is_none(), "recovery is read-only");

        let err = match built(1.0).recover_service() {
            Ok(_) => panic!("recover without .durable(dir) must fail"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("durable"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn time_varying_schedule_builds() {
        let (grid, chain) = small();
        let pipeline = Pipeline::on(grid)
            .mobility_schedule(vec![chain.clone(), chain])
            .event_spec("PRESENCE(S={1:3}, T={2:3})")
            .planar_laplace(0.5)
            .build()
            .unwrap();
        assert!(pipeline.chain().is_none());
        pipeline.quantifier().unwrap();
    }
}
