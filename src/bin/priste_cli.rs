//! `priste-cli` — command-line front end for the PriSTE library.
//!
//! ```text
//! priste-cli world     [--kind synthetic|commuter] [--side N] [--sigma F] [--seed N]
//! priste-cli protect   --event SPEC [--epsilon F] [--alpha F] [--delta F]
//!                      [--side N] [--sigma F] [--steps N] [--seed N]
//! priste-cli quantify  --event SPEC [--alpha F] [--side N] [--sigma F]
//!                      [--steps N] [--seed N]
//! priste-cli check     --event SPEC [--epsilon F] [--alpha F] [--side N]
//!                      [--sigma F] [--steps N] [--seed N]
//! priste-cli stream    [--users N] [--steps N] [--kind synthetic|commuter]
//!                      [--event SPEC] [--epsilon F] [--alpha F] [--side N]
//!                      [--sigma F] [--shards N] [--linger N] [--budget F]
//!                      [--mode audit|enforce] [--floor F] [--backoff F]
//!                      [--threads N] [--durable-dir PATH]
//!                      [--metrics-json PATH] [--trace] [--seed N]
//! priste-cli recover   --durable-dir PATH [--kind synthetic|commuter]
//!                      [--event SPEC] [--epsilon F] [--alpha F] [--side N]
//!                      [--sigma F] [--shards N] [--linger N] [--budget F]
//!                      [--cluster-workers N] [--metrics-json PATH] [--seed N]
//! priste-cli metrics   print the exported metric schema
//! priste-cli calibrate [--kind synthetic|commuter] [--event SPEC] [--target F]
//!                      [--alpha F] [--side N] [--sigma F] [--horizon N]
//!                      [--planner uniform|greedy|knapsack]
//!                      [--steps N] [--floor F] [--backoff F] [--threads N] [--seed N]
//! priste-cli serve     [--addr HOST:PORT] [--workers N] [--kind synthetic|commuter]
//!                      [--event SPEC] [--epsilon F] [--alpha F] [--side N]
//!                      [--sigma F] [--shards N] [--linger N] [--budget F]
//!                      [--mode audit|enforce] [--floor F] [--backoff F]
//!                      [--durable-dir PATH] [--stall-us N]
//!                      [--metrics-json PATH] [--trace] [--seed N]
//! priste-cli cluster   (--spawn N | --worker-addrs H:P,H:P,... | --shard-map FILE)
//!                      [--addr HOST:PORT] [--workers N] [--retry-after SECS]
//!                      [--durable-root PATH] [--metrics-json PATH] [--trace]
//!                      [+ the serve scenario flags, forwarded to spawned workers]
//! priste-cli loadgen   --addr HOST:PORT [--requests N] [--connections N]
//!                      [--users N] [--mode auto|ingest|release|mixed]
//!                      [--rate R] [--out PATH] [--seed N]
//! ```
//!
//! * `world` — build a mobility world and print its summary statistics.
//! * `protect` — run the PriSTE framework (Algorithm 2, or Algorithm 3 when
//!   `--delta` is given) over a sampled trajectory; emits a release CSV.
//! * `quantify` — release the same trajectory through a *plain* α-PLM (no
//!   calibration) and print the realized event-privacy loss per step — the
//!   diagnostic that shows what an uncalibrated mechanism leaks.
//! * `check` — per-step Theorem IV.1 verdicts for a plain α-PLM stream:
//!   which releases would PriSTE have refused?
//! * `stream` — the `priste-online` streaming service: simulate N users
//!   over a synthetic or commuter (GeoLife-sim) feed. In `audit` mode
//!   (default) every plain α-PLM release is ingested and verdicted; in
//!   `enforce` mode the service holds the mechanism and the calibration
//!   guard certifies (or suppresses) each release *before* it ships.
//!   `--durable-dir` makes the service durable: session state (ledgers
//!   included) is journaled to the directory, and re-running the command
//!   over the same directory *continues* the recovered sessions instead of
//!   resetting their spend. `--metrics-json PATH` attaches a `priste_obs`
//!   registry and dumps its final snapshot as JSON to PATH; `--trace`
//!   prints structured span events to stderr. Both compose with
//!   `--durable-dir` (WAL/snapshot/recovery metrics included), and neither
//!   changes a byte of stdout — per-step gauge lines go to stderr.
//! * `recover` — read-only inspection of a durable directory: rebuild the
//!   state from snapshot + WAL replay (rebuilding the scenario from the
//!   same flags `stream` was given) and print every user's ledger without
//!   journaling anything. With `--metrics-json PATH` the recovery
//!   telemetry (replay duration, replayed/torn record counts) is dumped
//!   alongside the service counters. `--cluster-workers N` adds a shard
//!   audit: which slot of an N-worker cluster each recovered user id
//!   jump-hashes to, and whether the directory is a clean single-slot
//!   shard — the check to run before and after a shard handoff.
//! * `metrics` — print the schema of every exported metric: name, kind,
//!   and meaning, as rendered by `--metrics-json` and
//!   `Registry::render_prometheus`.
//! * `calibrate` — the `priste-calibrate` planners and guard: print the
//!   chosen planner's per-timestep budget plan (`--planner`: the
//!   uniform-split baseline, the greedy-forward search, or the
//!   utility-aware knapsack allocator), a three-way comparison table with
//!   total utility under the planar-Laplace error model, then a seeded
//!   release demo in which the uncalibrated α-PLM fails the target ε*
//!   while the calibrated mechanism certifies it.
//! * `serve` — run the scenario as an HTTP daemon (`priste-serve`): the
//!   JSON ingest/release/spend protocol plus the observability plane
//!   (`GET /metrics` Prometheus text, `/healthz`, `/readyz`). Takes the
//!   same scenario flags as `stream` (so a `--durable-dir` journaled by
//!   `stream` recovers under `serve` and vice versa); `--addr 0` picks an
//!   ephemeral port. The bound address is printed to stderr as
//!   `serve: listening on ADDR` for scripts to scrape. SIGTERM/SIGINT
//!   triggers a graceful drain: stop accepting, flush in-flight requests,
//!   checkpoint the durable store, snapshot the registry to
//!   `--metrics-json`, exit 0.
//! * `cluster` — the `priste-cluster` router daemon: consistent-hashes
//!   user ids onto N `serve` workers and relays the same JSON protocol.
//!   `--spawn N` forks N workers as child processes (the serve scenario
//!   flags are forwarded; with `--durable-root` each worker journals to
//!   its own `worker-i/` subdirectory) and SIGTERMs them after its own
//!   drain; `--worker-addrs`/`--shard-map` front workers started by hand.
//!   The bound address is printed to stderr as `cluster: routing on ADDR`
//!   for scripts to scrape; `GET /cluster/workers` reports the live shard
//!   map and `POST /cluster/remap` rebinds a slot (shard handoff).
//! * `loadgen` — load generator against a running `serve` or `cluster`
//!   daemon: `--connections` worker connections race through `--requests`
//!   total requests (ingest, release, or an alternating mix; `auto` picks
//!   by asking `/v1/config` whether enforcement is on) and report
//!   client-observed p50/p90/p99 latency plus sustained throughput.
//!   Closed-loop by default; `--rate R` switches to an open loop that
//!   schedules requests on an absolute timeline at R req/s (no
//!   coordinated omission) and reports offered vs achieved rate.
//!   `--out PATH` writes the run as a `BENCH_serve.json`-compatible
//!   artifact for `bench_export --compare`.
//!
//! Every subcommand constructs its stack through one [`Pipeline`]: the
//! scenario (world, mobility, event, mechanism, target ε) is described
//! once and the subcommand derives the mode it needs — `.audit()` for
//! `protect`, `.quantifier()`/`.checker()` for `quantify`/`check`,
//! `.serve()`/`.serve_enforcing()` for `stream`, and
//! `.plan_*()`/`.enforce()` for `calibrate`. `stream --threads N` fans the
//! batched ingest/release work over N workers (0 = all cores) with
//! identical output for any N.
//!
//! Grid scale: `--side N` builds an `N×N` world (`m = N²` cells) with a
//! dense mobility chain, which is the right backend at the CLI's default
//! small sides. Past `--side 50` or so a banded world (small `--sigma`)
//! is better served by the library's CSR path — build the chain with
//! `priste::markov::gaussian_kernel_chain_sparse` or flip
//! `Pipeline::sparse_mobility()` on a dense one; see the README's
//! "Scaling to large grids" section.
//!
//! Events use the paper's notation, e.g. `"PRESENCE(S={1:10}, T={4:8})"`.
//! `stream`/`calibrate` events are *attach-relative*: `T={2:4}` means
//! timestamps 2–4 of each user's session.
//!
//! Exit codes: `0` success, `1` runtime failure, `2` usage error (unknown
//! command or flag, malformed value) — usage errors also print the usage
//! text below.

use priste::calibrate::{Decision, GuardConfig, PlanarLaplaceError, PlannerConfig, UtilityModel};
use priste::obs::StderrSink;
use priste::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  priste-cli world     [--kind synthetic|commuter] [--side N] [--sigma F] [--seed N]
  priste-cli protect   --event SPEC [--epsilon F] [--alpha F] [--delta F]
                       [--side N] [--sigma F] [--steps N] [--seed N]
  priste-cli quantify  --event SPEC [--alpha F] [--side N] [--sigma F] [--steps N] [--seed N]
  priste-cli check     --event SPEC [--epsilon F] [--alpha F] [--side N] [--sigma F]
                       [--steps N] [--seed N]
  priste-cli stream    [--users N] [--steps N] [--kind synthetic|commuter] [--event SPEC]
                       [--epsilon F] [--alpha F] [--side N] [--sigma F]
                       [--shards N] [--linger N] [--budget F]
                       [--mode audit|enforce] [--floor F] [--backoff F]
                       [--threads N] [--durable-dir PATH]
                       [--metrics-json PATH] [--trace] [--seed N]
  priste-cli recover   --durable-dir PATH [--kind synthetic|commuter] [--event SPEC]
                       [--epsilon F] [--alpha F] [--side N] [--sigma F]
                       [--shards N] [--linger N] [--budget F]
                       [--cluster-workers N] [--metrics-json PATH] [--seed N]
  priste-cli metrics   print the exported metric schema (names, kinds, meanings)
  priste-cli calibrate [--kind synthetic|commuter] [--event SPEC] [--target F]
                       [--alpha F] [--side N] [--sigma F] [--horizon N]
                       [--planner uniform|greedy|knapsack]
                       [--steps N] [--floor F] [--backoff F] [--threads N] [--seed N]
  priste-cli serve     [--addr HOST:PORT] [--workers N] [--kind synthetic|commuter]
                       [--event SPEC] [--epsilon F] [--alpha F] [--side N] [--sigma F]
                       [--shards N] [--linger N] [--budget F]
                       [--mode audit|enforce] [--floor F] [--backoff F]
                       [--durable-dir PATH] [--stall-us N]
                       [--metrics-json PATH] [--trace] [--seed N]
  priste-cli cluster   (--spawn N | --worker-addrs H:P,H:P,... | --shard-map FILE)
                       [--addr HOST:PORT] [--workers N] [--retry-after SECS]
                       [--durable-root PATH] [--metrics-json PATH] [--trace]
                       [+ the serve scenario flags, forwarded to spawned workers]
  priste-cli loadgen   --addr HOST:PORT [--requests N] [--connections N] [--users N]
                       [--mode auto|ingest|release|mixed] [--rate R] [--out PATH] [--seed N]
  priste-cli help      print this text";

/// CLI error with the exit-code split: usage errors (exit 2, usage text
/// appended) versus runtime failures (exit 1).
#[derive(Debug)]
enum CliError {
    Usage(String),
    Runtime(String),
}

/// Maps a library error into a runtime CLI failure.
fn runtime<E: ToString>(e: E) -> CliError {
    CliError::Runtime(e.to_string())
}

/// Maps a bad argument into a usage CLI failure.
fn usage<E: ToString>(e: E) -> CliError {
    CliError::Usage(e.to_string())
}

const WORLD_FLAGS: &[&str] = &["kind", "side", "sigma", "seed", "steps"];
const PROTECT_FLAGS: &[&str] = &[
    "event", "epsilon", "alpha", "delta", "side", "sigma", "steps", "seed",
];
const QUANTIFY_FLAGS: &[&str] = &["event", "alpha", "side", "sigma", "steps", "seed"];
const CHECK_FLAGS: &[&str] = &[
    "event", "epsilon", "alpha", "side", "sigma", "steps", "seed",
];
const STREAM_FLAGS: &[&str] = &[
    "users",
    "steps",
    "kind",
    "event",
    "epsilon",
    "alpha",
    "side",
    "sigma",
    "shards",
    "linger",
    "budget",
    "mode",
    "floor",
    "backoff",
    "threads",
    "durable-dir",
    "metrics-json",
    "trace",
    "seed",
];
const RECOVER_FLAGS: &[&str] = &[
    "durable-dir",
    "kind",
    "event",
    "epsilon",
    "alpha",
    "side",
    "sigma",
    "shards",
    "linger",
    "budget",
    "floor",
    "backoff",
    "cluster-workers",
    "metrics-json",
    "seed",
];
const CALIBRATE_FLAGS: &[&str] = &[
    "kind", "event", "target", "alpha", "side", "sigma", "horizon", "steps", "floor", "backoff",
    "threads", "seed", "planner",
];
const SERVE_FLAGS: &[&str] = &[
    "addr",
    "workers",
    "kind",
    "event",
    "epsilon",
    "alpha",
    "side",
    "sigma",
    "shards",
    "linger",
    "budget",
    "mode",
    "floor",
    "backoff",
    "durable-dir",
    "stall-us",
    "metrics-json",
    "trace",
    "seed",
];
const CLUSTER_FLAGS: &[&str] = &[
    "addr",
    "workers",
    "spawn",
    "worker-addrs",
    "shard-map",
    "durable-root",
    "retry-after",
    "metrics-json",
    "trace",
    // The serve scenario surface, forwarded verbatim to spawned workers.
    "kind",
    "event",
    "epsilon",
    "alpha",
    "side",
    "sigma",
    "shards",
    "linger",
    "budget",
    "mode",
    "floor",
    "backoff",
    "stall-us",
    "seed",
];
const LOADGEN_FLAGS: &[&str] = &[
    "addr",
    "requests",
    "connections",
    "users",
    "mode",
    "rate",
    "out",
    "seed",
];

/// Flags that take no value: present means "on".
const BOOLEAN_FLAGS: &[&str] = &["trace"];

/// Parsed `--key value` flags, validated against a subcommand's allowlist.
struct Flags(BTreeMap<String, String>);

impl Flags {
    fn parse(args: &[String], allowed: &[&str], command: &str) -> Result<Flags, CliError> {
        let mut map = BTreeMap::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| CliError::Usage(format!("expected --flag, got {:?}", args[i])))?;
            if !allowed.contains(&key) {
                return Err(CliError::Usage(format!(
                    "unknown flag --{key} for `{command}`"
                )));
            }
            if BOOLEAN_FLAGS.contains(&key) {
                map.insert(key.to_string(), "true".to_string());
                i += 1;
                continue;
            }
            let value = args
                .get(i + 1)
                .ok_or_else(|| CliError::Usage(format!("--{key} requires a value")))?;
            map.insert(key.to_string(), value.clone());
            i += 2;
        }
        Ok(Flags(map))
    }

    fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.0.get(key).map(String::as_str).unwrap_or(default)
    }

    fn required(&self, key: &str) -> Result<&str, CliError> {
        self.0
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("--{key} is required")))
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, CliError> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key}: not a number: {v:?}"))),
        }
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, CliError> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key}: not an integer: {v:?}"))),
        }
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, CliError> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("--{key}: not an integer: {v:?}"))),
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let (command, rest) = args
        .split_first()
        .ok_or_else(|| CliError::Usage("missing command".into()))?;
    match command.as_str() {
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        "world" => cmd_world(&Flags::parse(rest, WORLD_FLAGS, "world")?),
        "protect" => cmd_protect(&Flags::parse(rest, PROTECT_FLAGS, "protect")?),
        "quantify" => cmd_quantify(&Flags::parse(rest, QUANTIFY_FLAGS, "quantify")?),
        "check" => cmd_check(&Flags::parse(rest, CHECK_FLAGS, "check")?),
        "stream" => cmd_stream(&Flags::parse(rest, STREAM_FLAGS, "stream")?),
        "recover" => cmd_recover(&Flags::parse(rest, RECOVER_FLAGS, "recover")?),
        "calibrate" => cmd_calibrate(&Flags::parse(rest, CALIBRATE_FLAGS, "calibrate")?),
        "serve" => cmd_serve(&Flags::parse(rest, SERVE_FLAGS, "serve")?),
        "cluster" => cmd_cluster(&Flags::parse(rest, CLUSTER_FLAGS, "cluster")?),
        "loadgen" => cmd_loadgen(&Flags::parse(rest, LOADGEN_FLAGS, "loadgen")?),
        "metrics" => {
            if !rest.is_empty() {
                return Err(CliError::Usage("`metrics` takes no flags".into()));
            }
            cmd_metrics()
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

/// Shared world setup from flags.
fn world_from_flags(flags: &Flags) -> Result<(GridMap, MarkovModel), CliError> {
    let side = flags.usize_or("side", 10)?;
    let sigma = flags.f64_or("sigma", 1.0)?;
    let grid = GridMap::new(side, side, 1.0).map_err(usage)?;
    let chain = gaussian_kernel_chain(&grid, sigma).map_err(usage)?;
    Ok((grid, chain))
}

/// Synthetic-or-commuter world selection shared by `stream`/`calibrate`.
fn kind_world(flags: &Flags, default_side: usize) -> Result<(GridMap, MarkovModel), CliError> {
    match flags.str_or("kind", "synthetic") {
        "synthetic" => world_from_flags(flags),
        "commuter" => {
            let side = flags.usize_or("side", default_side)?;
            let world = geolife_sim::build(&geolife_sim::CommuterConfig {
                rows: side,
                cols: side,
                seed: flags.u64_or("seed", 1)?,
                ..Default::default()
            })
            .map_err(runtime)?;
            Ok((world.grid, world.chain))
        }
        other => Err(CliError::Usage(format!(
            "--kind must be synthetic or commuter, got {other:?}"
        ))),
    }
}

fn trajectory_from_flags(
    flags: &Flags,
    chain: &MarkovModel,
) -> Result<(Vec<CellId>, StdRng), CliError> {
    let steps = flags.usize_or("steps", 20)?;
    let seed = flags.u64_or("seed", 1)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let pi = Vector::uniform(chain.num_states());
    let traj = chain
        .sample_trajectory_from(&pi, steps, &mut rng)
        .map_err(runtime)?;
    Ok((traj, rng))
}

fn cmd_world(flags: &Flags) -> Result<(), CliError> {
    let kind = flags.str_or("kind", "synthetic");
    let seed = flags.u64_or("seed", 1)?;
    let (grid, chain, trajectories) = match kind {
        "synthetic" => {
            let (grid, chain) = world_from_flags(flags)?;
            let mut rng = StdRng::seed_from_u64(seed);
            let traj = chain
                .sample_trajectory_from(
                    &Vector::uniform(grid.num_cells()),
                    flags.usize_or("steps", 50)?,
                    &mut rng,
                )
                .map_err(runtime)?;
            (grid, chain, vec![traj])
        }
        "commuter" => {
            let side = flags.usize_or("side", 12)?;
            let world = geolife_sim::build(&geolife_sim::CommuterConfig {
                rows: side,
                cols: side,
                seed,
                ..Default::default()
            })
            .map_err(runtime)?;
            (world.grid, world.chain, world.trajectories)
        }
        other => {
            return Err(CliError::Usage(format!(
                "--kind must be synthetic or commuter, got {other:?}"
            )))
        }
    };

    let pipeline = Pipeline::on(grid).mobility(chain).build().map_err(usage)?;
    let (grid, chain) = (
        pipeline.grid(),
        pipeline.chain().expect("mobility set above"),
    );
    println!(
        "world: {kind}, {} cells ({} km each)",
        grid.num_cells(),
        grid.cell_size_km()
    );
    println!("trajectories: {}", trajectories.len());
    let stationary = stationary_distribution(chain, 1e-9, 200_000).map_err(runtime)?;
    let mut top: Vec<(usize, f64)> = stationary.as_slice().iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    println!("top stationary cells:");
    for &(cell, p) in top.iter().take(5) {
        println!("  {}: {:.4}", CellId(cell), p);
    }
    let mut max_self = (0usize, 0.0f64);
    for i in 0..grid.num_cells() {
        let p = chain.transition().get(i, i);
        if p > max_self.1 {
            max_self = (i, p);
        }
    }
    println!(
        "stickiest cell: {} (self-transition {:.3})",
        CellId(max_self.0),
        max_self.1
    );
    Ok(())
}

fn cmd_protect(flags: &Flags) -> Result<(), CliError> {
    let (grid, chain) = world_from_flags(flags)?;
    let event = parse_event(flags.required("event")?, grid.num_cells()).map_err(usage)?;
    let epsilon = flags.f64_or("epsilon", 1.0)?;
    let alpha = flags.f64_or("alpha", 0.5)?;
    let (traj, mut rng) = trajectory_from_flags(flags, &chain)?;

    let mut builder = Pipeline::on(grid)
        .mobility(chain)
        .event(event)
        .planar_laplace(alpha)
        .target_epsilon(epsilon);
    if let Some(delta) = flags.0.get("delta") {
        let delta: f64 = delta
            .parse()
            .map_err(|_| CliError::Usage("--delta: not a number".into()))?;
        builder = builder.delta_location(delta);
    }
    let mut priste = builder.audit().map_err(runtime)?;

    println!("t,true_cell,released_cell,budget,attempts,distance_km");
    for &loc in &traj {
        let r = priste.release(loc, &mut rng).map_err(runtime)?;
        println!(
            "{},{},{},{:.6},{},{:.3}",
            r.t,
            loc.one_based(),
            r.observed.one_based(),
            r.final_budget,
            r.attempts,
            r.euclid_km
        );
    }
    Ok(())
}

fn cmd_quantify(flags: &Flags) -> Result<(), CliError> {
    let (grid, chain) = world_from_flags(flags)?;
    let event = parse_event(flags.required("event")?, grid.num_cells()).map_err(usage)?;
    let alpha = flags.f64_or("alpha", 0.5)?;
    let (traj, mut rng) = trajectory_from_flags(flags, &chain)?;
    let pipeline = Pipeline::on(grid)
        .mobility(chain)
        .event(event)
        .planar_laplace(alpha)
        .build()
        .map_err(usage)?;
    let plm = pipeline.mechanism_instance().map_err(runtime)?;
    let mut quantifier = pipeline.quantifier().map_err(runtime)?;

    println!("t,true_cell,released_cell,privacy_loss");
    let mut worst: f64 = 0.0;
    for &loc in &traj {
        let obs = plm.perturb(loc, &mut rng);
        let step = quantifier
            .observe(&plm.emission_column(obs))
            .map_err(runtime)?;
        worst = worst.max(step.privacy_loss);
        println!(
            "{},{},{},{:.6}",
            step.t,
            loc.one_based(),
            obs.one_based(),
            step.privacy_loss
        );
    }
    eprintln!(
        "worst realized loss under uniform prior: {worst:.4} (plain {alpha}-PLM, no calibration)"
    );
    Ok(())
}

fn cmd_check(flags: &Flags) -> Result<(), CliError> {
    let (grid, chain) = world_from_flags(flags)?;
    let event = parse_event(flags.required("event")?, grid.num_cells()).map_err(usage)?;
    let epsilon = flags.f64_or("epsilon", 1.0)?;
    let alpha = flags.f64_or("alpha", 0.5)?;
    let (traj, mut rng) = trajectory_from_flags(flags, &chain)?;
    let pipeline = Pipeline::on(grid)
        .mobility(chain)
        .event(event)
        .planar_laplace(alpha)
        .target_epsilon(epsilon)
        .build()
        .map_err(usage)?;
    let plm = pipeline.mechanism_instance().map_err(runtime)?;
    let (mut builder, checker) = pipeline.checker().map_err(runtime)?;

    println!("t,true_cell,released_cell,verdict");
    let mut refused = 0usize;
    for (i, &loc) in traj.iter().enumerate() {
        let obs = plm.perturb(loc, &mut rng);
        let col = plm.emission_column(obs);
        let inputs = builder.candidate(&col).map_err(runtime)?;
        let verdict = checker.check(&inputs.a, &inputs.b, &inputs.c);
        let label = match &verdict {
            TheoremVerdict::Satisfied => "satisfied",
            TheoremVerdict::Violated { .. } => {
                refused += 1;
                "VIOLATED"
            }
            TheoremVerdict::Unknown { .. } => {
                refused += 1;
                "unknown"
            }
        };
        println!("{},{},{},{label}", i + 1, loc.one_based(), obs.one_based());
        builder.commit(col).map_err(runtime)?;
    }
    eprintln!(
        "{refused}/{} releases of the plain {alpha}-PLM would be refused at ε={epsilon}",
        traj.len()
    );
    Ok(())
}

/// The shared `stream`/`recover` scenario pipeline: both subcommands must
/// describe the *same* world, event, and service configuration — the
/// durable store fingerprints the scenario and refuses to recover state
/// journaled under a different one.
fn stream_pipeline(flags: &Flags, registry: Option<&Registry>) -> Result<Pipeline, CliError> {
    let (grid, chain) = kind_world(flags, 10)?;
    let m = grid.num_cells();
    let default_event = format!("PRESENCE(S={{1:{}}}, T={{2:4}})", (m / 4).max(1));
    let event = parse_event(flags.str_or("event", &default_event), m).map_err(usage)?;
    let mut builder = Pipeline::on(grid)
        .mobility(chain)
        .event(event)
        .planar_laplace(flags.f64_or("alpha", 0.5)?)
        .target_epsilon(flags.f64_or("epsilon", 1.0)?)
        .service_config(OnlineConfig {
            num_shards: flags.usize_or("shards", 8)?,
            linger: flags.usize_or("linger", 2)?,
            budget: flags.f64_or("budget", 20.0)?,
            ..OnlineConfig::default()
        })
        .guard(GuardConfig {
            backoff: flags.f64_or("backoff", 0.5)?,
            floor: flags.f64_or("floor", 1e-3)?,
            ..GuardConfig::default()
        });
    if let Some(dir) = flags.0.get("durable-dir") {
        builder = builder.durable(dir);
    }
    if let Some(registry) = registry {
        builder = builder.observe(registry);
    }
    builder.build().map_err(usage)
}

/// Builds the optional metrics registry for `stream`/`recover`:
/// `--metrics-json` (and `--trace` for `stream`) turn it on.
fn registry_from_flags(flags: &Flags) -> Option<Registry> {
    let wanted = flags.0.contains_key("metrics-json") || flags.0.contains_key("trace");
    wanted.then(|| {
        let registry = Registry::new();
        if flags.0.contains_key("trace") {
            registry.set_sink(Arc::new(StderrSink));
        }
        registry
    })
}

/// Dumps the registry snapshot to `--metrics-json PATH` (schema
/// `priste-metrics/1`). Stdout is never touched — the confirmation note
/// goes to stderr.
fn write_metrics_json(flags: &Flags, registry: Option<&Registry>) -> Result<(), CliError> {
    let (Some(path), Some(registry)) = (flags.0.get("metrics-json"), registry) else {
        return Ok(());
    };
    std::fs::write(path, registry.render_json())
        .map_err(|e| CliError::Runtime(format!("write --metrics-json {path}: {e}")))?;
    eprintln!("metrics: registry snapshot written to {path}");
    Ok(())
}

/// Per-step stderr gauge line (stdout stays byte-identical with metrics on).
fn eprint_step_gauges(registry: Option<&Registry>, step: usize, stats: &ServiceStats) {
    if let Some(registry) = registry {
        eprintln!(
            "metrics: step={} observations={} certified={} violated={} suppressed={} sessions={:.0}",
            step,
            stats.observations,
            stats.certified,
            stats.violated,
            stats.suppressed,
            registry.gauge("online_sessions").get(),
        );
    }
}

/// The `priste-online` streaming service over a simulated N-user feed.
fn cmd_stream(flags: &Flags) -> Result<(), CliError> {
    let users = flags.usize_or("users", 100)?;
    let steps = flags.usize_or("steps", 24)?;
    if users == 0 || steps == 0 {
        return Err(CliError::Usage(
            "--users and --steps must be at least 1".into(),
        ));
    }
    let seed = flags.u64_or("seed", 1)?;
    let mode = flags.str_or("mode", "audit");
    if !matches!(mode, "audit" | "enforce") {
        return Err(CliError::Usage(format!(
            "--mode must be audit or enforce, got {mode:?}"
        )));
    }

    // One pipeline describes the whole scenario; `stream` derives the
    // service (plain or enforcing) from it.
    let threads = flags.usize_or("threads", 1)?;
    let registry = registry_from_flags(flags);
    let pipeline = stream_pipeline(flags, registry.as_ref())?;
    let m = pipeline.num_cells();
    let chain = pipeline.chain().expect("mobility set above").clone();
    let mut service = if mode == "enforce" {
        pipeline.serve_enforcing().map_err(usage)?
    } else {
        pipeline.serve().map_err(usage)?
    };
    if let Some(dir) = service.durable_dir() {
        eprintln!(
            "durable: journaling to {} ({} recovered users)",
            dir.display(),
            service.num_users()
        );
    }

    // Users: seeded trajectories from the world's own mobility model; one
    // protected event window each (template 0, pre-registered by the
    // pipeline), released through a shared α-PLM. Users recovered from a
    // durable directory keep their sessions (ledger spend included) —
    // only genuinely new ids are registered.
    let mut rng = StdRng::seed_from_u64(seed);
    let plm = pipeline.mechanism_instance().map_err(usage)?;
    let mut trajectories = Vec::with_capacity(users);
    for u in 0..users as u64 {
        if service.session(UserId(u)).is_none() {
            service
                .add_user(UserId(u), Vector::uniform(m))
                .map_err(runtime)?;
            service.attach_event(UserId(u), 0).map_err(runtime)?;
        }
        trajectories.push(
            chain
                .sample_trajectory_from(&Vector::uniform(m), steps, &mut rng)
                .map_err(runtime)?,
        );
    }

    if mode == "enforce" {
        return run_stream_enforcing(
            service,
            &trajectories,
            users,
            steps,
            flags,
            registry.as_ref(),
        );
    }

    // Feed: one batch per timestamp, every user releasing one observation;
    // the service fans the ingest work over the worker threads.
    let mut worst_loss = vec![0.0f64; users];
    let mut violations = vec![0usize; users];
    let started = std::time::Instant::now();
    #[allow(clippy::needless_range_loop)] // column-wise access across per-user rows
    for t in 0..steps {
        let _step_span = registry.as_ref().map(|r| {
            let mut span = r.span("stream_step");
            span.annotate("t", (t + 1) as f64);
            span
        });
        let batch: Vec<(UserId, Vector)> = (0..users)
            .map(|u| {
                let observed = plm.perturb(trajectories[u][t], &mut rng);
                (UserId(u as u64), plm.emission_column(observed))
            })
            .collect();
        for report in service
            .ingest_batch_parallel(&batch, threads)
            .map_err(runtime)?
        {
            let u = report.user.0 as usize;
            if report.worst_loss.is_finite() {
                worst_loss[u] = worst_loss[u].max(report.worst_loss);
            } else {
                worst_loss[u] = f64::INFINITY;
            }
            violations[u] += report
                .windows
                .iter()
                .filter(|w| w.verdict == Verdict::Violated)
                .count();
        }
        eprint_step_gauges(registry.as_ref(), t + 1, &service.stats());
    }
    let elapsed = started.elapsed();
    if service.durable_dir().is_some() {
        // Clean shutdown: compact the WAL into a snapshot generation so
        // the next open recovers without replay.
        service.checkpoint().map_err(runtime)?;
    }

    println!("user,observations,worst_loss,violations,budget_remaining,exhausted");
    for u in 0..users as u64 {
        let session = service.session(UserId(u)).expect("registered above");
        println!(
            "{},{},{:.6},{},{:.4},{}",
            u,
            session.observed(),
            worst_loss[u as usize],
            violations[u as usize],
            session.ledger().remaining(),
            session.ledger().exhausted()
        );
    }
    let stats = service.stats();
    println!(
        "total,{} users,{} observations,{} certified,{} violated,{} mismatched,{} evicted",
        users,
        stats.observations,
        stats.certified,
        stats.violated,
        stats.mismatched,
        stats.evicted_windows
    );
    // Timing is non-deterministic: keep it off stdout.
    eprintln!(
        "throughput: {} observations in {:.3}s ({:.0} obs/s, {} shards)",
        stats.observations,
        elapsed.as_secs_f64(),
        stats.observations as f64 / elapsed.as_secs_f64().max(1e-9),
        service.config().num_shards
    );
    write_metrics_json(flags, registry.as_ref())
}

/// Enforcing-mode feed: the service holds the mechanism; the guard
/// certifies (or suppresses) every release. One same-timestep
/// [`SessionManager::release_batch`] per step, fanned over `threads`
/// workers with per-shard RNG streams — output is identical for any
/// thread count.
fn run_stream_enforcing(
    mut service: SessionManager<SharedProvider>,
    trajectories: &[Vec<CellId>],
    users: usize,
    steps: usize,
    flags: &Flags,
    registry: Option<&Registry>,
) -> Result<(), CliError> {
    let seed = flags.u64_or("seed", 1)?;
    let threads = flags.usize_or("threads", 1)?;
    let mut worst_loss = vec![0.0f64; users];
    let mut suppressed = vec![0usize; users];
    let started = std::time::Instant::now();
    #[allow(clippy::needless_range_loop)] // column-wise access across per-user rows
    for t in 0..steps {
        let _step_span = registry.map(|r| {
            let mut span = r.span("stream_step");
            span.annotate("t", (t + 1) as f64);
            span
        });
        let batch: Vec<(UserId, CellId)> = (0..users)
            .map(|u| (UserId(u as u64), trajectories[u][t]))
            .collect();
        let releases = service
            .release_batch(&batch, seed.wrapping_add(t as u64), threads)
            .map_err(runtime)?;
        for rel in releases {
            let u = rel.report.user.0 as usize;
            if rel.decision == Decision::Suppressed {
                suppressed[u] += 1;
            }
            if rel.report.worst_loss.is_finite() {
                worst_loss[u] = worst_loss[u].max(rel.report.worst_loss);
            } else {
                worst_loss[u] = f64::INFINITY;
            }
        }
        eprint_step_gauges(registry, t + 1, &service.stats());
    }
    let elapsed = started.elapsed();
    if service.durable_dir().is_some() {
        service.checkpoint().map_err(runtime)?;
    }

    println!("user,observations,worst_loss,suppressed,budget_remaining,exhausted");
    for u in 0..users as u64 {
        let session = service.session(UserId(u)).expect("registered above");
        println!(
            "{},{},{:.6},{},{:.4},{}",
            u,
            session.observed(),
            worst_loss[u as usize],
            suppressed[u as usize],
            session.ledger().remaining(),
            session.ledger().exhausted()
        );
    }
    let stats = service.stats();
    println!(
        "total,{} users,{} observations,{} certified,{} violated,{} suppressed,{} evicted",
        users,
        stats.observations,
        stats.certified,
        stats.violated,
        stats.suppressed,
        stats.evicted_windows
    );
    eprintln!(
        "throughput: {} enforced releases in {:.3}s ({:.0} obs/s)",
        stats.observations,
        elapsed.as_secs_f64(),
        stats.observations as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    write_metrics_json(flags, registry)
}

/// Read-only inspection of a durable service directory: recover the state
/// (latest valid snapshot + WAL-tail replay) without attaching a store,
/// and print every user's ledger. Running it twice over the same directory
/// prints the same digest — recovery is byte-deterministic.
fn cmd_recover(flags: &Flags) -> Result<(), CliError> {
    flags.required("durable-dir")?;
    let registry = registry_from_flags(flags);
    let pipeline = stream_pipeline(flags, registry.as_ref())?;
    let service = pipeline.recover_service().map_err(runtime)?;

    println!("user,observations,spent,budget_remaining,exhausted,violations,active_windows");
    for id in service.users() {
        let session = service.session(id).expect("listed above");
        let ledger = session.ledger();
        println!(
            "{},{},{:.6},{:.4},{},{},{}",
            id.0,
            session.observed(),
            ledger.spent(),
            ledger.remaining(),
            ledger.exhausted(),
            ledger.violations(),
            session.active_windows()
        );
    }
    let stats = service.stats();
    println!(
        "total,{} users,{} observations,{} certified,{} violated,{} suppressed,{} evicted",
        service.num_users(),
        stats.observations,
        stats.certified,
        stats.violated,
        stats.suppressed,
        stats.evicted_windows
    );
    println!("state digest: {:016x}", service.state_digest());
    if let Some(raw) = flags.0.get("cluster-workers") {
        let n: u32 = raw.parse().ok().filter(|&n| n >= 1).ok_or_else(|| {
            CliError::Usage(format!(
                "--cluster-workers must be a positive worker count, got {raw:?}"
            ))
        })?;
        // Shard audit: a worker's durable directory is a clean shard when
        // every recovered user jump-hashes onto the same slot of an
        // n-worker cluster. Run this before and after a handoff.
        let mut per_slot: BTreeMap<u32, (u64, u64, u64)> = BTreeMap::new();
        for id in service.users() {
            let slot = priste::cluster::jump_hash(id.0, n);
            let entry = per_slot.entry(slot).or_insert((0, u64::MAX, 0));
            entry.0 += 1;
            entry.1 = entry.1.min(id.0);
            entry.2 = entry.2.max(id.0);
        }
        println!("cluster: slot audit against a {n}-worker map");
        println!("slot,users,min_user,max_user");
        for (slot, (count, lo, hi)) in &per_slot {
            println!("{slot},{count},{lo},{hi}");
        }
        match per_slot.len() {
            0 => println!("cluster: directory holds no users"),
            1 => println!(
                "cluster: clean shard — every user belongs to slot {}",
                per_slot.keys().next().expect("one entry")
            ),
            k => println!(
                "cluster: WARNING — users from {k} different slots; \
                 this directory is not a clean shard of a {n}-worker map"
            ),
        }
    }
    if registry.is_some() {
        if let Some(info) = service.recovery_info() {
            eprintln!(
                "recovery: {:.3}s, {} records replayed, {} torn",
                info.duration_seconds, info.replayed_records, info.torn_records
            );
        }
    }
    write_metrics_json(flags, registry.as_ref())
}

/// The `priste-calibrate` planners and release demo.
fn cmd_calibrate(flags: &Flags) -> Result<(), CliError> {
    let target = flags.f64_or("target", 0.8)?;
    let alpha = flags.f64_or("alpha", 2.0)?;
    let horizon = flags.usize_or("horizon", 4)?;
    let steps = flags.usize_or("steps", 8)?;
    let seed = flags.u64_or("seed", 1)?;
    if horizon == 0 || steps == 0 {
        return Err(CliError::Usage(
            "--horizon and --steps must be at least 1".into(),
        ));
    }
    if !(target > 0.0 && target.is_finite()) {
        return Err(CliError::Usage(format!(
            "--target must be positive and finite, got {target}"
        )));
    }

    let (grid, chain) = kind_world(flags, 6)?;
    let m = grid.num_cells();
    let default_event = format!("PRESENCE(S={{1:{}}}, T={{2:3}})", (m / 4).max(1));
    let event = parse_event(flags.str_or("event", &default_event), m).map_err(usage)?;
    let planner_cfg = PlannerConfig {
        backoff: flags.f64_or("backoff", 0.5)?,
        floor: flags.f64_or("floor", 1e-3)?,
        threads: flags.usize_or("threads", 1)?,
        ..PlannerConfig::default()
    };
    planner_cfg.validate().map_err(usage)?;
    if planner_cfg.floor > alpha {
        return Err(CliError::Usage(format!(
            "--floor {} exceeds --alpha {alpha} (nothing to back off to)",
            planner_cfg.floor
        )));
    }

    // ---- One pipeline, every calibration view. ---------------------------
    let pipeline = Pipeline::on(grid)
        .mobility(chain.clone())
        .event(event)
        .planar_laplace(alpha)
        .target_epsilon(target)
        .planner(planner_cfg)
        .guard(GuardConfig {
            backoff: flags.f64_or("backoff", 0.5)?,
            floor: flags.f64_or("floor", 1e-3)?,
            ..GuardConfig::default()
        })
        .build()
        .map_err(usage)?;

    // ---- Offline plans: the chosen planner's table plus the three-way
    // comparison (utility under the planar-Laplace error model). ----------
    let planner = flags.str_or("planner", "greedy");
    if !matches!(planner, "uniform" | "greedy" | "knapsack") {
        return Err(CliError::Usage(format!(
            "--planner must be uniform, greedy or knapsack, got {planner:?}"
        )));
    }
    let model = PlanarLaplaceError;
    let (uniform, greedy, knapsack) = pipeline.plan_all(horizon, &model).map_err(runtime)?;
    let chosen = match planner {
        "uniform" => &uniform,
        "knapsack" => &knapsack,
        _ => &greedy,
    };

    println!("plan: {planner} budgets for ε* = {target} over {horizon} steps ({m} cells)");
    println!("{chosen}");
    println!(
        "planner,certified,epsilon,mean_budget,utility({})",
        model.name()
    );
    for (name, plan) in [
        ("uniform-split", &uniform),
        ("greedy", &greedy),
        ("knapsack", &knapsack),
    ] {
        let epsilon = match plan.certified_epsilon() {
            Some(eps) => format!("{eps:.4}"),
            None => "-".into(),
        };
        println!(
            "{name},{}/{horizon},{epsilon},{:.4},{:.4}",
            plan.certified_steps(),
            plan.mean_budget(),
            plan.total_utility(&model)
        );
    }

    // ---- Release demo: uncalibrated vs calibrated on one trajectory. ----
    let mut rng = StdRng::seed_from_u64(seed);
    let traj = chain
        .sample_trajectory_from(&Vector::uniform(m), steps, &mut rng)
        .map_err(runtime)?;

    let plm = pipeline.mechanism_instance().map_err(usage)?;
    let mut plain = pipeline.quantifier().map_err(runtime)?;
    let mut plain_rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let mut uncal_worst = 0.0f64;
    for &loc in &traj {
        let obs = plm.perturb(loc, &mut plain_rng);
        let step = plain.observe(&plm.emission_column(obs)).map_err(runtime)?;
        uncal_worst = uncal_worst.max(step.privacy_loss);
    }
    println!(
        "demo: uncalibrated {alpha}-PLM worst realized loss {uncal_worst:.4} → {}",
        if uncal_worst > target {
            format!("FAILS ε* = {target}")
        } else {
            format!("within ε* = {target}")
        }
    );

    let mut calibrated = pipeline.enforce().map_err(runtime)?;
    let mut cal_rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let mut cal_worst = 0.0f64;
    let mut cal_suppressed = 0usize;
    let mut cal_attempts = 0usize;
    for &loc in &traj {
        let rel = calibrated.release(loc, &mut cal_rng).map_err(runtime)?;
        cal_worst = cal_worst.max(rel.loss);
        cal_attempts += rel.attempts.len();
        if rel.decision == Decision::Suppressed {
            cal_suppressed += 1;
        }
    }
    println!(
        "demo: calibrated release worst realized loss {cal_worst:.4} {} ε* = {target} → {} \
         ({cal_suppressed}/{steps} suppressed, {cal_attempts} attempts)",
        if cal_worst <= target { "≤" } else { ">" },
        if cal_worst <= target {
            "certified"
        } else {
            "FAILS"
        }
    );
    Ok(())
}

/// The scenario served as an HTTP daemon: the `stream` pipeline behind
/// `priste-serve`, with the metrics plane always on (that is the point of
/// the daemon) and signal-driven graceful drain.
fn cmd_serve(flags: &Flags) -> Result<(), CliError> {
    let mode = flags.str_or("mode", "audit");
    if !matches!(mode, "audit" | "enforce") {
        return Err(CliError::Usage(format!(
            "--mode must be audit or enforce, got {mode:?}"
        )));
    }
    let workers = flags.usize_or("workers", 8)?;
    if workers == 0 {
        return Err(CliError::Usage("--workers must be at least 1".into()));
    }
    let addr = flags.str_or("addr", "127.0.0.1:8750");

    // Unlike `stream`, the registry is unconditional — the live `/metrics`
    // endpoint is the daemon's reason to exist. `--trace` adds span events
    // on stderr; `--metrics-json` becomes the drain-time snapshot path.
    let registry = Registry::new();
    if flags.0.contains_key("trace") {
        registry.set_sink(Arc::new(StderrSink));
    }
    let pipeline = stream_pipeline(flags, Some(&registry))?;
    let config = ServerConfig {
        workers,
        metrics_snapshot: flags.0.get("metrics-json").map(std::path::PathBuf::from),
        handle_signals: true,
        seed: flags.u64_or("seed", 1)?,
        // Capacity-drill knob: a synthetic serialized-commit stall, held
        // inside the state lock. Zero (the default) serves at full speed.
        request_stall: std::time::Duration::from_micros(flags.u64_or("stall-us", 0)?),
        ..ServerConfig::default()
    };
    let server = if mode == "enforce" {
        pipeline.serve_http_enforcing(addr, config)
    } else {
        pipeline.serve_http(addr, config)
    }
    .map_err(runtime)?;

    // Scripts (and the e2e tests) scrape this line to learn the bound
    // port when `--addr` asked for an ephemeral one.
    eprintln!("serve: listening on {} (mode={mode})", server.local_addr());
    let summary = server.wait().map_err(runtime)?;
    eprintln!(
        "serve: drained — {} connections, {} requests ({} errors), checkpoint={}",
        summary.connections,
        summary.requests,
        summary.errors,
        if summary.checkpointed {
            "written"
        } else {
            "none"
        }
    );
    Ok(())
}

/// The `priste-cluster` router daemon: fronts N workers, either spawned
/// here as child `serve` processes or already running elsewhere.
fn cmd_cluster(flags: &Flags) -> Result<(), CliError> {
    let workers = flags.usize_or("workers", 8)?;
    if workers == 0 {
        return Err(CliError::Usage("--workers must be at least 1".into()));
    }
    let addr = flags.str_or("addr", "127.0.0.1:8760");
    let sources = ["spawn", "worker-addrs", "shard-map"]
        .iter()
        .filter(|k| flags.0.contains_key(**k))
        .count();
    if sources != 1 {
        return Err(CliError::Usage(
            "exactly one of --spawn N, --worker-addrs LIST or --shard-map FILE is required".into(),
        ));
    }

    let mut children = Vec::new();
    let map = if flags.0.contains_key("spawn") {
        let n = flags.usize_or("spawn", 0)?;
        if n == 0 {
            return Err(CliError::Usage("--spawn must be at least 1".into()));
        }
        spawn_workers(flags, n, &mut children)?
    } else if let Some(list) = flags.0.get("worker-addrs") {
        ShardMap::from_workers(list.split(',')).map_err(usage)?
    } else {
        let path = flags.required("shard-map")?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Runtime(format!("read --shard-map {path}: {e}")))?;
        ShardMap::from_file_text(&text).map_err(usage)?
    };

    let registry = Registry::new();
    if flags.0.contains_key("trace") {
        registry.set_sink(Arc::new(StderrSink));
    }
    let config = RouterConfig {
        workers,
        retry_after_seconds: flags.u64_or("retry-after", 1)?,
        metrics_snapshot: flags.0.get("metrics-json").map(std::path::PathBuf::from),
        handle_signals: true,
        ..RouterConfig::default()
    };
    let router = Router::start(map.clone(), registry, config, addr).map_err(runtime)?;

    // Scripts (and the e2e tests) scrape this line, like serve's.
    eprintln!(
        "cluster: routing on {} across {} workers",
        router.local_addr(),
        map.len()
    );
    for status in router.workers_snapshot() {
        eprintln!(
            "cluster: slot {} -> {} ({})",
            status.slot,
            status.addr,
            if status.healthy { "up" } else { "down" }
        );
    }
    let summary = router.wait().map_err(runtime)?;
    eprintln!(
        "cluster: drained — {} connections, {} requests ({} errors)",
        summary.connections, summary.requests, summary.errors
    );

    // Our drain is done; pass it on to the spawned workers and reap them
    // so their checkpoints are on disk before we exit.
    for child in &children {
        priste::serve::signal::terminate(child.id());
    }
    let mut failed = 0usize;
    for (i, mut child) in children.into_iter().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("cluster: worker {i} exited with {status}");
                failed += 1;
            }
            Err(e) => {
                eprintln!("cluster: worker {i} could not be reaped: {e}");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        return Err(CliError::Runtime(format!(
            "{failed} spawned workers did not drain cleanly"
        )));
    }
    Ok(())
}

/// Spawns `n` child `serve` daemons on ephemeral ports, forwarding the
/// scenario flags (each worker gets `--seed base+i`, and with
/// `--durable-root` its own `worker-i/` durable directory), and scrapes
/// each child's `serve: listening on` stderr line into a [`ShardMap`].
fn spawn_workers(
    flags: &Flags,
    n: usize,
    children: &mut Vec<std::process::Child>,
) -> Result<ShardMap, CliError> {
    use std::io::BufRead as _;

    let exe = std::env::current_exe().map_err(runtime)?;
    let base_seed = flags.u64_or("seed", 1)?;
    let mut addrs = Vec::with_capacity(n);
    for i in 0..n {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("serve").args(["--addr", "127.0.0.1:0"]);
        for key in [
            "kind", "event", "epsilon", "alpha", "side", "sigma", "shards", "linger", "budget",
            "mode", "floor", "backoff", "stall-us",
        ] {
            if let Some(value) = flags.0.get(key) {
                cmd.arg(format!("--{key}")).arg(value);
            }
        }
        cmd.args(["--seed", &(base_seed + i as u64).to_string()]);
        if let Some(root) = flags.0.get("durable-root") {
            cmd.arg("--durable-dir")
                .arg(std::path::Path::new(root).join(format!("worker-{i}")));
        }
        cmd.stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::piped());
        let mut child = cmd
            .spawn()
            .map_err(|e| CliError::Runtime(format!("spawn worker {i}: {e}")))?;
        let stderr = child.stderr.take().expect("stderr was piped");
        let mut lines = std::io::BufReader::new(stderr).lines();
        let mut addr = None;
        for line in &mut lines {
            let line = line.map_err(runtime)?;
            if let Some(rest) = line.strip_prefix("serve: listening on ") {
                addr = Some(rest.split_whitespace().next().unwrap_or(rest).to_string());
                break;
            }
            eprintln!("worker-{i}: {line}");
        }
        let Some(addr) = addr else {
            let _ = child.kill();
            let _ = child.wait();
            for spawned in children.iter_mut() {
                let _ = spawned.kill();
                let _ = spawned.wait();
            }
            return Err(CliError::Runtime(format!(
                "worker {i} exited before announcing its address"
            )));
        };
        eprintln!("cluster: spawned worker {i} on {addr}");
        // Keep forwarding the child's stderr so it never blocks on a
        // full pipe (the drain summary, trace lines, and panics).
        std::thread::spawn(move || {
            for line in lines.map_while(std::result::Result::ok) {
                eprintln!("worker-{i}: {line}");
            }
        });
        children.push(child);
        addrs.push(addr);
    }
    ShardMap::from_workers(addrs).map_err(runtime)
}

/// Closed-loop load generator against a running `serve` daemon.
fn cmd_loadgen(flags: &Flags) -> Result<(), CliError> {
    let mode_s = flags.str_or("mode", "auto");
    let mode = LoadMode::parse(mode_s).ok_or_else(|| {
        CliError::Usage(format!(
            "--mode must be auto, ingest, release or mixed, got {mode_s:?}"
        ))
    })?;
    let opts = LoadgenOptions {
        addr: flags.required("addr")?.to_string(),
        requests: flags.u64_or("requests", 1000)?,
        connections: flags.usize_or("connections", 4)?,
        users: flags.u64_or("users", 50)?,
        mode,
        seed: flags.u64_or("seed", 42)?,
        rate: match flags.0.get("rate") {
            None => None,
            Some(raw) => Some(raw.parse::<f64>().map_err(|_| {
                CliError::Usage(format!("--rate must be a positive number, got {raw:?}"))
            })?),
        },
    };
    if opts.requests == 0 || opts.connections == 0 || opts.users == 0 {
        return Err(CliError::Usage(
            "--requests, --connections and --users must be at least 1".into(),
        ));
    }
    if opts.rate.is_some_and(|r| !r.is_finite() || r <= 0.0) {
        return Err(CliError::Usage(
            "--rate must be a positive number of requests/second".into(),
        ));
    }
    let report = priste::serve::loadgen::run(&opts).map_err(runtime)?;
    println!(
        "loadgen: {} requests in {:.2}s ({} errors)",
        report.requests, report.elapsed_seconds, report.errors
    );
    println!(
        "throughput: {:.0} req/s over {} connections",
        report.throughput(),
        opts.connections
    );
    if let Some(offered) = report.offered_rate {
        println!(
            "open loop: offered {offered:.0} req/s, achieved {:.0} req/s ({})",
            report.throughput(),
            if report.throughput() >= 0.95 * offered {
                "kept up"
            } else {
                "fell behind"
            }
        );
    }
    println!(
        "latency: p50 {:.3} ms  p90 {:.3} ms  p99 {:.3} ms",
        report.quantile_ms(0.50),
        report.quantile_ms(0.90),
        report.quantile_ms(0.99)
    );
    if let Some(out) = flags.0.get("out") {
        write_loadgen_artifact(out, &opts, &report)?;
        eprintln!("loadgen: benchmark artifact written to {out}");
    }
    Ok(())
}

/// Writes a loadgen run as a `BENCH_serve.json`-shaped artifact (schema
/// `priste-bench-serve/1`) so `bench_export --compare` can gate on a run
/// produced from the CLI instead of the in-process bench suite.
fn write_loadgen_artifact(
    path: &str,
    opts: &LoadgenOptions,
    report: &LoadgenReport,
) -> Result<(), CliError> {
    let mut rows = vec![
        ("serve_p50_ms", report.quantile_ms(0.50), "ms"),
        ("serve_p90_ms", report.quantile_ms(0.90), "ms"),
        ("serve_p99_ms", report.quantile_ms(0.99), "ms"),
        ("serve_throughput", report.throughput(), "req/s"),
    ];
    if let Some(offered) = report.offered_rate {
        rows.push(("serve_offered_rate", offered, "req/s"));
    }
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"priste-bench-serve/1\",\n");
    json.push_str(&format!(
        "  \"scenario\": {{\"requests\": {}, \"connections\": {}, \"users\": {}, \"errors\": {}}},\n",
        report.requests, opts.connections, opts.users, report.errors
    ));
    json.push_str("  \"metrics\": [\n");
    for (i, (name, value, unit)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"value\": {value:.3}, \"unit\": \"{unit}\", \
             \"note\": \"priste-cli loadgen\"}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, json).map_err(|e| CliError::Runtime(format!("write --out {path}: {e}")))
}

/// The metric schema reference: every instrument the service, guard, and
/// durable substrate export, as rendered by `stream --metrics-json` and
/// `Registry::render_prometheus`. Kept in sync with
/// `priste_online`/`priste_calibrate` instrumentation by the
/// `metrics_command_lists_exported_names` test.
const METRIC_SCHEMA: &[(&str, &str, &str)] = &[
    (
        "online_observations_total",
        "counter",
        "observations ingested across all sessions",
    ),
    (
        "online_windows_evicted_total",
        "counter",
        "event windows evicted after their linger expired",
    ),
    (
        "online_verdicts_certified_total",
        "counter",
        "window verdicts that certified the target epsilon",
    ),
    (
        "online_verdicts_violated_total",
        "counter",
        "window verdicts that exceeded the target epsilon",
    ),
    (
        "online_verdicts_mismatched_total",
        "counter",
        "windows whose incremental and reference checks disagreed",
    ),
    (
        "online_suppressed_total",
        "counter",
        "enforced releases the guard suppressed",
    ),
    (
        "online_shard_panics_total",
        "counter",
        "worker panics absorbed by the parallel fan-out (also per shard as {shard=\"N\"})",
    ),
    (
        "online_sessions",
        "gauge",
        "live sessions currently held by the service",
    ),
    (
        "online_shard_imbalance",
        "gauge",
        "max-shard occupancy over the uniform share (1.0 = balanced)",
    ),
    (
        "online_ingest_batch_seconds",
        "histogram",
        "wall time of one ingest batch",
    ),
    (
        "online_ingest_batch_size",
        "histogram",
        "observations per ingest batch",
    ),
    (
        "online_release_seconds",
        "histogram",
        "wall time of one enforced singleton release",
    ),
    (
        "online_release_batch_seconds",
        "histogram",
        "wall time of one enforced release batch",
    ),
    (
        "online_release_batch_size",
        "histogram",
        "releases per enforced batch",
    ),
    (
        "online_recovery_duration_seconds",
        "gauge",
        "snapshot-load + WAL-replay time of the last recovery",
    ),
    (
        "online_recovery_replayed_records",
        "gauge",
        "WAL records replayed by the last recovery",
    ),
    (
        "online_recovery_skipped_newer",
        "gauge",
        "1 if recovery skipped a newer-but-invalid snapshot generation",
    ),
    (
        "online_recovery_torn_records_total",
        "counter",
        "torn WAL tail records discarded during recovery",
    ),
    (
        "guard_releases_total",
        "counter",
        "guard releases certified at the calibrated budget",
    ),
    (
        "guard_suppressions_total",
        "counter",
        "guard decisions to suppress instead of release",
    ),
    (
        "guard_floor_releases_total",
        "counter",
        "guard releases forced out at the floor budget (uncertified)",
    ),
    (
        "guard_epsilon_spent",
        "histogram",
        "realized privacy loss per guarded release",
    ),
    (
        "guard_backoff_depth",
        "histogram",
        "calibration ladder attempts per guarded release",
    ),
    (
        "durable_wal_append_seconds",
        "histogram",
        "WAL record append wall time (write, excluding fsync)",
    ),
    (
        "durable_wal_fsync_seconds",
        "histogram",
        "WAL fsync wall time per appended record",
    ),
    (
        "durable_wal_bytes_total",
        "counter",
        "bytes journaled to the WAL",
    ),
    (
        "durable_snapshot_seconds",
        "histogram",
        "snapshot write wall time per checkpoint",
    ),
    (
        "durable_snapshot_bytes",
        "gauge",
        "size of the last written snapshot",
    ),
    (
        "durable_checkpoints_total",
        "counter",
        "checkpoints taken (snapshot + WAL truncation)",
    ),
    (
        "calibrate_plan_seconds",
        "histogram",
        "budget-planner wall time (per {planner=\"...\"} label)",
    ),
    (
        "calibrate_plan_oracle_walks_total",
        "counter",
        "calibration-ladder rungs walked by the planners (per {planner=\"...\"} label)",
    ),
    (
        "span_stream_step_seconds",
        "histogram",
        "CLI stream step span (one batch end-to-end)",
    ),
    (
        "serve_request_seconds",
        "histogram",
        "HTTP request wall time (per {route=\"...\",status=\"...\"} label pair)",
    ),
    (
        "serve_requests_in_flight",
        "gauge",
        "HTTP requests currently being handled",
    ),
    (
        "serve_connections_total",
        "counter",
        "TCP connections accepted by the daemon",
    ),
    (
        "serve_errors_total",
        "counter",
        "4xx/5xx responses and malformed requests (per {route=\"...\"} label)",
    ),
    (
        "priste_build_info",
        "gauge",
        "always 1; the daemon's version rides in the {version=\"...\"} label",
    ),
    (
        "process_uptime_seconds",
        "gauge",
        "seconds since the daemon started, refreshed on every /metrics scrape",
    ),
    (
        "span_http_request_seconds",
        "histogram",
        "server-side HTTP request span (routing + dispatch end-to-end)",
    ),
];

/// Prints the metric schema table: what `--metrics-json` / the Prometheus
/// renderer export, one line per instrument.
fn cmd_metrics() -> Result<(), CliError> {
    println!(
        "exported metric schema (JSON schema id: {:?})",
        priste::obs::JSON_SCHEMA
    );
    println!("name,kind,meaning");
    // The router's rows live next to the code that exports them; splice
    // them in so one table documents every daemon in the repo.
    for (name, kind, meaning) in METRIC_SCHEMA.iter().chain(priste::cluster::METRIC_SCHEMA) {
        println!("{name},{kind},{meaning}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use priste::obs::json::Json;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn flags(command: &str, v: &[&str]) -> Result<Flags, CliError> {
        let allowed = match command {
            "world" => WORLD_FLAGS,
            "protect" => PROTECT_FLAGS,
            "quantify" => QUANTIFY_FLAGS,
            "check" => CHECK_FLAGS,
            "stream" => STREAM_FLAGS,
            "recover" => RECOVER_FLAGS,
            "calibrate" => CALIBRATE_FLAGS,
            "serve" => SERVE_FLAGS,
            "cluster" => CLUSTER_FLAGS,
            "loadgen" => LOADGEN_FLAGS,
            other => panic!("unknown command {other}"),
        };
        Flags::parse(&args(v), allowed, command)
    }

    #[test]
    fn flags_parse_key_values() {
        let f = flags("world", &["--side", "6", "--sigma", "0.5"]).unwrap();
        assert_eq!(f.usize_or("side", 10).unwrap(), 6);
        assert_eq!(f.f64_or("sigma", 1.0).unwrap(), 0.5);
        assert_eq!(f.f64_or("missing", 2.0).unwrap(), 2.0);
        assert!(flags("protect", &[]).unwrap().required("event").is_err());
    }

    #[test]
    fn flags_reject_malformed_input() {
        assert!(matches!(
            flags("world", &["side", "6"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            flags("world", &["--side"]),
            Err(CliError::Usage(_))
        ));
        let f = flags("world", &["--side", "abc"]).unwrap();
        assert!(matches!(f.usize_or("side", 1), Err(CliError::Usage(_))));
    }

    #[test]
    fn unknown_flags_are_usage_errors() {
        match flags("stream", &["--frobnicate", "1"]) {
            Err(CliError::Usage(msg)) => {
                assert!(msg.contains("--frobnicate"), "{msg}");
                assert!(msg.contains("stream"), "{msg}");
            }
            _ => panic!("unknown flag must be a usage error"),
        }
    }

    #[test]
    fn world_command_runs() {
        let f = flags("world", &["--side", "5", "--seed", "3"]).unwrap();
        cmd_world(&f).unwrap();
    }

    #[test]
    fn protect_command_runs_both_algorithms() {
        let base = [
            "--event",
            "PRESENCE(S={1:5}, T={2:4})",
            "--side",
            "5",
            "--steps",
            "6",
        ];
        let f = flags("protect", &base).unwrap();
        cmd_protect(&f).unwrap();
        let mut with_delta = base.to_vec();
        with_delta.extend(["--delta", "0.3"]);
        let f = flags("protect", &with_delta).unwrap();
        cmd_protect(&f).unwrap();
    }

    #[test]
    fn quantify_and_check_commands_run() {
        let base = [
            "--event",
            "PRESENCE(S={1:5}, T={2:4})",
            "--side",
            "5",
            "--steps",
            "6",
        ];
        let f = flags("quantify", &base).unwrap();
        cmd_quantify(&f).unwrap();
        let f = flags("check", &base).unwrap();
        cmd_check(&f).unwrap();
    }

    #[test]
    fn stream_command_runs_both_feeds_and_modes() {
        let f = flags(
            "stream",
            &["--users", "6", "--steps", "5", "--side", "4", "--seed", "9"],
        )
        .unwrap();
        cmd_stream(&f).unwrap();
        let f = flags(
            "stream",
            &[
                "--users", "4", "--steps", "5", "--side", "6", "--kind", "commuter", "--seed", "9",
            ],
        )
        .unwrap();
        cmd_stream(&f).unwrap();
        let f = flags(
            "stream",
            &[
                "--users",
                "3",
                "--steps",
                "4",
                "--side",
                "4",
                "--mode",
                "enforce",
                "--epsilon",
                "0.8",
                "--alpha",
                "2",
                "--seed",
                "9",
            ],
        )
        .unwrap();
        cmd_stream(&f).unwrap();
    }

    #[test]
    fn stream_durable_then_recover_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "priste-cli-durable-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap();
        let base = [
            "--users",
            "3",
            "--steps",
            "4",
            "--side",
            "4",
            "--seed",
            "9",
            "--durable-dir",
            dir_s,
        ];
        let f = flags("stream", &base).unwrap();
        cmd_stream(&f).unwrap();
        // A second run over the same directory recovers the sessions and
        // continues them instead of re-registering.
        cmd_stream(&f).unwrap();
        let f = flags("recover", &["--side", "4", "--durable-dir", dir_s]).unwrap();
        cmd_recover(&f).unwrap();
        // A different scenario (grid side) fingerprints differently.
        let f = flags("recover", &["--side", "5", "--durable-dir", dir_s]).unwrap();
        assert!(matches!(cmd_recover(&f), Err(CliError::Runtime(_))));
        // The directory flag is mandatory.
        let f = flags("recover", &["--side", "4"]).unwrap();
        assert!(matches!(cmd_recover(&f), Err(CliError::Usage(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn temp_path(tag: &str, ext: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "priste-cli-{tag}-{}-{:?}.{ext}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    fn serve_and_loadgen_validate_their_flags() {
        // `serve` takes the full scenario surface plus the daemon knobs…
        let f = flags("serve", &["--addr", "127.0.0.1:0", "--trace"]).unwrap();
        assert_eq!(f.str_or("addr", ""), "127.0.0.1:0");
        assert_eq!(f.str_or("trace", ""), "true");
        // …and rejects modes and worker counts the daemon cannot run.
        let f = flags("serve", &["--mode", "observe"]).unwrap();
        assert!(matches!(cmd_serve(&f), Err(CliError::Usage(_))));
        let f = flags("serve", &["--workers", "0"]).unwrap();
        assert!(matches!(cmd_serve(&f), Err(CliError::Usage(_))));
        // `loadgen` insists on a target and a recognizable mode.
        let f = flags("loadgen", &[]).unwrap();
        assert!(matches!(cmd_loadgen(&f), Err(CliError::Usage(_))));
        let f = flags("loadgen", &["--addr", "127.0.0.1:1", "--mode", "chaos"]).unwrap();
        assert!(matches!(cmd_loadgen(&f), Err(CliError::Usage(_))));
        let f = flags("loadgen", &["--addr", "127.0.0.1:1", "--requests", "0"]).unwrap();
        assert!(matches!(cmd_loadgen(&f), Err(CliError::Usage(_))));
        // The open-loop rate must be a positive number.
        for bad in ["0", "-5", "nan", "abc"] {
            let f = flags("loadgen", &["--addr", "127.0.0.1:1", "--rate", bad]).unwrap();
            assert!(
                matches!(cmd_loadgen(&f), Err(CliError::Usage(_))),
                "--rate {bad} must be a usage error"
            );
        }
    }

    #[test]
    fn cluster_validates_its_flags() {
        // Exactly one worker source.
        let f = flags("cluster", &[]).unwrap();
        assert!(matches!(cmd_cluster(&f), Err(CliError::Usage(_))));
        let f = flags(
            "cluster",
            &["--spawn", "2", "--worker-addrs", "127.0.0.1:1"],
        )
        .unwrap();
        assert!(matches!(cmd_cluster(&f), Err(CliError::Usage(_))));
        // Counts must be positive.
        let f = flags("cluster", &["--spawn", "0"]).unwrap();
        assert!(matches!(cmd_cluster(&f), Err(CliError::Usage(_))));
        let f = flags(
            "cluster",
            &["--workers", "0", "--worker-addrs", "127.0.0.1:1"],
        )
        .unwrap();
        assert!(matches!(cmd_cluster(&f), Err(CliError::Usage(_))));
        // A blank address in the list is rejected before any bind.
        let f = flags("cluster", &["--worker-addrs", "127.0.0.1:1,,127.0.0.1:2"]).unwrap();
        assert!(matches!(cmd_cluster(&f), Err(CliError::Usage(_))));
        // A missing shard-map file is a runtime failure, not usage.
        let f = flags("cluster", &["--shard-map", "/no/such/shard.map"]).unwrap();
        assert!(matches!(cmd_cluster(&f), Err(CliError::Runtime(_))));
        // The loadgen-only and serve-only knobs stay rejected.
        assert!(matches!(
            flags("cluster", &["--requests", "5"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            flags("cluster", &["--durable-dir", "/tmp/x"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn recover_cluster_workers_audits_shard_cleanliness() {
        let dir = temp_path("recover-cluster", "d");
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap().to_string();
        let f = flags(
            "stream",
            &[
                "--users",
                "6",
                "--steps",
                "3",
                "--side",
                "4",
                "--seed",
                "9",
                "--durable-dir",
                &dir_s,
            ],
        )
        .unwrap();
        cmd_stream(&f).unwrap();
        // Six users of one unsharded stream span multiple slots of a
        // 2-worker map: the audit must run and report them all.
        let f = flags(
            "recover",
            &[
                "--side",
                "4",
                "--durable-dir",
                &dir_s,
                "--cluster-workers",
                "2",
            ],
        )
        .unwrap();
        cmd_recover(&f).unwrap();
        // Every user of a 1-worker map is slot 0: a clean shard.
        let f = flags(
            "recover",
            &[
                "--side",
                "4",
                "--durable-dir",
                &dir_s,
                "--cluster-workers",
                "1",
            ],
        )
        .unwrap();
        cmd_recover(&f).unwrap();
        let f = flags(
            "recover",
            &[
                "--side",
                "4",
                "--durable-dir",
                &dir_s,
                "--cluster-workers",
                "0",
            ],
        )
        .unwrap();
        assert!(matches!(cmd_recover(&f), Err(CliError::Usage(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trace_is_a_boolean_flag() {
        let f = flags("stream", &["--trace", "--users", "2"]).unwrap();
        assert_eq!(f.str_or("trace", ""), "true");
        assert_eq!(f.usize_or("users", 0).unwrap(), 2);
        // `recover` does not accept it.
        assert!(matches!(
            flags("recover", &["--trace"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn stream_metrics_json_dump_parses_and_agrees() {
        let path = temp_path("metrics", "json");
        let path_s = path.to_str().unwrap().to_string();
        let f = flags(
            "stream",
            &[
                "--users",
                "4",
                "--steps",
                "5",
                "--side",
                "4",
                "--seed",
                "9",
                "--metrics-json",
                &path_s,
            ],
        )
        .unwrap();
        cmd_stream(&f).unwrap();
        let doc = priste::obs::json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(|j| j.as_str()),
            Some(priste::obs::JSON_SCHEMA)
        );
        // 4 users × 5 steps of observations, in 5 ingest batches of 4.
        let counters = doc.get("counters").unwrap();
        assert_eq!(
            counters
                .get("online_observations_total")
                .and_then(Json::as_u64),
            Some(20)
        );
        let hists = doc.get("histograms").unwrap();
        let batch = hists.get("online_ingest_batch_seconds").unwrap();
        assert_eq!(batch.get("count").and_then(Json::as_u64), Some(5));
        let sizes = hists.get("online_ingest_batch_size").unwrap();
        assert_eq!(sizes.get("count").and_then(Json::as_u64), Some(5));
        assert_eq!(sizes.get("sum").and_then(Json::as_f64), Some(20.0));
        assert_eq!(
            doc.get("gauges")
                .unwrap()
                .get("online_sessions")
                .and_then(Json::as_f64),
            Some(4.0)
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn metrics_schema_covers_every_exported_name() {
        // A durable enforcing run touches every subsystem: service, guard,
        // WAL/snapshot, spans. Every name it exports must be documented in
        // `priste-cli metrics`.
        let dir = temp_path("metrics-schema", "d");
        let _ = std::fs::remove_dir_all(&dir);
        let path = temp_path("metrics-schema", "json");
        let f = flags(
            "stream",
            &[
                "--users",
                "3",
                "--steps",
                "4",
                "--side",
                "4",
                "--mode",
                "enforce",
                "--seed",
                "9",
                "--durable-dir",
                dir.to_str().unwrap(),
                "--metrics-json",
                path.to_str().unwrap(),
            ],
        )
        .unwrap();
        cmd_stream(&f).unwrap();
        let doc = priste::obs::json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let documented: Vec<&str> = METRIC_SCHEMA.iter().map(|(n, _, _)| *n).collect();
        for section in ["counters", "gauges", "histograms"] {
            for name in doc.get(section).unwrap().as_object().unwrap().keys() {
                let base = name.split('{').next().unwrap();
                assert!(
                    documented.contains(&base),
                    "{name} exported but missing from METRIC_SCHEMA"
                );
            }
        }
        assert!(run(&args(&["metrics"])).is_ok());
        assert!(matches!(
            run(&args(&["metrics", "--side", "4"])),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recover_metrics_json_reports_recovery_telemetry() {
        let dir = temp_path("recover-metrics", "d");
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap().to_string();
        let f = flags(
            "stream",
            &[
                "--users",
                "3",
                "--steps",
                "4",
                "--side",
                "4",
                "--seed",
                "9",
                "--durable-dir",
                &dir_s,
            ],
        )
        .unwrap();
        cmd_stream(&f).unwrap();
        let path = temp_path("recover-metrics", "json");
        let f = flags(
            "recover",
            &[
                "--side",
                "4",
                "--durable-dir",
                &dir_s,
                "--metrics-json",
                path.to_str().unwrap(),
            ],
        )
        .unwrap();
        cmd_recover(&f).unwrap();
        let doc = priste::obs::json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let gauges = doc.get("gauges").unwrap();
        assert!(
            gauges
                .get("online_recovery_duration_seconds")
                .and_then(Json::as_f64)
                .is_some_and(|v| v >= 0.0),
            "recovery duration gauge missing"
        );
        // The clean-shutdown checkpoint leaves nothing to replay, but the
        // counters must round-trip through the snapshot.
        assert_eq!(
            doc.get("counters")
                .unwrap()
                .get("online_observations_total")
                .and_then(Json::as_u64),
            Some(12)
        );
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stream_command_validates_input() {
        for bad in [
            vec!["--users", "0"],
            vec!["--kind", "martian"],
            vec!["--event", "NOPE()", "--side", "4"],
            vec!["--epsilon", "0", "--side", "4"],
            vec!["--mode", "maybe", "--side", "4"],
        ] {
            let f = flags("stream", &bad).unwrap();
            assert!(
                matches!(cmd_stream(&f), Err(CliError::Usage(_))),
                "{bad:?} must be a usage error"
            );
        }
    }

    #[test]
    fn calibrate_command_runs_and_validates() {
        let f = flags(
            "calibrate",
            &[
                "--side",
                "3",
                "--horizon",
                "2",
                "--steps",
                "3",
                "--target",
                "0.8",
                "--alpha",
                "1.5",
                "--event",
                "PRESENCE(S={1:3}, T={2:3})",
            ],
        )
        .unwrap();
        cmd_calibrate(&f).unwrap();
        let f = flags("calibrate", &["--horizon", "0"]).unwrap();
        assert!(matches!(cmd_calibrate(&f), Err(CliError::Usage(_))));
        let f = flags("calibrate", &["--backoff", "2", "--side", "3"]).unwrap();
        assert!(matches!(cmd_calibrate(&f), Err(CliError::Usage(_))));
        let f = flags("calibrate", &["--planner", "martian", "--side", "3"]).unwrap();
        match cmd_calibrate(&f) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("martian"), "{msg}"),
            other => panic!("unknown planner must be a usage error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(matches!(
            run(&args(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
        assert!(run(&args(&["help"])).is_ok());
    }

    #[test]
    fn bad_event_spec_is_reported() {
        let f = flags("protect", &["--event", "NOPE()", "--side", "5"]).unwrap();
        assert!(matches!(cmd_protect(&f), Err(CliError::Usage(_))));
    }
}
