//! `priste-cli` — command-line front end for the PriSTE library.
//!
//! ```text
//! priste-cli world    [--kind synthetic|commuter] [--side N] [--sigma F] [--seed N]
//! priste-cli protect  --event SPEC [--epsilon F] [--alpha F] [--delta F]
//!                     [--side N] [--sigma F] [--steps N] [--seed N]
//! priste-cli quantify --event SPEC [--alpha F] [--side N] [--sigma F]
//!                     [--steps N] [--seed N]
//! priste-cli check    --event SPEC [--epsilon F] [--alpha F] [--side N]
//!                     [--sigma F] [--steps N] [--seed N]
//! priste-cli stream   [--users N] [--steps N] [--kind synthetic|commuter]
//!                     [--event SPEC] [--epsilon F] [--alpha F] [--side N]
//!                     [--sigma F] [--shards N] [--linger N] [--budget F]
//!                     [--seed N]
//! ```
//!
//! * `world` — build a mobility world and print its summary statistics.
//! * `protect` — run the PriSTE framework (Algorithm 2, or Algorithm 3 when
//!   `--delta` is given) over a sampled trajectory; emits a release CSV.
//! * `quantify` — release the same trajectory through a *plain* α-PLM (no
//!   calibration) and print the realized event-privacy loss per step — the
//!   diagnostic that shows what an uncalibrated mechanism leaks.
//! * `check` — per-step Theorem IV.1 verdicts for a plain α-PLM stream:
//!   which releases would PriSTE have refused?
//! * `stream` — the `priste-online` streaming service: simulate N users
//!   over a synthetic or commuter (GeoLife-sim) feed, ingest every release
//!   through the sharded session manager, and report per-user privacy
//!   verdicts plus throughput (throughput goes to stderr so stdout stays
//!   deterministic under `--seed`).
//!
//! Events use the paper's notation, e.g. `"PRESENCE(S={1:10}, T={4:8})"`.
//! `stream` events are *attach-relative*: `T={2:4}` means timestamps 2–4 of
//! each user's session.

use priste::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  priste-cli world    [--kind synthetic|commuter] [--side N] [--sigma F] [--seed N]
  priste-cli protect  --event SPEC [--epsilon F] [--alpha F] [--delta F]
                      [--side N] [--sigma F] [--steps N] [--seed N]
  priste-cli quantify --event SPEC [--alpha F] [--side N] [--sigma F] [--steps N] [--seed N]
  priste-cli check    --event SPEC [--epsilon F] [--alpha F] [--side N] [--sigma F] [--steps N] [--seed N]
  priste-cli stream   [--users N] [--steps N] [--kind synthetic|commuter] [--event SPEC]
                      [--epsilon F] [--alpha F] [--side N] [--sigma F]
                      [--shards N] [--linger N] [--budget F] [--seed N]";

/// Parsed `--key value` flags.
struct Flags(BTreeMap<String, String>);

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        let mut map = BTreeMap::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} requires a value"))?;
            map.insert(key.to_string(), value.clone());
            i += 2;
        }
        Ok(Flags(map))
    }

    fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.0.get(key).map(String::as_str).unwrap_or(default)
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.0
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("--{key} is required"))
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: not a number: {v:?}")),
        }
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: not an integer: {v:?}")),
        }
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.0.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: not an integer: {v:?}")),
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let (command, rest) = args.split_first().ok_or("missing command")?;
    let flags = Flags::parse(rest)?;
    match command.as_str() {
        "world" => cmd_world(&flags),
        "protect" => cmd_protect(&flags),
        "quantify" => cmd_quantify(&flags),
        "check" => cmd_check(&flags),
        "stream" => cmd_stream(&flags),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Shared world setup from flags.
fn world_from_flags(flags: &Flags) -> Result<(GridMap, MarkovModel), String> {
    let side = flags.usize_or("side", 10)?;
    let sigma = flags.f64_or("sigma", 1.0)?;
    let grid = GridMap::new(side, side, 1.0).map_err(|e| e.to_string())?;
    let chain = gaussian_kernel_chain(&grid, sigma).map_err(|e| e.to_string())?;
    Ok((grid, chain))
}

fn trajectory_from_flags(
    flags: &Flags,
    chain: &MarkovModel,
) -> Result<(Vec<CellId>, StdRng), String> {
    let steps = flags.usize_or("steps", 20)?;
    let seed = flags.u64_or("seed", 1)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let pi = Vector::uniform(chain.num_states());
    let traj = chain
        .sample_trajectory_from(&pi, steps, &mut rng)
        .map_err(|e| e.to_string())?;
    Ok((traj, rng))
}

fn cmd_world(flags: &Flags) -> Result<(), String> {
    let kind = flags.str_or("kind", "synthetic");
    let seed = flags.u64_or("seed", 1)?;
    let (grid, chain, trajectories) = match kind {
        "synthetic" => {
            let (grid, chain) = world_from_flags(flags)?;
            let mut rng = StdRng::seed_from_u64(seed);
            let traj = chain
                .sample_trajectory_from(
                    &Vector::uniform(grid.num_cells()),
                    flags.usize_or("steps", 50)?,
                    &mut rng,
                )
                .map_err(|e| e.to_string())?;
            (grid, chain, vec![traj])
        }
        "commuter" => {
            let side = flags.usize_or("side", 12)?;
            let world = geolife_sim::build(&geolife_sim::CommuterConfig {
                rows: side,
                cols: side,
                seed,
                ..Default::default()
            })
            .map_err(|e| e.to_string())?;
            (world.grid, world.chain, world.trajectories)
        }
        other => {
            return Err(format!(
                "--kind must be synthetic or commuter, got {other:?}"
            ))
        }
    };

    println!(
        "world: {kind}, {} cells ({} km each)",
        grid.num_cells(),
        grid.cell_size_km()
    );
    println!("trajectories: {}", trajectories.len());
    let stationary = stationary_distribution(&chain, 1e-9, 200_000).map_err(|e| e.to_string())?;
    let mut top: Vec<(usize, f64)> = stationary.as_slice().iter().copied().enumerate().collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    println!("top stationary cells:");
    for &(cell, p) in top.iter().take(5) {
        println!("  {}: {:.4}", CellId(cell), p);
    }
    let mut max_self = (0usize, 0.0f64);
    for i in 0..grid.num_cells() {
        let p = chain.transition().get(i, i);
        if p > max_self.1 {
            max_self = (i, p);
        }
    }
    println!(
        "stickiest cell: {} (self-transition {:.3})",
        CellId(max_self.0),
        max_self.1
    );
    Ok(())
}

fn cmd_protect(flags: &Flags) -> Result<(), String> {
    let (grid, chain) = world_from_flags(flags)?;
    let event =
        parse_event(flags.required("event")?, grid.num_cells()).map_err(|e| e.to_string())?;
    let epsilon = flags.f64_or("epsilon", 1.0)?;
    let alpha = flags.f64_or("alpha", 0.5)?;
    let (traj, mut rng) = trajectory_from_flags(flags, &chain)?;
    let events = vec![event];
    let config = PristeConfig::with_epsilon(epsilon);

    println!("t,true_cell,released_cell,budget,attempts,distance_km");
    if let Some(delta) = flags.0.get("delta") {
        let delta: f64 = delta.parse().map_err(|_| "--delta: not a number")?;
        let source = DeltaLocSource::new(
            grid.clone(),
            delta,
            alpha,
            chain.clone(),
            Vector::uniform(grid.num_cells()),
        )
        .map_err(|e| e.to_string())?;
        let mut priste = Priste::new(&events, Homogeneous::new(chain), source, grid, config)
            .map_err(|e| e.to_string())?;
        for &loc in &traj {
            let r = priste.release(loc, &mut rng).map_err(|e| e.to_string())?;
            println!(
                "{},{},{},{:.6},{},{:.3}",
                r.t,
                loc.one_based(),
                r.observed.one_based(),
                r.final_budget,
                r.attempts,
                r.euclid_km
            );
        }
    } else {
        let source = PlmSource::new(grid.clone(), alpha).map_err(|e| e.to_string())?;
        let mut priste = Priste::new(&events, Homogeneous::new(chain), source, grid, config)
            .map_err(|e| e.to_string())?;
        for &loc in &traj {
            let r = priste.release(loc, &mut rng).map_err(|e| e.to_string())?;
            println!(
                "{},{},{},{:.6},{},{:.3}",
                r.t,
                loc.one_based(),
                r.observed.one_based(),
                r.final_budget,
                r.attempts,
                r.euclid_km
            );
        }
    }
    Ok(())
}

fn cmd_quantify(flags: &Flags) -> Result<(), String> {
    let (grid, chain) = world_from_flags(flags)?;
    let event =
        parse_event(flags.required("event")?, grid.num_cells()).map_err(|e| e.to_string())?;
    let alpha = flags.f64_or("alpha", 0.5)?;
    let (traj, mut rng) = trajectory_from_flags(flags, &chain)?;
    let plm = PlanarLaplace::new(grid.clone(), alpha).map_err(|e| e.to_string())?;
    let mut quantifier = FixedPiQuantifier::new(
        &event,
        Homogeneous::new(chain),
        Vector::uniform(grid.num_cells()),
    )
    .map_err(|e| e.to_string())?;

    println!("t,true_cell,released_cell,privacy_loss");
    let mut worst: f64 = 0.0;
    for &loc in &traj {
        let obs = plm.perturb(loc, &mut rng);
        let step = quantifier
            .observe(&plm.emission_column(obs))
            .map_err(|e| e.to_string())?;
        worst = worst.max(step.privacy_loss);
        println!(
            "{},{},{},{:.6}",
            step.t,
            loc.one_based(),
            obs.one_based(),
            step.privacy_loss
        );
    }
    eprintln!(
        "worst realized loss under uniform prior: {worst:.4} (plain {alpha}-PLM, no calibration)"
    );
    Ok(())
}

fn cmd_check(flags: &Flags) -> Result<(), String> {
    let (grid, chain) = world_from_flags(flags)?;
    let event =
        parse_event(flags.required("event")?, grid.num_cells()).map_err(|e| e.to_string())?;
    let epsilon = flags.f64_or("epsilon", 1.0)?;
    let alpha = flags.f64_or("alpha", 0.5)?;
    let (traj, mut rng) = trajectory_from_flags(flags, &chain)?;
    let plm = PlanarLaplace::new(grid.clone(), alpha).map_err(|e| e.to_string())?;
    let provider = Homogeneous::new(chain);
    let mut builder = TheoremBuilder::new(&event, provider).map_err(|e| e.to_string())?;
    let checker = TheoremChecker::new(epsilon, SolverConfig::default());

    println!("t,true_cell,released_cell,verdict");
    let mut refused = 0usize;
    for (i, &loc) in traj.iter().enumerate() {
        let obs = plm.perturb(loc, &mut rng);
        let col = plm.emission_column(obs);
        let inputs = builder.candidate(&col).map_err(|e| e.to_string())?;
        let verdict = checker.check(&inputs.a, &inputs.b, &inputs.c);
        let label = match &verdict {
            TheoremVerdict::Satisfied => "satisfied",
            TheoremVerdict::Violated { .. } => {
                refused += 1;
                "VIOLATED"
            }
            TheoremVerdict::Unknown { .. } => {
                refused += 1;
                "unknown"
            }
        };
        println!("{},{},{},{label}", i + 1, loc.one_based(), obs.one_based());
        builder.commit(col).map_err(|e| e.to_string())?;
    }
    eprintln!(
        "{refused}/{} releases of the plain {alpha}-PLM would be refused at ε={epsilon}",
        traj.len()
    );
    Ok(())
}

/// The `priste-online` streaming service over a simulated N-user feed.
fn cmd_stream(flags: &Flags) -> Result<(), String> {
    let users = flags.usize_or("users", 100)?;
    let steps = flags.usize_or("steps", 24)?;
    if users == 0 || steps == 0 {
        return Err("--users and --steps must be at least 1".into());
    }
    let kind = flags.str_or("kind", "synthetic");
    let seed = flags.u64_or("seed", 1)?;
    let alpha = flags.f64_or("alpha", 0.5)?;

    // World: a synthetic Gaussian-kernel grid or the commuter simulator.
    let (grid, chain) = match kind {
        "synthetic" => world_from_flags(flags)?,
        "commuter" => {
            let side = flags.usize_or("side", 10)?;
            let world = geolife_sim::build(&geolife_sim::CommuterConfig {
                rows: side,
                cols: side,
                seed,
                ..Default::default()
            })
            .map_err(|e| e.to_string())?;
            (world.grid, world.chain)
        }
        other => {
            return Err(format!(
                "--kind must be synthetic or commuter, got {other:?}"
            ))
        }
    };
    let m = grid.num_cells();
    let default_event = format!("PRESENCE(S={{1:{}}}, T={{2:4}})", (m / 4).max(1));
    let event = parse_event(flags.str_or("event", &default_event), m).map_err(|e| e.to_string())?;

    let config = OnlineConfig {
        epsilon: flags.f64_or("epsilon", 1.0)?,
        num_shards: flags.usize_or("shards", 8)?,
        linger: flags.usize_or("linger", 2)?,
        budget: flags.f64_or("budget", 20.0)?,
    };
    let provider = std::rc::Rc::new(Homogeneous::new(chain.clone()));
    let mut service =
        SessionManager::new(std::rc::Rc::clone(&provider), config).map_err(|e| e.to_string())?;
    let template = service
        .register_template(event)
        .map_err(|e| e.to_string())?;

    // Users: seeded trajectories from the world's own mobility model; one
    // protected event window each, released through a shared α-PLM.
    let mut rng = StdRng::seed_from_u64(seed);
    let plm = PlanarLaplace::new(grid, alpha).map_err(|e| e.to_string())?;
    let mut trajectories = Vec::with_capacity(users);
    for u in 0..users as u64 {
        service
            .add_user(UserId(u), Vector::uniform(m))
            .map_err(|e| e.to_string())?;
        service
            .attach_event(UserId(u), template)
            .map_err(|e| e.to_string())?;
        trajectories.push(
            chain
                .sample_trajectory_from(&Vector::uniform(m), steps, &mut rng)
                .map_err(|e| e.to_string())?,
        );
    }

    // Feed: one batch per timestamp, every user releasing one observation.
    let mut worst_loss = vec![0.0f64; users];
    let mut violations = vec![0usize; users];
    let started = std::time::Instant::now();
    #[allow(clippy::needless_range_loop)] // column-wise access across per-user rows
    for t in 0..steps {
        let batch: Vec<(UserId, Vector)> = (0..users)
            .map(|u| {
                let observed = plm.perturb(trajectories[u][t], &mut rng);
                (UserId(u as u64), plm.emission_column(observed))
            })
            .collect();
        for report in service.ingest_batch(&batch).map_err(|e| e.to_string())? {
            let u = report.user.0 as usize;
            if report.worst_loss.is_finite() {
                worst_loss[u] = worst_loss[u].max(report.worst_loss);
            } else {
                worst_loss[u] = f64::INFINITY;
            }
            violations[u] += report
                .windows
                .iter()
                .filter(|w| w.verdict == Verdict::Violated)
                .count();
        }
    }
    let elapsed = started.elapsed();

    println!("user,observations,worst_loss,violations,budget_remaining,exhausted");
    for u in 0..users as u64 {
        let session = service.session(UserId(u)).expect("registered above");
        println!(
            "{},{},{:.6},{},{:.4},{}",
            u,
            session.observed(),
            worst_loss[u as usize],
            violations[u as usize],
            session.ledger().remaining(),
            session.ledger().exhausted()
        );
    }
    let stats = service.stats();
    println!(
        "total,{} users,{} observations,{} certified,{} violated,{} mismatched,{} evicted",
        users,
        stats.observations,
        stats.certified,
        stats.violated,
        stats.mismatched,
        stats.evicted_windows
    );
    // Timing is non-deterministic: keep it off stdout.
    eprintln!(
        "throughput: {} observations in {:.3}s ({:.0} obs/s, {} shards)",
        stats.observations,
        elapsed.as_secs_f64(),
        stats.observations as f64 / elapsed.as_secs_f64().max(1e-9),
        service.config().num_shards
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_parse_key_values() {
        let f = Flags::parse(&args(&["--side", "6", "--sigma", "0.5"])).unwrap();
        assert_eq!(f.usize_or("side", 10).unwrap(), 6);
        assert_eq!(f.f64_or("sigma", 1.0).unwrap(), 0.5);
        assert_eq!(f.f64_or("missing", 2.0).unwrap(), 2.0);
        assert!(f.required("event").is_err());
    }

    #[test]
    fn flags_reject_malformed_input() {
        assert!(Flags::parse(&args(&["side", "6"])).is_err());
        assert!(Flags::parse(&args(&["--side"])).is_err());
        let f = Flags::parse(&args(&["--side", "abc"])).unwrap();
        assert!(f.usize_or("side", 1).is_err());
    }

    #[test]
    fn world_command_runs() {
        let f = Flags::parse(&args(&["--side", "5", "--seed", "3"])).unwrap();
        cmd_world(&f).unwrap();
    }

    #[test]
    fn protect_command_runs_both_algorithms() {
        let base = [
            "--event",
            "PRESENCE(S={1:5}, T={2:4})",
            "--side",
            "5",
            "--steps",
            "6",
        ];
        let f = Flags::parse(&args(&base)).unwrap();
        cmd_protect(&f).unwrap();
        let mut with_delta = base.to_vec();
        with_delta.extend(["--delta", "0.3"]);
        let f = Flags::parse(&args(&with_delta)).unwrap();
        cmd_protect(&f).unwrap();
    }

    #[test]
    fn quantify_and_check_commands_run() {
        let base = [
            "--event",
            "PRESENCE(S={1:5}, T={2:4})",
            "--side",
            "5",
            "--steps",
            "6",
        ];
        let f = Flags::parse(&args(&base)).unwrap();
        cmd_quantify(&f).unwrap();
        cmd_check(&f).unwrap();
    }

    #[test]
    fn stream_command_runs_both_feeds() {
        let f = Flags::parse(&args(&[
            "--users", "6", "--steps", "5", "--side", "4", "--seed", "9",
        ]))
        .unwrap();
        cmd_stream(&f).unwrap();
        let f = Flags::parse(&args(&[
            "--users", "4", "--steps", "5", "--side", "6", "--kind", "commuter", "--seed", "9",
        ]))
        .unwrap();
        cmd_stream(&f).unwrap();
    }

    #[test]
    fn stream_command_validates_input() {
        let f = Flags::parse(&args(&["--users", "0"])).unwrap();
        assert!(cmd_stream(&f).is_err());
        let f = Flags::parse(&args(&["--kind", "martian"])).unwrap();
        assert!(cmd_stream(&f).is_err());
        let f = Flags::parse(&args(&["--event", "NOPE()", "--side", "4"])).unwrap();
        assert!(cmd_stream(&f).is_err());
        let f = Flags::parse(&args(&["--epsilon", "0", "--side", "4"])).unwrap();
        assert!(cmd_stream(&f).is_err());
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert!(run(&args(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn bad_event_spec_is_reported() {
        let f = Flags::parse(&args(&["--event", "NOPE()", "--side", "5"])).unwrap();
        assert!(cmd_protect(&f).is_err());
    }
}
