//! # PriSTE — Spatiotemporal Event Privacy
//!
//! A production-quality Rust implementation of **"PriSTE: From Location
//! Privacy to Spatiotemporal Event Privacy"** (Cao, Xiao, Xiong, Bai —
//! ICDE 2019, arXiv:1810.09152).
//!
//! Location privacy mechanisms protect *where you are*; they do not protect
//! *facts about your movements* such as "visited a hospital last week" or
//! "commutes between address A and address B every morning". PriSTE
//! formalizes such facts as **spatiotemporal events** — Boolean expressions
//! over `(location, time)` predicates — defines **ε-spatiotemporal event
//! privacy** (a differential-privacy-style indistinguishability between an
//! event and its negation), and converts any emission-matrix LPPM into one
//! that guarantees it.
//!
//! ## Quick start
//!
//! Everything starts at the [`Pipeline`]: describe the scenario once —
//! world, mobility, secrets, mechanism, target ε — then derive whichever
//! mode you need. `.audit()` walks one trajectory through the offline
//! PriSTE framework; `.serve()` yields the streaming multi-user service;
//! `.enforce()` wraps the mechanism in the calibration guard.
//!
//! ```
//! use priste::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A 5×5 world with a Gaussian-kernel mobility model.
//! let grid = GridMap::new(5, 5, 1.0)?;
//! let chain = gaussian_kernel_chain(&grid, 1.0)?;
//!
//! // One pipeline: the secret (paper notation), the mechanism, the target.
//! let pipeline = Pipeline::on(grid.clone())
//!     .mobility(chain.clone())
//!     .event_spec("PRESENCE(S={1:5}, T={2:4})")
//!     .mechanism(PlanarLaplace::new(grid, 0.5)?)
//!     .target_epsilon(1.0)
//!     .build()?;
//!
//! // Protect a short trajectory with calibrated 0.5-Planar-Laplace.
//! let mut audit = pipeline.audit()?;
//! let mut rng = StdRng::seed_from_u64(7);
//! let trajectory = chain.sample_trajectory(CellId(12), 6, &mut rng)?;
//! for &loc in &trajectory {
//!     let release = audit.release(loc, &mut rng)?;
//!     assert!(release.final_budget <= 0.5);
//! }
//!
//! // The same pipeline also serves the streaming and enforcing modes.
//! let mut service = pipeline.serve()?;
//! service.add_user(UserId(1), Vector::uniform(25))?;
//! let mut guard = pipeline.enforce()?;
//! let release = guard.release(CellId(12), &mut rng)?;
//! assert!(release.loss <= 1.0);
//! # Ok::<(), PristeError>(())
//! ```
//!
//! Every fallible facade call returns [`PristeError`], which wraps every
//! per-crate error enum with full [`std::error::Error::source`] chains.
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | `priste` (this crate) | the facade: [`Pipeline`]/[`PipelineBuilder`], [`PristeError`], the prelude, the CLI |
//! | [`linalg`] | dense matrices/vectors, Jacobi eigensolver, HMM scaling |
//! | [`geo`] | grids, cells, regions, GPS geodesy |
//! | [`markov`] | mobility models: training, sampling, synthesis |
//! | [`event`] | event ASTs, `PRESENCE`/`PATTERN`, the event DSL |
//! | [`lppm`] | Planar Laplace, δ-location-set, baselines, Lambert W |
//! | [`quantify`] | two-possible-world engine (Lemmas III.1–III.3) |
//! | [`qp`] | Theorem IV.1 constraint checking (CPLEX substitute) |
//! | [`calibrate`] | budget planners + the calibration guard (ε-event-privacy enforcement) |
//! | [`core`] | the PriSTE framework (Algorithms 1–3) + experiment runner |
//! | [`online`] | streaming multi-user service: sessions, sharding, incremental checks, enforcing mode |
//! | [`obs`] | zero-dependency observability: metrics registry, spans, Prometheus/JSON export |
//! | [`serve`] | HTTP daemon over the streaming service: JSON protocol, live `/metrics`, graceful drain, closed- and open-loop load generator |
//! | [`cluster`] | multi-process sharded serving: router daemon, jump-consistent-hash shard map, shard handoff over the durable substrate |
//! | [`data`] | synthetic worlds, GeoLife parsing, commuter simulator |
//!
//! ## Migrating from the per-crate entry points
//!
//! The hand-wired constructors still work, but new code should go through
//! the pipeline:
//!
//! | Old API | New API |
//! |---|---|
//! | `Priste::new(&events, provider, source, grid, config)` | `Pipeline::on(grid).mobility(chain).events(events).mechanism(plm).target_epsilon(ε).audit()` |
//! | `SessionManager::new(Arc::new(Homogeneous::new(chain)), online_config)` + `register_template` | `…​.serve()` (templates pre-registered from the pipeline events) |
//! | `SessionManager::enable_enforcement(lppm, guard)` | `…​.serve_enforcing()` |
//! | `CalibratedMechanism::new(lppm, &events, provider, π, guard)` | `…​.enforce()` |
//! | `IncrementalTwoWorld::new(event, provider, π)` | `…​.quantifier()` |
//! | `BayesianAdversary::new(&event, provider, π)` | `…​.adversary()` |
//! | `TheoremBuilder::new(&event, provider)` + `TheoremChecker::new(ε, solver)` | `…​.checker()` |
//! | `plan_greedy(lppm, &event, provider, T, ε, &cfg)` | `…​.plan_greedy(T)` |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod pipeline;

pub use error::{PristeError, Result};
pub use pipeline::{Audit, AuditSource, Pipeline, PipelineBuilder, SharedProvider};

pub use priste_calibrate as calibrate;
pub use priste_cluster as cluster;
pub use priste_core as core;
pub use priste_data as data;
pub use priste_event as event;
pub use priste_geo as geo;
pub use priste_linalg as linalg;
pub use priste_lppm as lppm;
pub use priste_markov as markov;
pub use priste_obs as obs;
pub use priste_online as online;
pub use priste_qp as qp;
pub use priste_quantify as quantify;
pub use priste_serve as serve;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::{Audit, AuditSource, Pipeline, PipelineBuilder, PristeError, SharedProvider};
    pub use priste_calibrate::{
        plan_greedy, plan_knapsack, plan_uniform_split, BudgetPlan, CalibratedMechanism,
        CalibratedRelease, Decision, GuardConfig, MeanEpsilon, MechanismCache, OnExhaustion,
        PlanarLaplaceError, PlannedStep, PlannerConfig, PlmQualityLoss, UtilityModel,
    };
    pub use priste_cluster::{
        jump_hash, ClusterError, PoolConfig, Router, RouterConfig, RouterDrainHandle,
        RouterSummary, ShardMap, WorkerStatus,
    };
    pub use priste_core::{
        runner, DeltaLocSource, MechanismSource, PlmSource, Priste, PristeConfig, ReleaseRecord,
    };
    pub use priste_data::{geolife, geolife_sim, stats, synthetic, World};
    pub use priste_event::{dsl::parse_event, EventExpr, Pattern, Predicate, Presence, StEvent};
    pub use priste_geo::{CellId, GeoBounds, GpsPoint, GridMap, Region};
    pub use priste_linalg::{Matrix, Vector};
    pub use priste_lppm::{
        DeltaLocationSet, ExponentialMechanism, Lppm, PlanarLaplace, RandomizedResponse,
        UniformMechanism,
    };
    pub use priste_markov::{
        gaussian_kernel_chain, stationary_distribution, train_mle, Homogeneous, MarkovModel,
        TimeVarying, TransitionProvider,
    };
    pub use priste_obs::{Counter, EventSink, Gauge, Histogram, Registry, Span, Timer};
    pub use priste_online::{
        DurableError, DurableOptions, EnforcedRelease, OnlineConfig, OnlineError, RecoveryInfo,
        ServiceStats, SessionManager, UserId, UserReport, Verdict, WindowReport,
    };
    pub use priste_qp::{ConstraintSet, SolverConfig, TheoremChecker, TheoremVerdict};
    pub use priste_quantify::{
        attack::BayesianAdversary, fixed_pi::FixedPiQuantifier, forward_backward, naive,
        IncrementalTwoWorld, StreamStep, TheoremBuilder, TwoWorldEngine,
    };
    pub use priste_serve::{
        DrainHandle, DrainSummary, LoadMode, LoadgenOptions, LoadgenReport, ServeError, Server,
        ServerConfig,
    };
}
