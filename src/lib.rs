//! # PriSTE — Spatiotemporal Event Privacy
//!
//! A production-quality Rust implementation of **"PriSTE: From Location
//! Privacy to Spatiotemporal Event Privacy"** (Cao, Xiao, Xiong, Bai —
//! ICDE 2019, arXiv:1810.09152).
//!
//! Location privacy mechanisms protect *where you are*; they do not protect
//! *facts about your movements* such as "visited a hospital last week" or
//! "commutes between address A and address B every morning". PriSTE
//! formalizes such facts as **spatiotemporal events** — Boolean expressions
//! over `(location, time)` predicates — defines **ε-spatiotemporal event
//! privacy** (a differential-privacy-style indistinguishability between an
//! event and its negation), and converts any emission-matrix LPPM into one
//! that guarantees it.
//!
//! ## Quick start
//!
//! ```
//! use priste::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // A 5×5 world with a Gaussian-kernel mobility model.
//! let grid = GridMap::new(5, 5, 1.0)?;
//! let chain = gaussian_kernel_chain(&grid, 1.0)?;
//!
//! // The secret: presence in cells s1..s5 during timestamps 2..4.
//! let event = parse_event("PRESENCE(S={1:5}, T={2:4})", grid.num_cells())?;
//! let events = vec![event];
//!
//! // Protect a short trajectory with 0.5-Planar-Laplace under ε = 1.
//! let source = PlmSource::new(grid.clone(), 0.5)?;
//! let mut priste = Priste::new(
//!     &events,
//!     Homogeneous::new(chain.clone()),
//!     source,
//!     grid.clone(),
//!     PristeConfig::with_epsilon(1.0),
//! )?;
//! let mut rng = StdRng::seed_from_u64(7);
//! let trajectory = chain.sample_trajectory(CellId(12), 6, &mut rng)?;
//! for &loc in &trajectory {
//!     let release = priste.release(loc, &mut rng)?;
//!     assert!(release.final_budget <= 0.5);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`linalg`] | dense matrices/vectors, Jacobi eigensolver, HMM scaling |
//! | [`geo`] | grids, cells, regions, GPS geodesy |
//! | [`markov`] | mobility models: training, sampling, synthesis |
//! | [`event`] | event ASTs, `PRESENCE`/`PATTERN`, the event DSL |
//! | [`lppm`] | Planar Laplace, δ-location-set, baselines, Lambert W |
//! | [`quantify`] | two-possible-world engine (Lemmas III.1–III.3) |
//! | [`qp`] | Theorem IV.1 constraint checking (CPLEX substitute) |
//! | [`calibrate`] | budget planners + the calibration guard (ε-event-privacy enforcement) |
//! | [`core`] | the PriSTE framework (Algorithms 1–3) + experiment runner |
//! | [`online`] | streaming multi-user service: sessions, sharding, incremental checks, enforcing mode |
//! | [`data`] | synthetic worlds, GeoLife parsing, commuter simulator |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use priste_calibrate as calibrate;
pub use priste_core as core;
pub use priste_data as data;
pub use priste_event as event;
pub use priste_geo as geo;
pub use priste_linalg as linalg;
pub use priste_lppm as lppm;
pub use priste_markov as markov;
pub use priste_online as online;
pub use priste_qp as qp;
pub use priste_quantify as quantify;

/// One-stop imports for applications.
pub mod prelude {
    pub use priste_calibrate::{
        plan_greedy, plan_uniform_split, BudgetPlan, CalibratedMechanism, CalibratedRelease,
        Decision, GuardConfig, MechanismCache, OnExhaustion, PlannedStep, PlannerConfig,
    };
    pub use priste_core::{
        runner, DeltaLocSource, MechanismSource, PlmSource, Priste, PristeConfig, ReleaseRecord,
    };
    pub use priste_data::{geolife, geolife_sim, stats, synthetic, World};
    pub use priste_event::{dsl::parse_event, EventExpr, Pattern, Predicate, Presence, StEvent};
    pub use priste_geo::{CellId, GeoBounds, GpsPoint, GridMap, Region};
    pub use priste_linalg::{Matrix, Vector};
    pub use priste_lppm::{
        DeltaLocationSet, ExponentialMechanism, Lppm, PlanarLaplace, RandomizedResponse,
        UniformMechanism,
    };
    pub use priste_markov::{
        gaussian_kernel_chain, stationary_distribution, train_mle, Homogeneous, MarkovModel,
        TimeVarying, TransitionProvider,
    };
    pub use priste_online::{
        EnforcedRelease, OnlineConfig, OnlineError, ServiceStats, SessionManager, UserId,
        UserReport, Verdict, WindowReport,
    };
    pub use priste_qp::{ConstraintSet, SolverConfig, TheoremChecker, TheoremVerdict};
    pub use priste_quantify::{
        attack::BayesianAdversary, fixed_pi::FixedPiQuantifier, forward_backward, naive,
        IncrementalTwoWorld, StreamStep, TheoremBuilder, TwoWorldEngine,
    };
}
